"""Security-property specification templates.

The paper (Sec. IV-A1) notes CSP's proven methods "for verifying various
security properties, such as availability (liveness), authentication,
confidentiality, and anonymity".  These builders produce the abstract CSP
specification processes for the property classes our case study needs; each
returns a :class:`ProcessRef` after binding the needed equations into the
environment, so they compose with extracted implementation models.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..csp.events import Alphabet, Event
from ..csp.process import (
    Environment,
    ExternalChoice,
    Prefix,
    Process,
    ProcessRef,
    external_choice,
)

_counter = [0]


def _fresh(prefix: str) -> str:
    _counter[0] += 1
    return "{}_{}".format(prefix, _counter[0])


def run_process(alphabet: Alphabet, env: Environment, name: Optional[str] = None) -> ProcessRef:
    """``RUN(A)``: forever willing to perform any event of *A*.

    The workhorse of safety specifications: anything built from RUN over a
    restricted alphabet says "only these events may ever happen".
    """
    label = name or _fresh("RUN")
    branches = [Prefix(event, ProcessRef(label)) for event in alphabet]
    env.bind(label, external_choice(*branches))
    return ProcessRef(label)


def chaos(alphabet: Alphabet, env: Environment, name: Optional[str] = None) -> ProcessRef:
    """``CHAOS(A)``: may perform or refuse anything in *A*, or deadlock.

    The most nondeterministic divergence-free process over the alphabet --
    the standard stand-in for an unconstrained environment or attacker.
    Every divergence-free process over *A* failures-refines CHAOS(A).
    """
    from ..csp.process import InternalChoice, STOP, internal_choice

    label = name or _fresh("CHAOS")
    branches = [Prefix(event, ProcessRef(label)) for event in alphabet]
    if branches:
        env.bind(label, InternalChoice(STOP, internal_choice(*branches)))
    else:
        env.bind(label, STOP)
    return ProcessRef(label)


def request_response(
    request: Event,
    response: Event,
    env: Environment,
    name: Optional[str] = None,
) -> ProcessRef:
    """The paper's SP02 shape: every *request* is answered by *response*.

    ``SP = request -> response -> SP`` -- the integrity property of Sec. V-B.
    """
    label = name or _fresh("REQRESP")
    env.bind(label, Prefix(request, Prefix(response, ProcessRef(label))))
    return ProcessRef(label)


def never_occurs(
    forbidden: Iterable[Event],
    alphabet: Alphabet,
    env: Environment,
    name: Optional[str] = None,
) -> ProcessRef:
    """Confidentiality/safety: the *forbidden* events never happen.

    The specification is simply ``RUN(alphabet - forbidden)``; any
    implementation trace containing a forbidden event is a counterexample.
    """
    label = name or _fresh("NEVER")
    allowed = alphabet - Alphabet(forbidden)
    return run_process(allowed, env, label)


def precedes(
    first: Event,
    then: Event,
    alphabet: Alphabet,
    env: Environment,
    name: Optional[str] = None,
) -> ProcessRef:
    """Authentication-style precedence: *then* may only occur after *first*.

    This is the trace form of non-injective agreement: the 'commit' event
    (e.g. the ECU applying an update) is preceded by the 'running' event
    (e.g. the VMG actually requesting it).  Before *first* happens the
    specification refuses *then*; afterwards anything goes.
    """
    label = name or _fresh("PREC")
    after_label = label + "_AFTER"
    run_process(alphabet, env, after_label)
    restricted = (alphabet - Alphabet.of(then)) - Alphabet.of(first)
    branches = [Prefix(event, ProcessRef(label)) for event in restricted]
    branches.append(Prefix(first, ProcessRef(after_label)))
    env.bind(label, external_choice(*branches))
    return ProcessRef(label)


def alternates(
    first: Event,
    second: Event,
    alphabet: Alphabet,
    env: Environment,
    name: Optional[str] = None,
) -> ProcessRef:
    """Strict alternation of *first* and *second*; other events free.

    A stronger integrity property than :func:`request_response` when other
    traffic shares the channels (the 'more sophisticated models' the paper
    sketches, where other messages arrive on a different channel).
    """
    label = name or _fresh("ALT")
    waiting_second = label + "_W2"
    others = (alphabet - Alphabet.of(first)) - Alphabet.of(second)
    first_branches = [Prefix(event, ProcessRef(label)) for event in others]
    first_branches.append(Prefix(first, ProcessRef(waiting_second)))
    env.bind(label, external_choice(*first_branches))
    second_branches = [Prefix(event, ProcessRef(waiting_second)) for event in others]
    second_branches.append(Prefix(second, ProcessRef(label)))
    env.bind(waiting_second, external_choice(*second_branches))
    return ProcessRef(label)


def bounded_outstanding(
    request: Event,
    response: Event,
    limit: int,
    env: Environment,
    name: Optional[str] = None,
) -> ProcessRef:
    """At most *limit* requests may be outstanding (flood/DoS resistance).

    Builds the counter family ``SPEC_0 .. SPEC_limit``; a further request at
    the limit is a violation.
    """
    if limit < 1:
        raise ValueError("limit must be at least 1")
    label = name or _fresh("BOUND")

    def state(count: int) -> str:
        return "{}_{}".format(label, count)

    for count in range(limit + 1):
        branches = []
        if count < limit:
            branches.append(Prefix(request, ProcessRef(state(count + 1))))
        if count > 0:
            branches.append(Prefix(response, ProcessRef(state(count - 1))))
        env.bind(state(count), external_choice(*branches))
    env.bind(label, ProcessRef(state(0)))
    return ProcessRef(label)
