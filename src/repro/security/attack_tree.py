"""Attack trees and their translation to CSP (paper Sec. IV-E).

The paper recalls that "an individual attack tree can be translated into a
semantically equivalent CSP process", the equivalence resting on
series-parallel (SP) graph semantics:

    (a)         = { <a> }
    (G1 || G2)  = { s ∈ s1 ||| s2 }          -- parallel composition
    (G1 . G2)   = { s1 ^ s2 }                -- sequential composition
    ({G1..Gn})  = U (Gi)                     -- disjunction (OR)

:class:`AttackTree` nodes implement exactly that recursive ``(·)`` function
(:meth:`sequences`), and :meth:`to_process` builds the CSP process whose
*completed* traces are precisely those action sequences -- the property the
test-suite verifies, reproducing the paper's semantic-equivalence claim.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..csp.events import Alphabet, Event
from ..csp.process import (
    Environment,
    Interleave,
    Prefix,
    Process,
    SKIP,
    SeqComp,
    external_choice,
)
from ..csp.traces import Trace, interleave_traces


class AttackTree:
    """Base class of attack-tree nodes (an SP-graph)."""

    def sequences(self) -> Set[Trace]:
        """The paper's ``(·)`` semantics: all complete action sequences."""
        raise NotImplementedError

    def to_process(self) -> Process:
        """The semantically equivalent CSP process (terminates per sequence)."""
        raise NotImplementedError

    def actions(self) -> FrozenSet[Event]:
        """Every atomic action appearing in the tree."""
        raise NotImplementedError

    # -- combinator sugar ----------------------------------------------------------

    def then(self, other: "AttackTree") -> "AttackTree":
        return SeqNode(self, other)

    def alongside(self, other: "AttackTree") -> "AttackTree":
        return AndNode(self, other)

    def otherwise(self, other: "AttackTree") -> "AttackTree":
        return OrNode([self, other])


class ActionNode(AttackTree):
    """A leaf: one atomic attacker action, optionally with a cost.

    Costs let analyses rank attacks (cheapest feasible attack first) --
    the quantitative layer commonly added to attack trees.
    """

    def __init__(self, event: Event, cost: float = 1.0) -> None:
        if not event.is_visible():
            raise ValueError("attack actions must be visible events")
        if cost < 0:
            raise ValueError("attack cost must be non-negative")
        self.event = event
        self.cost = cost

    def sequences(self) -> Set[Trace]:
        return {(self.event,)}

    def to_process(self) -> Process:
        return Prefix(self.event, SKIP)

    def actions(self) -> FrozenSet[Event]:
        return frozenset([self.event])

    def __repr__(self) -> str:
        return "ActionNode({})".format(self.event)


class SeqNode(AttackTree):
    """Sequential refinement ``G1 . G2``: first complete G1, then G2."""

    def __init__(self, first: AttackTree, second: AttackTree) -> None:
        self.first = first
        self.second = second

    def sequences(self) -> Set[Trace]:
        return {
            s1 + s2
            for s1 in self.first.sequences()
            for s2 in self.second.sequences()
        }

    def to_process(self) -> Process:
        return SeqComp(self.first.to_process(), self.second.to_process())

    def actions(self) -> FrozenSet[Event]:
        return self.first.actions() | self.second.actions()

    def __repr__(self) -> str:
        return "SeqNode({!r}, {!r})".format(self.first, self.second)


class AndNode(AttackTree):
    """Parallel (AND) composition ``G1 || G2``: both must complete, any order."""

    def __init__(self, left: AttackTree, right: AttackTree) -> None:
        self.left = left
        self.right = right

    def sequences(self) -> Set[Trace]:
        merged: Set[Trace] = set()
        left_sequences = self.left.sequences()
        right_sequences = self.right.sequences()
        for s1 in left_sequences:
            for s2 in right_sequences:
                target = len(s1) + len(s2)
                for interleaving in interleave_traces(s1, s2):
                    if len(interleaving) == target:
                        merged.add(interleaving)
        return merged

    def to_process(self) -> Process:
        return Interleave(self.left.to_process(), self.right.to_process())

    def actions(self) -> FrozenSet[Event]:
        return self.left.actions() | self.right.actions()

    def __repr__(self) -> str:
        return "AndNode({!r}, {!r})".format(self.left, self.right)


class OrNode(AttackTree):
    """Disjunction over alternative sub-attacks: ``{G1, ..., Gn}``."""

    def __init__(self, alternatives: Sequence[AttackTree]) -> None:
        if not alternatives:
            raise ValueError("OR node needs at least one alternative")
        self.alternatives = list(alternatives)

    def sequences(self) -> Set[Trace]:
        union: Set[Trace] = set()
        for alternative in self.alternatives:
            union |= alternative.sequences()
        return union

    def to_process(self) -> Process:
        return external_choice(
            *[alternative.to_process() for alternative in self.alternatives]
        )

    def actions(self) -> FrozenSet[Event]:
        collected: FrozenSet[Event] = frozenset()
        for alternative in self.alternatives:
            collected |= alternative.actions()
        return collected

    def __repr__(self) -> str:
        return "OrNode({!r})".format(self.alternatives)


def action(event: Event, cost: float = 1.0) -> ActionNode:
    return ActionNode(event, cost)


def sequence_of(*trees: AttackTree) -> AttackTree:
    """N-ary sequential composition."""
    if not trees:
        raise ValueError("sequence_of needs at least one subtree")
    result = trees[0]
    for tree in trees[1:]:
        result = SeqNode(result, tree)
    return result


def any_of(*trees: AttackTree) -> AttackTree:
    """N-ary OR."""
    return OrNode(list(trees))


def all_of(*trees: AttackTree) -> AttackTree:
    """N-ary AND (parallel)."""
    if not trees:
        raise ValueError("all_of needs at least one subtree")
    result = trees[0]
    for tree in trees[1:]:
        result = AndNode(result, tree)
    return result


def attack_cost(tree: AttackTree, sequence) -> float:
    """Total cost of one attack sequence: the sum of its actions' leaf costs.

    When several leaves share an event, the cheapest applies (an attacker
    picks the cheapest way to realise an action).
    """
    costs = {}
    stack = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, ActionNode):
            existing = costs.get(node.event)
            if existing is None or node.cost < existing:
                costs[node.event] = node.cost
        elif isinstance(node, (SeqNode, AndNode)):
            stack.append(node.first if isinstance(node, SeqNode) else node.left)
            stack.append(node.second if isinstance(node, SeqNode) else node.right)
        elif isinstance(node, OrNode):
            stack.extend(node.alternatives)
    total = 0.0
    for event in sequence:
        if event not in costs:
            raise ValueError("event {} is not an action of this tree".format(event))
        total += costs[event]
    return total


def cheapest_feasible_attack(
    tree: AttackTree,
    system: Process,
    env: Optional[Environment] = None,
    max_states: int = 200_000,
):
    """The minimum-cost attack sequence the system admits, or None.

    Returns ``(sequence, cost)``; feasibility is decided exactly as in
    :func:`feasible_attacks`.
    """
    feasible = feasible_attacks(tree, system, env, max_states)
    if not feasible:
        return None
    ranked = sorted(
        ((attack_cost(tree, sequence), sequence) for sequence in feasible),
        key=lambda pair: (pair[0], len(pair[1]), str(pair[1])),
    )
    cost, sequence = ranked[0]
    return sequence, cost


def feasible_attacks(
    tree: AttackTree,
    system: Process,
    env: Optional[Environment] = None,
    max_states: int = 200_000,
) -> List[Trace]:
    """Which complete attack sequences can the system actually exhibit?

    Walks each attack sequence through the system's LTS; a sequence the
    system can perform end-to-end is a feasible attack (a counterexample to
    the 'no attack' claim).  Returns the feasible sequences, shortest first.
    """
    from ..engine.pipeline import VerificationPipeline, shared_cache

    pipeline = VerificationPipeline(
        env or Environment(), cache=shared_cache(), max_states=max_states
    )
    lts = pipeline.compile(system)
    feasible: List[Trace] = []
    for attack_sequence in sorted(tree.sequences(), key=lambda s: (len(s), str(s))):
        if lts.walk(list(attack_sequence)) is not None:
            feasible.append(attack_sequence)
    return feasible
