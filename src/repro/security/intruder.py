"""Dolev-Yao intruder processes (paper Sec. IV-E).

"With CSP, a common approach is to define an additional intruder process in
CSP, based on the Dolev-Yao model ... defining what the intruder knows and
can learn, and capabilities in terms of manipulating messages transmitted
over the network.  This intruder (attacker) model is then added, in parallel,
to existing process models" [30].

:class:`IntruderBuilder` generates exactly that: a family of processes
``INTRUDER_<K>`` indexed by the (finite) knowledge set *K*, where the
intruder can

* **overhear** every event on the listened channels (learning the payload),
* **inject** any payload in its current knowledge on the injection channels.

Because the message space is finite, the knowledge lattice is finite and the
generated process family is finite-state -- checkable by the refinement
engine.  Composing ``SYSTEM [|listen ∪ inject|] INTRUDER`` (listen events
synchronise three-way, injected events masquerade as ordinary traffic) gives
the worst-case attacker of the paper's threat model.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..csp.events import Alphabet, Channel, Event, Value
from ..csp.process import (
    Environment,
    GenParallel,
    Prefix,
    Process,
    ProcessRef,
    external_choice,
)
from .crypto import Term, deductive_closure


def _knowledge_name(prefix: str, knowledge: FrozenSet[Value]) -> str:
    if not knowledge:
        return "{}_EMPTY".format(prefix)
    parts = sorted(str(item) for item in knowledge)
    cleaned = "_".join("".join(ch for ch in part if ch.isalnum()) for part in parts)
    return "{}_{}".format(prefix, cleaned)


class IntruderBuilder:
    """Build the knowledge-indexed intruder process family."""

    def __init__(
        self,
        listen_channels: Sequence[Channel],
        inject_channels: Sequence[Channel],
        universe: Sequence[Value],
        initial_knowledge: Iterable[Value] = (),
        deduce: bool = False,
        name_prefix: str = "INTRUDER",
    ) -> None:
        """*universe* is the finite payload space (a channel's field domain).

        With ``deduce=True`` payload values are treated as symbolic crypto
        terms and each learning step closes the knowledge set under
        Dolev-Yao deduction (bounded to *universe*).
        """
        if not listen_channels and not inject_channels:
            raise ValueError("intruder needs at least one channel")
        for channel in chain(listen_channels, inject_channels):
            if channel.arity != 1:
                raise ValueError(
                    "intruder channels must carry exactly one payload field; "
                    "{!r} carries {}".format(channel.name, channel.arity)
                )
        self.listen_channels = list(listen_channels)
        self.inject_channels = list(inject_channels)
        self.universe = list(universe)
        self.initial_knowledge = frozenset(initial_knowledge)
        self.deduce = deduce
        self.name_prefix = name_prefix

    # -- knowledge lattice -------------------------------------------------------

    def _close(self, knowledge: FrozenSet[Value]) -> FrozenSet[Value]:
        if not self.deduce:
            return knowledge
        closure = deductive_closure(knowledge, constructible=self.universe)
        return frozenset(v for v in closure if v in set(self.universe) or v in knowledge)

    def _learn(self, knowledge: FrozenSet[Value], payload: Value) -> FrozenSet[Value]:
        return self._close(knowledge | {payload})

    # -- construction ----------------------------------------------------------------

    def build(self, env: Environment) -> ProcessRef:
        """Bind the whole process family into *env*; returns the initial process."""
        initial = self._close(self.initial_knowledge)
        pending: List[FrozenSet[Value]] = [initial]
        done: Dict[FrozenSet[Value], str] = {}
        while pending:
            knowledge = pending.pop()
            if knowledge in done:
                continue
            name = _knowledge_name(self.name_prefix, knowledge)
            done[knowledge] = name
            branches: List[Process] = []
            successors: List[FrozenSet[Value]] = []
            for channel in self.listen_channels:
                for payload in self.universe:
                    learned = self._learn(knowledge, payload)
                    successors.append(learned)
                    branches.append(
                        Prefix(
                            channel(payload),
                            ProcessRef(_knowledge_name(self.name_prefix, learned)),
                        )
                    )
            for channel in self.inject_channels:
                for payload in sorted(knowledge, key=str):
                    if payload not in channel.field_domains[0]:
                        continue
                    branches.append(
                        Prefix(
                            channel(payload),
                            ProcessRef(name),
                        )
                    )
            env.bind(name, external_choice(*branches))
            for successor in successors:
                if successor not in done:
                    pending.append(successor)
        return ProcessRef(_knowledge_name(self.name_prefix, initial))

    def compose_with(
        self,
        system: Process,
        env: Environment,
        extra_sync: Optional[Alphabet] = None,
        register_as: Optional[str] = None,
    ) -> Process:
        """``SYSTEM [| listen ∪ inject |] INTRUDER`` -- the attacked system.

        The composition is a plain :class:`GenParallel`, so a verification
        pipeline's compilation plan decomposes it and compresses the system
        and the intruder family independently before building the attacked
        product -- the intruder's knowledge lattice minimises particularly
        well, since many knowledge states are behaviourally equivalent.
        With *register_as*, the composition is also bound into *env* under
        that name, giving checks (and provenance labels) a stable reference.
        """
        intruder = self.build(env)
        sync = Alphabet.from_channels(*self.listen_channels) | Alphabet.from_channels(
            *self.inject_channels
        )
        if extra_sync is not None:
            sync = sync | extra_sync
        composed = GenParallel(system, intruder, sync)
        if register_as is not None:
            env.bind(register_as, composed)
            return ProcessRef(register_as)
        return composed


def replay_attacker(
    channel: Channel,
    payloads: Sequence[Value],
    env: Environment,
    name: str = "REPLAY",
) -> ProcessRef:
    """A simple fixed-script injector: sends the payloads in order, then stops.

    The blunt end of the threat spectrum -- what a cheap CAN injection tool
    does -- and a useful baseline against the full Dolev-Yao intruder.
    """
    process: Process = ProcessRef(name + "_DONE")
    env.bind(name + "_DONE", external_choice())  # STOP
    for payload in reversed(list(payloads)):
        process = Prefix(channel(payload), process)
    env.bind(name, process)
    return ProcessRef(name)


def knowledge_lattice_size(universe_size: int) -> int:
    """How many knowledge sets a full lattice would have (2^n) -- used by the
    scalability benchmark to pick tractable universes."""
    return 2 ** universe_size
