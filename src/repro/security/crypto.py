"""Symbolic (Dolev-Yao) cryptographic terms and intruder deduction.

The paper's case study assumes shared-key Message Authentication Codes
(Sec. V-A2, requirement R05).  In the CSP tradition of Ryan & Schneider's
*Modelling and Analysis of Security Protocols* [30], cryptography is
symbolic: a MAC is an opaque term an agent can only construct or verify when
it holds the key.  Terms here are hashable tuples so they can ride as event
field values on CSP channels.

The :func:`deductive_closure` computes what a Dolev-Yao intruder can derive
from a set of observed terms: splitting pairs, decrypting with known keys,
and constructing new encryptions/MACs from known material.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set, Tuple, Union

Term = Union[str, int, Tuple]

# term tags
KEY = "key"
NONCE = "nonce"
MAC = "mac"
ENC = "enc"
PAIR = "pair"


def key(name: str) -> Term:
    """A symmetric key, e.g. ``key('k_vmg_ecu')``."""
    return (KEY, name)


def nonce(name: str) -> Term:
    """A fresh random value."""
    return (NONCE, name)


def mac(the_key: Term, payload: Term) -> Term:
    """A message authentication code over *payload* under *the_key*."""
    _require_key(the_key, "mac")
    return (MAC, the_key, payload)


def enc(the_key: Term, payload: Term) -> Term:
    """Symmetric encryption of *payload* under *the_key*."""
    _require_key(the_key, "enc")
    return (ENC, the_key, payload)


def pair(left: Term, right: Term) -> Term:
    """Concatenation of two terms."""
    return (PAIR, left, right)


def _require_key(term: Term, operation: str) -> None:
    if not (isinstance(term, tuple) and len(term) == 2 and term[0] == KEY):
        raise ValueError("{}() needs a key term, got {!r}".format(operation, term))


def is_key(term: Term) -> bool:
    return isinstance(term, tuple) and len(term) == 2 and term[0] == KEY


def is_mac(term: Term) -> bool:
    return isinstance(term, tuple) and len(term) == 3 and term[0] == MAC


def is_enc(term: Term) -> bool:
    return isinstance(term, tuple) and len(term) == 3 and term[0] == ENC


def is_pair(term: Term) -> bool:
    return isinstance(term, tuple) and len(term) == 3 and term[0] == PAIR


def verify_mac(term: Term, the_key: Term, payload: Term) -> bool:
    """MAC verification: structural equality under the shared key."""
    return term == (MAC, the_key, payload)


def subterms(term: Term) -> Set[Term]:
    """Every syntactic subterm, including the term itself."""
    collected: Set[Term] = {term}
    if isinstance(term, tuple) and len(term) == 3 and term[0] in (MAC, ENC, PAIR):
        collected |= subterms(term[1])
        collected |= subterms(term[2])
    return collected


def deductive_closure(
    knowledge: Iterable[Term],
    constructible: Iterable[Term] = (),
    max_iterations: int = 1000,
) -> FrozenSet[Term]:
    """The Dolev-Yao closure of *knowledge*.

    Analysis rules (always applied):

    * from ``pair(a, b)`` derive ``a`` and ``b``,
    * from ``enc(k, m)`` and ``k`` derive ``m``.

    Synthesis is bounded to the candidate set *constructible* (plus any pair/
    enc/mac over it already listed) because unrestricted synthesis is
    infinite; pass the message space of the protocol under analysis.
    """
    known: Set[Term] = set(knowledge)
    candidates = set(constructible)
    for _ in range(max_iterations):
        added = False
        # analysis
        for term in list(known):
            if is_pair(term):
                for part in (term[1], term[2]):
                    if part not in known:
                        known.add(part)
                        added = True
            elif is_enc(term) and term[1] in known and term[2] not in known:
                known.add(term[2])
                added = True
        # bounded synthesis
        for term in candidates:
            if term in known:
                continue
            if _synthesisable(term, known):
                known.add(term)
                added = True
        if not added:
            return frozenset(known)
    raise RuntimeError("deductive closure did not stabilise")


def _synthesisable(term: Term, known: Set[Term]) -> bool:
    if term in known:
        return True
    if is_pair(term):
        return _synthesisable(term[1], known) and _synthesisable(term[2], known)
    if is_mac(term) or is_enc(term):
        return term[1] in known and _synthesisable(term[2], known)
    return False


def can_forge(term: Term, knowledge: Iterable[Term]) -> bool:
    """Can an intruder with *knowledge* produce *term*?"""
    closure = deductive_closure(knowledge, constructible=[term])
    return term in closure


def render_term(term: Term) -> str:
    """Human-readable rendering: ``mac(k, reqApp)`` etc."""
    if isinstance(term, tuple) and len(term) >= 2:
        tag = term[0]
        if tag == KEY:
            return "key({})".format(term[1])
        if tag == NONCE:
            return "nonce({})".format(term[1])
        if tag == MAC:
            return "mac({}, {})".format(render_term(term[1]), render_term(term[2]))
        if tag == ENC:
            return "enc({}, {})".format(render_term(term[1]), render_term(term[2]))
        if tag == PAIR:
            return "({}, {})".format(render_term(term[1]), render_term(term[2]))
    return str(term)
