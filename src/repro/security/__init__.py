"""Attack and security-property models (paper Sec. IV-E).

Dolev-Yao intruder process generation, attack-tree-to-CSP translation with
the paper's SP-graph semantics, symbolic shared-key crypto, and reusable
specification templates for integrity, confidentiality, authentication and
flood-resistance properties.
"""

from .crypto import (
    Term,
    can_forge,
    deductive_closure,
    enc,
    is_enc,
    is_key,
    is_mac,
    is_pair,
    key,
    mac,
    nonce,
    pair,
    render_term,
    subterms,
    verify_mac,
)
from .intruder import IntruderBuilder, knowledge_lattice_size, replay_attacker
from .attack_tree import (
    ActionNode,
    AndNode,
    AttackTree,
    OrNode,
    SeqNode,
    action,
    all_of,
    any_of,
    attack_cost,
    cheapest_feasible_attack,
    feasible_attacks,
    sequence_of,
)
from .properties import (
    alternates,
    chaos,
    bounded_outstanding,
    never_occurs,
    precedes,
    request_response,
    run_process,
)

__all__ = [
    "ActionNode",
    "AndNode",
    "AttackTree",
    "IntruderBuilder",
    "OrNode",
    "SeqNode",
    "Term",
    "action",
    "all_of",
    "alternates",
    "any_of",
    "attack_cost",
    "cheapest_feasible_attack",
    "bounded_outstanding",
    "can_forge",
    "chaos",
    "deductive_closure",
    "enc",
    "feasible_attacks",
    "is_enc",
    "is_key",
    "is_mac",
    "is_pair",
    "key",
    "knowledge_lattice_size",
    "mac",
    "never_occurs",
    "nonce",
    "pair",
    "precedes",
    "render_term",
    "replay_attacker",
    "request_response",
    "run_process",
    "sequence_of",
    "subterms",
    "verify_mac",
]
