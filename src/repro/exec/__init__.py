"""repro.exec -- the unified execution runtime.

Before this package existed, the three ways of running a check -- the
inline :mod:`repro.api` pipeline, the :mod:`repro.batch` process pool and
the :mod:`repro.server` daemon -- each carried their own copy of the
submit → execute → cache → result plumbing, and a *completed* check was
thrown away the moment its requester was answered.  ``repro.exec`` is the
one layer all three now route through:

* :mod:`repro.exec.keys` computes every structural identity in the system
  -- the server's id-stripped dedup key, the LTS disk-cache digest and the
  result-cache digest all come from one module, versioned together.
* :mod:`repro.exec.resultcache` persists a completed check's canonical
  :class:`~repro.batch.spec.JobResult` bytes content-addressed by that
  key, so a later identical request in *any* mode answers without
  re-verifying.  The server's in-flight dedup table is the first tier of
  the same cache (same key, lifetime = one execution); the disk store is
  the second (lifetime = until invalidated).
* :mod:`repro.exec.runtime` owns spec execution: :func:`execute_spec` is
  the sequential reference semantics every mode is held to, and
  :func:`execute_cached` is the memoised flavour layered on a
  :class:`ResultCache`.
* :mod:`repro.exec.workers` owns the process boundary: the one-shot batch
  worker, the server's persistent warm worker, and the shared
  failure-verdict constructors (worker death → ``ERROR``, deadline →
  ``TIMEOUT``, cancellation → ``CANCELLED``).

Soundness before availability, exactly like the LTS
:class:`~repro.engine.diskcache.DiskCache`: cache keys include the result
format version, the engine semantics version and the full pass
configuration; entries are validated on read and quarantined on any
defect; and only deterministic verdicts (``PASS``/``FAIL``) are ever
persisted.
"""

from importlib import import_module

# keys is dependency-free (stdlib only), so it loads eagerly: the engine's
# disk cache imports its digest while this package initialises.  The other
# submodules depend on repro.batch -- whose executor depends back on
# .runtime -- so their facade names resolve lazily (PEP 562) to keep the
# import graph acyclic in either entry order.
from .keys import (
    ENGINE_SEMANTICS_VERSION,
    RESULT_FORMAT_VERSION,
    lts_key_digest,
    result_key_digest,
    strip_label,
    structural_key,
)

_LAZY = {
    "ResultCache": "resultcache",
    "execute_cached": "runtime",
    "execute_spec": "runtime",
    "open_result_cache": "runtime",
    "resolve_result_cache_dir": "runtime",
    "failure_result": "workers",
    "oneshot_worker_main": "workers",
    "persistent_worker_main": "workers",
}


def __getattr__(name):
    try:
        submodule = _LAZY[name]
    except KeyError:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name)
        ) from None
    value = getattr(import_module("." + submodule, __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ENGINE_SEMANTICS_VERSION",
    "RESULT_FORMAT_VERSION",
    "ResultCache",
    "execute_cached",
    "execute_spec",
    "failure_result",
    "lts_key_digest",
    "oneshot_worker_main",
    "open_result_cache",
    "persistent_worker_main",
    "resolve_result_cache_dir",
    "result_key_digest",
    "strip_label",
    "structural_key",
]
