"""Every structural key in the system, computed in one place.

Three caches identify work structurally, and before this module each
computed its key with its own copy of the code:

* the server's **in-flight dedup table** hashed the id-stripped spec
  document in :mod:`repro.server.protocol`;
* the **LTS disk cache** digested ``(format_version, structural key,
  passes)`` in :mod:`repro.engine.diskcache`;
* the new **result cache** needs a key that is exactly the dedup table's
  -- a completed check answers precisely the requests that would have
  coalesced with it in flight -- plus the version material that bounds
  how long a stored verdict stays trustworthy.

They now all call here.  Two identity layers:

:func:`structural_key`
    SHA-256 of the canonical JSON encoding of a spec document with its
    client-chosen ``id`` label stripped.  Two requests that mean the same
    check -- regardless of who submitted them or what they called it --
    hash identically.  The ``name`` field *does* participate: it flows
    into result labels, so only requests that would produce byte-identical
    canonical results share a key.  The pass configuration and state
    budget live inside the spec document, so they participate too.

:func:`result_key_digest`
    The content address of a persisted verdict: the structural key wrapped
    with :data:`RESULT_FORMAT_VERSION` (the entry layout) and
    :data:`ENGINE_SEMANTICS_VERSION` (the verdict semantics).  Bumping
    either version changes every digest, so a whole generation of entries
    becomes unreachable -- invalidation by construction, no sweep needed
    for correctness (readers still validate the stored material, so a
    colliding or hand-edited file degrades to a miss, never to data).

The LTS digest (:func:`lts_key_digest`) keeps its historical shape --
``repr`` of ``(format version, compilation cache key, passes)`` -- so
existing ``.ltsb`` stores stay warm across this refactor.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Tuple

#: bump when the meaning of a verdict changes: refinement semantics, search
#: order (states-explored counts), counterexample selection or description
#: text.  Every result-cache entry written under the old semantics becomes
#: unreachable.  The LTS disk cache has its own version below; they move
#: independently (a new entry layout does not invalidate verdicts, and a
#: semantics change does not invalidate compiled automata).
ENGINE_SEMANTICS_VERSION = 1

#: bump when the result-cache entry layout changes
RESULT_FORMAT_VERSION = 1

#: bump when the ``.ltsb`` entry layout changes; readers ignore other
#: versions (moved here from :mod:`repro.engine.diskcache`, which
#: re-exports it -- the key material and the layout version live together)
DISKCACHE_FORMAT_VERSION = 2


# -- the spec-document identity (server dedup + result cache) -----------------


def strip_label(spec_doc: Dict[str, Any]) -> Dict[str, Any]:
    """The spec document minus its ``id`` -- the identity dedup ignores."""
    return {key: value for key, value in spec_doc.items() if key != "id"}


def spec_material(spec_doc: Dict[str, Any]) -> str:
    """The canonical encoding the structural key digests."""
    return json.dumps(strip_label(spec_doc), sort_keys=True, separators=(",", ":"))


def structural_key(spec_doc: Dict[str, Any]) -> str:
    """SHA-256 of the label-stripped canonical encoding of one spec.

    Identical checks from any number of clients map to the same key: the
    server coalesces in-flight requests on it, and the result cache
    answers completed ones from it.
    """
    return hashlib.sha256(spec_material(spec_doc).encode("utf-8")).hexdigest()


def result_key_material(spec_doc: Dict[str, Any]) -> str:
    """The full stored-and-compared key material of one result entry."""
    return json.dumps(
        [RESULT_FORMAT_VERSION, ENGINE_SEMANTICS_VERSION, spec_material(spec_doc)],
        separators=(",", ":"),
    )


def result_key_digest(spec_doc: Dict[str, Any]) -> str:
    """The content address of the persisted verdict for *spec_doc*."""
    return hashlib.sha256(result_key_material(spec_doc).encode("utf-8")).hexdigest()


# -- the compiled-LTS identity (engine disk cache) ----------------------------


def lts_key_digest(key, passes: Tuple[str, ...] = ()) -> str:
    """The content address of one compiled-LTS cache entry.

    *key* is a :data:`~repro.engine.cache.CacheKey` (nested tuples of
    strings), *passes* the applied pass names.  ``repr`` of that structure
    is stable across processes and Python versions for the string/tuple
    shapes involved, and the full key is stored in the entry and compared
    on read, so a digest collision degrades to a miss, not to wrong data.
    """
    material = repr((DISKCACHE_FORMAT_VERSION, key, tuple(passes)))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
