"""A content-addressed on-disk store for completed verdicts.

The LTS :class:`~repro.engine.diskcache.DiskCache` persists *compiled
automata*, so a warm run skips compilation but still re-runs every search.
This store persists the **outcome**: the canonical
:class:`~repro.batch.spec.JobResult` bytes of a completed check (verdict,
counterexample, explored counts -- timings excluded, exactly the
byte-identity surface the conformance corpus pins), keyed by the same
structural key the server's dedup table uses.  A later identical request
in *any* mode -- inline :mod:`repro.api`, ``cspbatch``, a warm or cold
``cspserve`` -- answers without re-verifying anything.

Design constraints, in order (the same contract as the LTS store):

* **Soundness over availability.**  The digest folds in
  :data:`~repro.exec.keys.RESULT_FORMAT_VERSION` and
  :data:`~repro.exec.keys.ENGINE_SEMANTICS_VERSION`, so bumping either
  orphans every old entry; the pass configuration and state budget live
  in the spec document and therefore in the key, so a check run under a
  different pass list is a different entry.  Every read still validates
  the stored format/engine versions and the full key material: a
  version-skewed file (only reachable by hand-placing it) counts as
  *stale*, and a missing field, truncation, garbage or key mismatch
  counts as *corrupt*; both are quarantined (removed) and served as a
  miss, never as data.
* **Determinism only.**  Just ``PASS`` and ``FAIL`` are persisted.
  ``ERROR`` can be environmental (a dead worker, a full disk), ``TIMEOUT``
  and ``CANCELLED`` depend on scheduling, and ``selftest`` specs exist to
  inject faults -- none of those verdicts may outlive the run that
  produced them.
* **Label relabelling.**  The stored canonical document carries no ``id``
  (ids are stripped from the key, so requesters with different labels
  share one entry); a hit is rehydrated with the *requester's* ``id`` and
  index, exactly like the server relabels coalesced tickets.
* **Atomic writes.**  Entries are staged in a temporary file and
  published with ``os.replace``; concurrent readers see a complete entry
  or nothing, and two writers racing on one key write identical bytes.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

from ..batch.spec import FAIL, JobResult, PASS
from .keys import (
    ENGINE_SEMANTICS_VERSION,
    RESULT_FORMAT_VERSION,
    result_key_digest,
    result_key_material,
)

#: on-disk entry suffix (one JSON document per entry)
RESULT_SUFFIX = ".jres"

#: the verdicts deterministic enough to outlive their run
_CACHEABLE_VERDICTS = (PASS, FAIL)


def cacheable(spec_doc: Dict[str, Any], verdict: str) -> bool:
    """May this outcome be persisted and replayed to later requesters?"""
    return verdict in _CACHEABLE_VERDICTS and spec_doc.get("kind") != "selftest"


class ResultCache:
    """Content-addressed verdict store shared across modes and sessions."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: uncacheable outcomes offered to :meth:`put` (not failures)
        self.skipped = 0
        #: entries rejected by validation and quarantined on read
        self.quarantined = 0
        #: entries whose stored format/engine version is skewed (swept on read)
        self.stale = 0

    # -- paths ---------------------------------------------------------------

    def path_of(self, spec_doc: Dict[str, Any]) -> str:
        return os.path.join(
            self.directory, result_key_digest(spec_doc) + RESULT_SUFFIX
        )

    def __len__(self) -> int:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        return sum(1 for name in names if name.endswith(RESULT_SUFFIX))

    # -- reads ---------------------------------------------------------------

    def get(self, spec_doc: Dict[str, Any], index: int = 0) -> Optional[JobResult]:
        """The memoised result for *spec_doc*, relabelled for this requester.

        Any defect in the entry -- unreadable file, version skew, stored-key
        mismatch, non-cacheable verdict, missing fields -- counts as a miss;
        the offending file is removed so it cannot fail every future read.
        """
        path = self.path_of(spec_doc)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict):
                raise ValueError("entry is not an object")
            if (
                entry.get("format") != RESULT_FORMAT_VERSION
                or entry.get("engine") != ENGINE_SEMANTICS_VERSION
            ):
                self.stale += 1
                self._remove(path)
                self.misses += 1
                return None
            if entry.get("key") != result_key_material(spec_doc):
                raise ValueError("stored key mismatch")
            stored = entry["result"]
            verdict = stored["verdict"]
            if verdict not in _CACHEABLE_VERDICTS:
                raise ValueError("non-cacheable stored verdict")
            result = JobResult(
                index,
                spec_doc.get("id"),
                verdict,
                name=stored.get("name"),
                counterexample=stored.get("counterexample"),
                states_explored=stored["states_explored"],
                transitions_explored=stored["transitions_explored"],
                error=stored.get("error"),
            )
        except (KeyError, TypeError, ValueError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: str) -> None:
        self.quarantined += 1
        self._remove(path)

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    # -- writes --------------------------------------------------------------

    def put(self, spec_doc: Dict[str, Any], result: JobResult) -> bool:
        """Persist *result* under *spec_doc*'s key; False if not persisted.

        Only deterministic verdicts of real checks are stored (see
        :func:`cacheable`).  The entry is the canonical result document
        minus its ``id`` (relabelled per requester on read), staged and
        published atomically.  Failures are swallowed: the cache is an
        accelerator, never a correctness dependency.
        """
        if not cacheable(spec_doc, result.verdict):
            self.skipped += 1
            return False
        stored = result.canonical()
        del stored["id"]
        entry = {
            "format": RESULT_FORMAT_VERSION,
            "engine": ENGINE_SEMANTICS_VERSION,
            "key": result_key_material(spec_doc),
            "result": stored,
        }
        payload = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        path = self.path_of(spec_doc)
        try:
            fd, staged = tempfile.mkstemp(
                prefix=".staged-", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(staged, path)
            except BaseException:
                try:
                    os.remove(staged)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.writes += 1
        return True

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.endswith((RESULT_SUFFIX, ".tmp")):
                self._remove(os.path.join(self.directory, name))

    def stats(self) -> Dict[str, int]:
        return {
            "result_entries": len(self),
            "result_hits": self.hits,
            "result_misses": self.misses,
            "result_writes": self.writes,
            "result_skipped": self.skipped,
            "result_quarantined": self.quarantined,
            "result_stale": self.stale,
        }

    def __repr__(self) -> str:
        return "ResultCache({!r}, {} entries)".format(self.directory, len(self))
