"""Spec execution: the one ``CheckSpec -> JobResult`` core every mode uses.

:func:`execute_spec` is the **sequential reference semantics**.  It used to
live in :mod:`repro.batch.executor`; it moved here because it was never
batch-specific -- the server's warm workers, the batch pool's one-shot
workers and the inline path all call exactly this function, and the
conformance corpus holds all of them to its byte-identical canonical
output.

:func:`execute_cached` layers verdict memoisation on top: probe a
:class:`~repro.exec.resultcache.ResultCache` before executing, promote the
outcome write-through after.  A hit reproduces the cold run's canonical
bytes exactly (that is the cache's storage contract), differing only in the
run-varying fields (``duration_ms``, ``worker_pid``, ``profile``) that the
canonical surface already excludes.

The cache never changes a verdict and never turns an error into an answer:
uncacheable outcomes (selftests, ``ERROR``/``TIMEOUT``/``CANCELLED``) pass
straight through, and a defective entry degrades to a miss inside
:meth:`ResultCache.get`.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

from ..batch.spec import CheckSpec, ERROR, FAIL, JobResult, PASS
from ..obs.metrics import Metrics
from ..obs.trace import Tracer
from .resultcache import ResultCache


def execute_spec(
    spec: CheckSpec,
    index: int = 0,
    *,
    cache_dir: Optional[str] = None,
    profile: bool = False,
) -> JobResult:
    """Run one spec to completion in this process.

    The sequential reference semantics: every other mode -- the batch
    pool, the server's warm workers, the memoised flavour below -- must
    produce byte-identical :meth:`~repro.batch.spec.JobResult.canonical`
    documents to this function for every spec.  Each call builds a fresh
    pipeline -- fresh environment, alphabet table, and in-memory cache
    (optionally layered over the shared disk store) -- so specs cannot
    interfere.
    """
    from .. import api
    from ..engine.cache import CompilationCache
    from ..engine.diskcache import DiskCache

    started = time.perf_counter()
    obs = Tracer() if profile else None
    cache = None
    if cache_dir is not None:
        cache = CompilationCache(disk=DiskCache(cache_dir))
    check = None
    try:
        if spec.kind == "selftest":
            result = _run_selftest(spec, index, started)
        elif spec.kind == "requirement":
            from ..ota.requirements import check_requirement

            check = check_requirement(
                spec.req_id, passes=spec.passes, obs=obs, cache=cache
            )
            result = JobResult.of_check_result(index, spec.check_id, check)
        elif spec.kind == "refinement":
            check = api.check_refinement(
                spec.spec,
                spec.impl,
                spec.model,
                env=spec.environment(),
                name=spec.name,
                passes=spec.passes,
                cache=cache,
                obs=obs,
                **_budget(spec),
            )
            result = JobResult.of_check_result(index, spec.check_id, check)
        elif spec.kind == "trace":
            from ..rv.check import check_trace_membership

            check = check_trace_membership(
                spec.spec,
                spec.trace,
                env=spec.environment(),
                name=spec.name,
                lines=spec.trace_lines,
                passes=spec.passes,
                cache=cache,
                obs=obs,
                **_budget(spec),
            )
            result = JobResult.of_check_result(index, spec.check_id, check)
        else:
            check = api.check_property(
                spec.term,
                spec.property_name,
                env=spec.environment(),
                name=spec.name,
                passes=spec.passes,
                cache=cache,
                obs=obs,
                **_budget(spec),
            )
            result = JobResult.of_check_result(index, spec.check_id, check)
    except Exception as error:
        result = JobResult(
            index,
            spec.check_id,
            ERROR,
            name=spec.name,
            error="{}: {}".format(type(error).__name__, error),
        )
    result.duration_ms = (time.perf_counter() - started) * 1000.0
    result.worker_pid = os.getpid()
    if profile and check is not None and check.profile is not None:
        result.profile = check.profile.as_dict()
    return result


def _budget(spec: CheckSpec) -> Dict[str, Any]:
    return {} if spec.max_states is None else {"max_states": spec.max_states}


def _run_selftest(spec: CheckSpec, index: int, started: float) -> JobResult:
    """Fault-injection ops: exercise the executor's failure handling."""
    op = spec.op or ""
    if op == "pass":
        return JobResult(index, spec.check_id, PASS, name=spec.name)
    if op == "fail":
        return JobResult(
            index,
            spec.check_id,
            FAIL,
            name=spec.name,
            counterexample={
                "kind": "trace",
                "trace": ["selftest"],
                "description": "injected failure",
            },
        )
    if op == "raise":
        raise RuntimeError("injected worker exception")
    if op.startswith("sleep:"):
        time.sleep(float(op.split(":", 1)[1]))
        return JobResult(index, spec.check_id, PASS, name=spec.name)
    if op.startswith("exit:"):
        # simulate a hard crash (segfault-alike): no teardown, no result
        os._exit(int(op.split(":", 1)[1]))
    raise ValueError("unknown selftest op {!r}".format(op))


# -- memoised execution --------------------------------------------------------


def execute_cached(
    spec: CheckSpec,
    index: int = 0,
    *,
    cache_dir: Optional[str] = None,
    profile: bool = False,
    result_cache: Optional[ResultCache] = None,
    metrics: Optional[Metrics] = None,
    spec_doc: Optional[Dict[str, Any]] = None,
) -> JobResult:
    """:func:`execute_spec` with a :class:`ResultCache` probe around it.

    With ``result_cache=None`` this *is* ``execute_spec`` -- same bytes,
    same counters untouched.  Otherwise: a valid stored verdict answers
    immediately (relabelled to this requester's id/index, ``duration_ms``
    near zero and ``worker_pid`` this process -- both outside the canonical
    surface), and a fresh execution is promoted write-through so the next
    identical request in any mode hits.  *spec_doc* lets callers that
    already hold the wire document (the server, the pool parent) skip
    re-encoding; it must round-trip to *spec*.
    """
    if result_cache is None:
        return execute_spec(
            spec, index, cache_dir=cache_dir, profile=profile
        )
    started = time.perf_counter()
    doc = spec_doc if spec_doc is not None else spec.to_doc()
    hit = result_cache.get(doc, index)
    if hit is not None:
        if metrics is not None:
            metrics.counter("result_cache.hits").inc()
        hit.duration_ms = (time.perf_counter() - started) * 1000.0
        hit.worker_pid = os.getpid()
        return hit
    if metrics is not None:
        metrics.counter("result_cache.misses").inc()
        metrics.counter("exec.executions").inc()
    result = execute_spec(spec, index, cache_dir=cache_dir, profile=profile)
    if result_cache.put(doc, result) and metrics is not None:
        metrics.counter("result_cache.writes").inc()
    return result


# -- construction and CLI plumbing ---------------------------------------------


def open_result_cache(directory: Optional[str]) -> Optional[ResultCache]:
    """A :class:`ResultCache` on *directory*, or None when memoisation is off."""
    return None if directory is None else ResultCache(directory)


def resolve_result_cache_dir(args: Any) -> Optional[str]:
    """The result-cache directory an argparse namespace asks for, if any.

    The flag pair installed by
    :func:`repro.cli_common.add_result_cache_args`: ``--result-cache DIR``
    opts in (memoisation is never on by default -- a default-on verdict
    store would surprise exactly the regression reruns that must observe
    today's engine), and ``--no-result-cache`` wins over it, so wrapper
    scripts can force a run cold without editing the wrapped command.
    """
    if getattr(args, "no_result_cache", False):
        return None
    return getattr(args, "result_cache", None)
