"""The process boundary: worker entry points and failure verdicts.

Two worker shapes exist in the system and both live here:

:func:`oneshot_worker_main`
    The batch pool's unit of crash isolation -- one process, one spec, one
    result document, exit.  A worker that segfaults or ``os._exit``\\ s takes
    down only its own job.
:func:`persistent_worker_main`
    The server's warm worker -- a loop over ``(spec document, profile?)``
    requests on a duplex pipe, so the interpreter, the imported toolchain
    and both cache directories stay hot across requests.  ``None`` is the
    shutdown sentinel.

Both are top-level functions (not closures) so they work under the
``spawn`` start method as well as ``fork``, and both speak JSON spec
documents across the pipe -- the same schema as the ``cspbatch`` manifest
-- so workers never unpickle code.

Both take an optional result-cache directory and run requests through
:func:`~repro.exec.runtime.execute_cached`: the parent probes the store
before dispatching (a hit never costs a fork or a queue slot), and the
worker probes again around execution -- catching entries another worker
promoted meanwhile -- then writes its own verdict through.

:func:`failure_result` builds the verdicts that exist *because* there is a
process boundary: worker death -> ``ERROR``, deadline -> ``TIMEOUT``,
shutdown -> ``CANCELLED``.  They are never cached (see
:func:`~repro.exec.resultcache.cacheable`) -- a crash describes this run's
environment, not the check.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, Optional

from ..batch.spec import CheckSpec, ERROR, JobResult, ManifestError
from .runtime import execute_cached, open_result_cache


def failure_result(
    verdict: str,
    error: str,
    *,
    index: int = 0,
    check_id: Optional[str] = None,
    name: Optional[str] = None,
) -> JobResult:
    """A process-boundary verdict (``ERROR``/``TIMEOUT``/``CANCELLED``)."""
    return JobResult(index, check_id, verdict, name=name, error=error)


def oneshot_worker_main(
    conn,
    spec_doc: Dict[str, Any],
    index: int,
    cache_dir: Optional[str],
    want_profile: bool,
    result_cache_dir: Optional[str] = None,
) -> None:
    """Entry point of one batch worker process: run one spec, send one doc."""
    try:
        spec = CheckSpec.from_doc(spec_doc)
        result = execute_cached(
            spec,
            index,
            cache_dir=cache_dir,
            profile=want_profile,
            result_cache=open_result_cache(result_cache_dir),
            spec_doc=spec_doc,
        )
        conn.send(result.to_doc())
    except BaseException:
        # last-resort: report rather than die silently (a swallowed worker
        # death would surface as a generic exit-code ERROR upstream)
        try:
            conn.send(
                failure_result(
                    ERROR,
                    traceback.format_exc(limit=3),
                    index=index,
                    check_id=spec_doc.get("id"),
                ).to_doc()
            )
        except OSError:
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def persistent_worker_main(
    conn,
    cache_dir: Optional[str],
    result_cache_dir: Optional[str] = None,
) -> None:
    """One warm server worker: loop over (spec document, profile?) requests."""
    result_cache = open_result_cache(result_cache_dir)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            spec_doc, want_profile = message
            try:
                spec = CheckSpec.from_doc(spec_doc)
                result = execute_cached(
                    spec,
                    0,
                    cache_dir=cache_dir,
                    profile=want_profile,
                    result_cache=result_cache,
                    spec_doc=spec_doc,
                )
            except ManifestError as error:
                result = failure_result(
                    ERROR,
                    "undecodable spec: {}".format(error),
                    check_id=spec_doc.get("id"),
                    name=spec_doc.get("name"),
                )
            try:
                conn.send(result.to_doc())
            except (BrokenPipeError, OSError):
                break
    finally:
        try:
            conn.close()
        except OSError:
            pass
