"""Systems under learning: resettable membership oracles over event words.

Active learning (Angluin's L*) needs exactly one capability from the
black box: answer *membership queries* -- "is this word a behaviour of
yours?" -- from a resettable initial state.  Two systems provide it:

* :class:`CaplSimulatorSUL` -- the real thing.  Each query is one fresh,
  deterministic simulator run: a :class:`~repro.capl.CaplNode` interprets
  the CAPL source on a :class:`~repro.canbus.CanBus`, the query word's
  ``send.<req>`` symbols become delivered frames, and the node's
  transmissions (read back off the bus log and mapped to CSP events
  through the :mod:`repro.rv.mapping` layer, like any logged traffic)
  must account for the word's ``rec.<rsp>`` symbols.
* :class:`LtsSUL` -- a white-box teacher over an already-compiled
  automaton, used by the round-trip property tests: membership is
  :meth:`~repro.csp.kernel.CompactLTS.walk`.

**Observation abstraction.**  Within one handler activation the simulator
transmits responses in CAN-arbitration order, but that order is an
artefact of the bus model, not a contract of the ECU -- the extractor
widens multi-output paths to every permutation (``relax_bus_order``) for
the same reason.  :class:`CaplSimulatorSUL` therefore tracks the pending
responses of the current activation as a *multiset*: a ``rec.X`` symbol
is enabled iff an ``X`` is pending, and the next ``send`` symbol is
enabled only once the pending multiset has drained.  Under this
abstraction the language of a straight-line handler program is exactly
the trace language of its (widened) extracted model, which is what makes
the ``learned_vs_extracted`` differential oracle a meaningful statement
rather than an arbitration-order coin flip.

The learnable fragment is the closed-bus reactive one: message handlers
plus ``on start`` outputs.  Timer-driven behaviour has no input symbol to
hang on (queries would have to quantify over firing times), so programs
whose runs touch timers are outside the fragment; a reference teacher
built from a timer-free extraction reports the mismatch as divergence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..candb.model import Database, Message
from ..capl import CaplRuntimeError, parse
from ..capl.interpreter import MessageSpec
from ..csp.events import Event
from ..rv.ingest import LogRecord
from ..rv.mapping import EventMapping, UnknownFrameError

#: a membership-query word / a learned trace: a tuple of CSP events
Word = Tuple[Event, ...]


class LearnError(ValueError):
    """The system under learning cannot be queried as configured."""


def derive_message_specs(
    source: str, *, base_id: int = 0x200, dlc: int = 8
) -> Dict[str, MessageSpec]:
    """Deterministic message specs for a stand-alone CAPL source.

    ``csplearn`` runs without a .dbc: every message name the program
    handles or declares gets a CAN id assigned in sorted-name order.  The
    ids only need to be distinct -- under the multiset observation
    abstraction arbitration order never reaches the learned language.
    """
    program = parse(source)
    names = set()
    for handler in program.message_handlers():
        if isinstance(handler.selector, str) and handler.selector != "*":
            names.add(handler.selector)
    for decl in program.message_declarations():
        if isinstance(decl.message_type, str) and decl.message_type != "*":
            names.add(decl.message_type)
    return {
        name: MessageSpec(base_id + index, dlc)
        for index, name in enumerate(sorted(names))
    }


def _specs_database(
    message_specs: Dict[str, MessageSpec], node: str
) -> Database:
    """An in-memory .dbc equivalent of a message-spec table.

    Every message is declared as sent by *node*: the mapping layer only
    ever sees the node's own transmissions (delivered stimuli bypass the
    bus), so the sender-channel map routes everything to ``rec``.
    """
    database = Database()
    database.add_node(node)
    for name in sorted(message_specs):
        spec = message_specs[name]
        database.add_message(Message(spec.can_id, name, spec.dlc, sender=node))
    return database


class CaplSimulatorSUL:
    """The CAPL interpreter on the simulated bus, as a membership oracle.

    *message_specs* gives the name -> (CAN id, dlc) table (a parsed
    ``.dbc``'s :meth:`~repro.candb.model.Database.message_specs`, or
    :func:`derive_message_specs` for stand-alone sources).  The input
    alphabet is ``send.<name>`` for every handled message, the output
    alphabet ``rec.<name>`` for every declared message variable -- the
    messages the program could ever transmit.
    """

    def __init__(
        self,
        source: str,
        message_specs: Dict[str, MessageSpec],
        *,
        node: str = "ECU",
        in_channel: str = "send",
        out_channel: str = "rec",
        mapping: Optional[EventMapping] = None,
    ) -> None:
        self.source = source
        self.node = node
        self.in_channel = in_channel
        self.out_channel = out_channel
        self.message_specs = dict(message_specs)
        program = parse(source)
        inputs = []
        for handler in program.message_handlers():
            selector = handler.selector
            if selector == "*":
                # a wildcard handler reacts to every known message
                inputs.extend(sorted(self.message_specs))
                continue
            if isinstance(selector, int):
                selector = self._name_of_id(selector)
            if selector not in self.message_specs:
                raise LearnError(
                    "handled message {!r} has no message spec; supply a "
                    ".dbc or spec table that declares it".format(selector)
                )
            inputs.append(selector)
        if not inputs:
            raise LearnError(
                "the program handles no messages; nothing to learn"
            )
        outputs = []
        for decl in program.message_declarations():
            message_type = decl.message_type
            if isinstance(message_type, int):
                message_type = self._name_of_id(message_type)
            if message_type in self.message_specs:
                outputs.append(message_type)
        self._inputs: Tuple[str, ...] = tuple(dict.fromkeys(sorted(inputs)))
        self._outputs: Tuple[str, ...] = tuple(dict.fromkeys(sorted(outputs)))
        self.alphabet: Tuple[Event, ...] = tuple(
            Event(in_channel, (name,)) for name in self._inputs
        ) + tuple(Event(out_channel, (name,)) for name in self._outputs)
        self.mapping = mapping if mapping is not None else EventMapping(
            _specs_database(self.message_specs, node),
            channels={node: out_channel},
            unknown="fail",
        )
        #: fresh simulator instantiations (diagnostics; the learner's
        #: ``learn.sul_runs`` counter tracks actual membership executions)
        self.runs = 0

    def _name_of_id(self, can_id: int) -> str:
        for name, spec in self.message_specs.items():
            if spec.can_id == can_id:
                return name
        raise LearnError(
            "message id 0x{:X} has no message spec; supply a .dbc or "
            "spec table that declares it".format(can_id)
        )

    # -- one membership query = one simulator run ----------------------------

    def membership(self, word: Word) -> bool:
        """Is *word* a behaviour of the program?  One fresh simulator run."""
        from ..canbus import CanBus, CanFrame, Scheduler

        from ..capl import CaplNode

        self.runs += 1
        scheduler = Scheduler()
        bus = CanBus(scheduler)
        try:
            node = CaplNode(self.node, bus, self.source, self.message_specs)
            node.on_start()
            scheduler.run()
        except CaplRuntimeError as failure:
            raise LearnError(
                "the program crashed during startup: {}".format(failure)
            ) from failure
        pending: Dict[str, int] = {}
        seen = self._collect(bus, 0, pending)
        for event in word:
            if event.channel == self.in_channel:
                if sum(pending.values()):
                    return False  # responses must drain before new stimuli
                name = event.fields[0]
                if name not in self._inputs:
                    return False
                spec = self.message_specs[name]
                try:
                    node.deliver(
                        CanFrame(spec.can_id, [0] * spec.dlc, name=name)
                    )
                    scheduler.run()  # flush this activation's transmissions
                except CaplRuntimeError as failure:
                    raise LearnError(
                        "the program crashed handling {!r}: {}".format(
                            name, failure
                        )
                    ) from failure
                seen = self._collect(bus, seen, pending)
            elif event.channel == self.out_channel:
                name = event.fields[0]
                if pending.get(name, 0) <= 0:
                    return False
                pending[name] -= 1
            else:
                return False
        return True

    def _collect(self, bus, seen: int, pending: Dict[str, int]) -> int:
        """Fold new bus-log entries into the pending-response multiset.

        Observed frames go through the rv mapping layer -- the same
        .dbc-driven frame -> event bridge logged traffic uses -- so the
        learner consumes exactly what an offline monitor would.
        """
        entries = bus.log.entries
        for entry in entries[seen:]:
            frame = entry.frame
            record = LogRecord(0, frame.can_id, bytes(frame.data))
            try:
                event = self.mapping.event_of(record)
            except UnknownFrameError as failure:
                raise LearnError(
                    "the program transmitted a frame outside its message "
                    "specs: {}".format(failure)
                ) from failure
            if event is None:
                continue
            name = event.fields[0]
            pending[name] = pending.get(name, 0) + 1
        return len(entries)

    def __repr__(self) -> str:
        return "CaplSimulatorSUL(node={!r}, alphabet={})".format(
            self.node, len(self.alphabet)
        )


class LtsSUL:
    """A white-box teacher: membership by walking a compiled automaton.

    Used by the round-trip property tests -- learning an explicitly known
    automaton must reconstruct its (minimal) language acceptor.  *lts* is
    any object with the kernel's ``walk`` protocol; *alphabet* the symbols
    the learner may ask about.
    """

    def __init__(self, lts, alphabet: Sequence[Event]) -> None:
        self.lts = lts
        self.alphabet: Tuple[Event, ...] = tuple(alphabet)
        self.runs = 0

    def membership(self, word: Word) -> bool:
        self.runs += 1
        return self.lts.walk(list(word)) is not None

    def __repr__(self) -> str:
        return "LtsSUL(alphabet={})".format(len(self.alphabet))
