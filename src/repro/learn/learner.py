"""The L* loop: close the table, hypothesise, refine on counterexamples.

The learner is Angluin's L* with Rivest-Schapire counterexample
processing: rather than adding every prefix of a counterexample to the
access set, a binary search over the counterexample's decompositions
finds the *one* suffix whose addition to ``E`` splits a hypothesis state,
keeping membership-query counts logarithmic in counterexample length.

Divergence detection is the learner's differential contribution: when an
equivalence counterexample's true classification (one membership query)
already agrees with the hypothesis, the teacher's reference -- not the
hypothesis -- is wrong, and learning raises
:class:`~repro.learn.teacher.DivergenceError` carrying the witness.
Since hypothesis rows are always membership-consistent, every processed
counterexample either adds a state or proves divergence, so the loop
terminates within ``max_rounds`` for any regular system.

The result freezes into a :class:`~repro.csp.kernel.CompactLTS` plus a
canonical fingerprint (BFS-renumbered, so it identifies the automaton up
to isomorphism regardless of the exploration path that built it), and
:meth:`LearnResult.to_process` re-expresses the automaton as mutually
recursive process equations -- the bridge into ``CheckSpec`` documents,
``cspbatch``/``cspserve`` and the result cache, which treat a learned
model like any other process.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Tuple

from ..csp.events import Event
from ..csp.process import Process, ProcessRef, external_choice, prefix as prefix_of
from ..obs.trace import NULL_TRACER, Tracer
from .sul import LearnError, Word
from .table import Hypothesis, MembershipCache, ObservationTable
from .teacher import BoundedTeacher, Counterexample, DivergenceError


class LearnStats:
    """Query and convergence counters for one learning run."""

    __slots__ = (
        "membership_queries",
        "sul_runs",
        "equivalence_queries",
        "rounds",
        "states",
        "transitions",
        "counterexample_lengths",
    )

    def __init__(self) -> None:
        self.membership_queries = 0
        self.sul_runs = 0
        self.equivalence_queries = 0
        self.rounds = 0
        self.states = 0
        self.transitions = 0
        self.counterexample_lengths: List[int] = []

    def to_doc(self) -> Dict[str, object]:
        return {
            "membership_queries": self.membership_queries,
            "sul_runs": self.sul_runs,
            "equivalence_queries": self.equivalence_queries,
            "rounds": self.rounds,
            "states": self.states,
            "transitions": self.transitions,
            "counterexample_lengths": list(self.counterexample_lengths),
        }

    def __repr__(self) -> str:
        return (
            "LearnStats(states={}, rounds={}, mq={}, runs={}, eq={})".format(
                self.states,
                self.rounds,
                self.membership_queries,
                self.sul_runs,
                self.equivalence_queries,
            )
        )


class LearnResult:
    """A converged learning run: the automaton plus its provenance."""

    def __init__(self, hypothesis: Hypothesis, stats: LearnStats) -> None:
        self.hypothesis = hypothesis
        self.stats = stats

    @property
    def lts(self):
        """The learned automaton as a :class:`~repro.csp.kernel.CompactLTS`."""
        return self.hypothesis.lts

    @property
    def state_count(self) -> int:
        return self.hypothesis.state_count

    @property
    def transition_count(self) -> int:
        return self.hypothesis.transition_count

    @property
    def alphabet(self) -> Tuple[Event, ...]:
        events = set()
        for edges in self.hypothesis.delta:
            events.update(edges)
        return tuple(sorted(events, key=str))

    # -- canonical form ------------------------------------------------------

    def canonical_transitions(self) -> List[Tuple[int, str, int]]:
        """Edges under BFS renumbering from the initial state.

        The learned automaton is the minimal deterministic acceptor of the
        learned language, unique up to isomorphism; BFS order over
        string-sorted events picks one canonical numbering, so two runs
        that learned the same language -- whatever their query order or
        state-discovery path -- canonicalise identically.
        """
        renumber = {0: 0}
        order = [0]
        cursor = 0
        while cursor < len(order):
            state = order[cursor]
            cursor += 1
            edges = self.hypothesis.delta[state]
            for event in sorted(edges, key=str):
                target = edges[event]
                if target not in renumber:
                    renumber[target] = len(order)
                    order.append(target)
        transitions = []
        for state in order:
            for event in sorted(self.hypothesis.delta[state], key=str):
                transitions.append(
                    (
                        renumber[state],
                        str(event),
                        renumber[self.hypothesis.delta[state][event]],
                    )
                )
        return transitions

    def canonical_lines(self) -> List[str]:
        lines = ["states {}".format(self.state_count)]
        lines.extend(
            "{} --{}--> {}".format(source, label, target)
            for source, label, target in self.canonical_transitions()
        )
        return lines

    def fingerprint(self) -> str:
        digest = hashlib.sha256(
            "\n".join(self.canonical_lines()).encode("utf-8")
        ).hexdigest()
        return "sha256:" + digest

    def to_doc(self) -> Dict[str, object]:
        return {
            "states": self.state_count,
            "transitions": [
                list(edge) for edge in self.canonical_transitions()
            ],
            "alphabet": [str(event) for event in self.alphabet],
            "fingerprint": self.fingerprint(),
            "stats": self.stats.to_doc(),
        }

    # -- the bridge into the process world -----------------------------------

    def to_process(
        self, name: str = "LEARNED"
    ) -> Tuple[ProcessRef, Dict[str, Process]]:
        """The automaton as mutually recursive process equations.

        Returns ``(entry, bindings)``: one equation per canonical state,
        each an external choice of event-prefixed references (``STOP``
        for a state with no successors).  The bindings drop straight into
        a :class:`~repro.batch.spec.CheckSpec`, so a learned model flows
        through the batch executor, the daemon and the result cache like
        any extracted one.
        """
        transitions = self.canonical_transitions()
        states = {0}
        for source, _label, target in transitions:
            states.add(source)
            states.add(target)
        by_event: Dict[int, List[Tuple[str, int]]] = {s: [] for s in states}
        for source, label, target in transitions:
            by_event[source].append((label, target))
        event_of: Dict[str, Event] = {
            str(event): event for event in self.alphabet
        }
        bindings: Dict[str, Process] = {}
        for state in sorted(states):
            branches = [
                prefix_of(
                    event_of[label],
                    ProcessRef("{}_{}".format(name, target)),
                )
                for label, target in sorted(by_event[state])
            ]
            bindings["{}_{}".format(name, state)] = external_choice(*branches)
        return ProcessRef("{}_0".format(name)), bindings

    def __repr__(self) -> str:
        return "LearnResult(states={}, fingerprint={})".format(
            self.state_count, self.fingerprint()[:18] + "..."
        )


def _distinguishing_suffix(
    hypothesis: Hypothesis,
    oracle: MembershipCache,
    counterexample: Counterexample,
    real: bool,
) -> Word:
    """Rivest-Schapire: the one suffix that splits a hypothesis state.

    ``alpha(i)`` replaces the counterexample's length-``i`` prefix by the
    access string of the hypothesis state it reaches (the dead state's
    access answers ``False`` without a query -- the language is
    prefix-closed).  ``alpha(0)`` is the true classification and
    ``alpha(n)`` the hypothesis's, so they differ; binary search finds a
    flip ``alpha(i) != alpha(i+1)`` and the suffix ``w[i+1:]``
    distinguishes the rows on either side of it.
    """
    word = counterexample.word
    path, died = hypothesis.run(word)

    def alpha(cut: int) -> bool:
        if died is not None and cut > died:
            return False  # the implicit reject state absorbs
        return oracle.ask(hypothesis.access[path[cut]] + word[cut:])

    low, high = 0, len(word)
    if alpha(low) == alpha(high):
        raise AssertionError(
            "counterexample {!r} does not distinguish (real={})".format(
                [str(event) for event in word], real
            )
        )
    while high - low > 1:
        middle = (low + high) // 2
        if alpha(middle) == alpha(low):
            low = middle
        else:
            high = middle
    return word[low + 1 :]


def learn(
    sul,
    *,
    teacher=None,
    max_rounds: int = 64,
    depth: int = 8,
    seed: Optional[int] = None,
    obs: Tracer = NULL_TRACER,
) -> LearnResult:
    """Learn *sul*'s language; the converged automaton plus statistics.

    *sul* provides ``alphabet`` and ``membership(word)`` (see
    :mod:`repro.learn.sul`).  *teacher* answers equivalence queries; when
    omitted, a :class:`~repro.learn.teacher.BoundedTeacher` of the given
    *depth* tests the hypothesis against the system itself.  *seed*
    shuffles the order membership queries are issued in (never the
    result); *max_rounds* bounds the refinement loop.

    Raises :class:`~repro.learn.teacher.DivergenceError` when a reference
    teacher's automaton contradicts the system under learning, and
    :class:`~repro.learn.sul.LearnError` when the loop fails to converge.
    """
    oracle = MembershipCache(sul.membership)
    alphabet = tuple(sul.alphabet)
    rng = random.Random(seed) if seed is not None else None
    table = ObservationTable(alphabet, oracle)
    if teacher is None:
        teacher = BoundedTeacher(oracle, alphabet, depth=depth)
    stats = LearnStats()
    metrics = obs.metrics
    with obs.span("learn", alphabet=len(alphabet)):
        hypothesis = None
        for _round in range(max_rounds):
            stats.rounds += 1
            with obs.span("learn.close"):
                table.close(rng)
                hypothesis = table.hypothesis()
            with obs.span("learn.equivalence", states=hypothesis.state_count):
                stats.equivalence_queries += 1
                found = teacher.counterexample(hypothesis)
            if found is None:
                break
            stats.counterexample_lengths.append(len(found.word))
            real = oracle.ask(found.word)
            if real == hypothesis.accepts(found.word):
                # the hypothesis already agrees with the system: the
                # *reference* is what disagrees -- surface the witness
                raise DivergenceError(found.word, found.reference_admits)
            suffix = _distinguishing_suffix(hypothesis, oracle, found, real)
            table.add_suffix(suffix)
        else:
            raise LearnError(
                "no convergence within {} rounds ({} states so far)".format(
                    max_rounds,
                    hypothesis.state_count if hypothesis else 0,
                )
            )
    stats.membership_queries = oracle.membership_queries
    stats.sul_runs = oracle.sul_runs
    stats.states = hypothesis.state_count
    stats.transitions = hypothesis.transition_count
    if metrics is not None:
        metrics.counter("learn.membership_queries").inc(
            stats.membership_queries
        )
        metrics.counter("learn.sul_runs").inc(stats.sul_runs)
        metrics.counter("learn.equivalence_queries").inc(
            stats.equivalence_queries
        )
        metrics.counter("learn.rounds").inc(stats.rounds)
    return LearnResult(hypothesis, stats)
