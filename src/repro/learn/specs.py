"""Learned models as wire-format checks: the exec/batch plumbing bridge.

A converged :class:`~repro.learn.learner.LearnResult` becomes ordinary
``kind: "refinement"`` :class:`~repro.batch.spec.CheckSpec` documents --
the learned automaton re-expressed as process equations refines (and is
refined by) any reference process.  Nothing downstream knows the model
was learned: the specs shard over ``cspbatch`` workers, serve from
``cspserve`` and memoise in the ResultCache byte-identically to inline
execution, which is exactly what the mode-identity acceptance tests pin.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..batch.spec import CheckSpec, reachable_bindings
from ..csp.process import Environment, Process
from .learner import LearnResult


def equivalence_specs(
    result: LearnResult,
    reference: Process,
    *,
    env: Optional[Environment] = None,
    check_id: str = "learn",
    learned_name: str = "LEARNED",
) -> List[CheckSpec]:
    """Both ``[T=`` directions of learned-vs-reference, as CheckSpecs.

    Returns two refinement specs: ``<check_id>:sound`` (the reference
    admits every learned behaviour) and ``<check_id>:complete`` (the
    learned model admits every reference behaviour).  Both passing is
    bidirectional trace equivalence -- the ``learned_vs_extracted``
    oracle's claim, here in the exact wire shape every execution mode
    must agree on byte for byte.
    """
    learned, learned_bindings = result.to_process(learned_name)
    bindings: Dict[str, Process] = reachable_bindings(
        env if env is not None else Environment(), reference
    )
    overlap = set(bindings) & set(learned_bindings)
    if overlap:
        raise ValueError(
            "learned equation names collide with the reference's: "
            "{}".format(sorted(overlap))
        )
    bindings.update(learned_bindings)
    return [
        CheckSpec.refinement(
            reference,
            learned,
            "T",
            check_id="{}:sound".format(check_id),
            name="reference [T= learned",
            bindings=bindings,
        ),
        CheckSpec.refinement(
            learned,
            reference,
            "T",
            check_id="{}:complete".format(check_id),
            name="learned [T= reference",
            bindings=bindings,
        ),
    ]
