"""The L* observation table, specialised to prefix-closed safety languages.

The classic table maps ``(S ∪ S·Σ) × E`` to membership bits: ``S`` the
access strings (prefix-closed, starts at ``ε``), ``E`` the distinguishing
suffixes (starts at ``ε``), and a row is one access string's bit vector
over ``E``.  Two specialisations exploit that every language we learn is
*prefix-closed* (the trace set of a reactive system):

* **Dead-row pruning** -- a rejected word has no accepted extensions, so
  any row whose ``ε`` column is 0 is the dead state.  The hypothesis is a
  partial (safety) automaton over the accepting rows only, which is
  exactly the :class:`~repro.csp.kernel.CompactLTS` shape the rest of
  the toolchain consumes; no explicit reject state is ever built.
* **Prefix pruning of queries** -- ``MQ(u) = 0`` forces ``MQ(u·v) = 0``,
  so the membership cache answers any extension of a known-rejected word
  without running the simulator.

``S`` keeps the invariant that its rows are pairwise distinct (a new
access string is admitted only when its row is fresh), so the table is
always *consistent* in Angluin's sense and only *closedness* ever needs
repair.  Closedness scans ``S·Σ`` in canonical (insertion x alphabet)
order, which makes hypothesis construction deterministic; the optional
*rng* only shuffles the order in which missing cells are issued to the
membership oracle -- the property tests use it to prove the learned
automaton is invariant to query order.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..csp.events import Event
from ..csp.kernel import CompactLTS
from .sul import Word

Row = Tuple[bool, ...]


class MembershipCache:
    """Memoised membership with prefix-closed pruning and query counters.

    *membership_queries* counts every question the learner logically asked;
    *sul_runs* only the ones that reached the system under learning (cache
    misses whose prefixes were not already known rejected).
    """

    def __init__(self, membership: Callable[[Word], bool]) -> None:
        self._membership = membership
        self._cache: Dict[Word, bool] = {(): True}
        self.membership_queries = 0
        self.sul_runs = 0

    def ask(self, word: Word) -> bool:
        self.membership_queries += 1
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        # longest known prefix: a rejected one settles the query for free
        for cut in range(len(word) - 1, -1, -1):
            known = self._cache.get(word[:cut])
            if known is None:
                continue
            if not known:
                self._cache[word] = False
                return False
            break
        self.sul_runs += 1
        answer = bool(self._membership(word))
        self._cache[word] = answer
        if not answer:
            return False
        # membership is prefix-closed: an accepted word accepts its prefixes
        for cut in range(len(word)):
            self._cache.setdefault(word[:cut], True)
        return True

    def known(self, word: Word) -> Optional[bool]:
        return self._cache.get(word)

    def __len__(self) -> int:
        return len(self._cache)


class Hypothesis:
    """One closed table's automaton: a deterministic safety acceptor.

    *access* gives each state's access string (state 0 is ``ε``); *delta*
    the partial transition function.  :attr:`lts` is the same automaton as
    a :class:`~repro.csp.kernel.CompactLTS`, ready for the refinement
    engine and the batch/cache plumbing.
    """

    def __init__(
        self,
        access: Tuple[Word, ...],
        delta: Tuple[Dict[Event, int], ...],
        table,
    ) -> None:
        self.access = access
        self.delta = delta
        lts = CompactLTS(table)
        for _ in access:
            lts.add_state()
        for source, edges in enumerate(delta):
            for event in sorted(edges, key=str):
                lts.add_transition(source, event, edges[event])
        self.lts = lts

    @property
    def state_count(self) -> int:
        return len(self.access)

    @property
    def transition_count(self) -> int:
        return sum(len(edges) for edges in self.delta)

    def run(self, word: Word) -> Tuple[List[int], Optional[int]]:
        """The state path of *word*; second item is the index it died at."""
        path = [0]
        for index, event in enumerate(word):
            target = self.delta[path[-1]].get(event)
            if target is None:
                return path, index
            path.append(target)
        return path, None

    def accepts(self, word: Word) -> bool:
        _path, died = self.run(word)
        return died is None


class ObservationTable:
    """The reduced observation table driving the learner."""

    def __init__(
        self,
        alphabet: Tuple[Event, ...],
        oracle: MembershipCache,
        *,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not alphabet:
            raise ValueError("cannot learn over an empty alphabet")
        self.alphabet = tuple(alphabet)
        self.oracle = oracle
        self.access: List[Word] = [()]
        self.suffixes: List[Word] = [()]
        self._lts_table = None

    # -- rows ----------------------------------------------------------------

    def _fill(self, words: List[Word]) -> None:
        """Resolve every missing cell of *words* x ``E`` against the oracle."""
        cells = [
            prefix + suffix
            for prefix in words
            for suffix in self.suffixes
            if self.oracle.known(prefix + suffix) is None
        ]
        for cell in cells:
            self.oracle.ask(cell)

    def row(self, prefix: Word) -> Row:
        return tuple(
            self.oracle.ask(prefix + suffix) for suffix in self.suffixes
        )

    def add_suffix(self, suffix: Word) -> bool:
        """Admit a distinguishing suffix from counterexample analysis."""
        if suffix in self.suffixes:
            return False
        self.suffixes.append(suffix)
        return True

    # -- closedness ----------------------------------------------------------

    def close(self, rng: Optional[random.Random] = None) -> None:
        """Repair closedness: every accepting one-step row matches ``S``.

        The scan order (``S`` insertion order x canonical alphabet order)
        fixes which unclosed row is promoted first, so the resulting state
        numbering is deterministic.  *rng*, when given, shuffles only the
        order membership queries are *issued* in -- the cells themselves,
        and therefore the table contents, are order-independent.
        """
        while True:
            frontier = [
                access + (symbol,)
                for access in self.access
                for symbol in self.alphabet
            ]
            pending = self.access + frontier
            if rng is not None:
                cells = [
                    prefix + suffix
                    for prefix in pending
                    for suffix in self.suffixes
                    if self.oracle.known(prefix + suffix) is None
                ]
                rng.shuffle(cells)
                for cell in cells:
                    self.oracle.ask(cell)
            else:
                self._fill(pending)
            known = {self.row(access) for access in self.access}
            promoted = False
            for candidate in frontier:
                if not self.oracle.ask(candidate):
                    continue  # dead row: the implicit reject state
                row = self.row(candidate)
                if row not in known:
                    self.access.append(candidate)
                    promoted = True
                    break
            if not promoted:
                return

    # -- the hypothesis ------------------------------------------------------

    def hypothesis(self, lts_table=None) -> Hypothesis:
        """The closed table's automaton (call :meth:`close` first)."""
        rows: Dict[Row, int] = {}
        for index, access in enumerate(self.access):
            row = self.row(access)
            if row in rows:
                raise AssertionError(
                    "duplicate access rows {!r} and {!r}".format(
                        self.access[rows[row]], access
                    )
                )
            rows[row] = index
        delta: Tuple[Dict[Event, int], ...] = tuple(
            {} for _ in self.access
        )
        for index, access in enumerate(self.access):
            for symbol in self.alphabet:
                successor = access + (symbol,)
                if not self.oracle.ask(successor):
                    continue
                target = rows.get(self.row(successor))
                if target is None:
                    raise AssertionError(
                        "table is not closed at {!r}".format(successor)
                    )
                delta[index][symbol] = target
        return Hypothesis(tuple(self.access), delta, lts_table)
