"""Active automata learning of black-box ECUs (``repro.learn``).

The paper's pipeline assumes CAPL source reaches the extractor; real ECUs
are routinely black boxes.  Following Marksteiner et al., "Learn, Check,
Test" (PAPERS.md), this package closes the gap with Angluin-style L*
learning: membership queries are resettable runs of the CAPL interpreter
on the simulated CAN bus (:mod:`repro.learn.sul`), the observation table
with Rivest-Schapire counterexample processing lives in
:mod:`repro.learn.table` / :mod:`repro.learn.learner`, and equivalence
queries are answered either by the refinement engine against a reference
automaton or by bounded conformance testing
(:mod:`repro.learn.teacher`).  The learned model freezes into a
:class:`~repro.csp.kernel.CompactLTS` and, via
:func:`~repro.learn.specs.equivalence_specs`, into ordinary refinement
``CheckSpec`` documents -- learned models verify, batch, serve and
memoise exactly like extracted ones.

Surfaces: the ``csplearn`` CLI (:mod:`repro.learn.cli`), the
``learn_model`` v1 API entry (:mod:`repro.api`), and the
``learned_vs_extracted`` differential oracle (:mod:`repro.quickcheck`).
"""

from .learner import LearnResult, LearnStats, learn
from .specs import equivalence_specs
from .sul import (
    CaplSimulatorSUL,
    LearnError,
    LtsSUL,
    derive_message_specs,
)
from .table import Hypothesis, MembershipCache, ObservationTable
from .teacher import (
    BoundedTeacher,
    Counterexample,
    DivergenceError,
    ReferenceTeacher,
)

__all__ = [
    "BoundedTeacher",
    "CaplSimulatorSUL",
    "Counterexample",
    "DivergenceError",
    "Hypothesis",
    "LearnError",
    "LearnResult",
    "LearnStats",
    "LtsSUL",
    "MembershipCache",
    "ObservationTable",
    "ReferenceTeacher",
    "derive_message_specs",
    "equivalence_specs",
    "learn",
]
