"""``csplearn`` -- learn a black-box model of a CAPL program.

The learning counterpart of ``capl2cspm``: where the translator *reads*
the source, ``csplearn`` only ever *runs* it, querying the simulated bus
through membership queries until the observation table converges.  With
``--teacher reference`` (the default) the extracted model answers
equivalence queries and any disagreement between it and the running
program is reported as a divergence witness (exit status 1); with
``--teacher bounded`` the tool is fully black box and conformance-tests
the hypothesis against the simulator to ``--depth``.

Output formats: a human ``summary``, the canonical ``json`` document
(states, BFS-canonical transitions, fingerprint, query statistics), or
``cspm`` process equations ready for ``cspcheck``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..cli_common import (
    EXIT_OK,
    EXIT_USAGE,
    EXIT_VIOLATION,
    add_observability_args,
    add_seed_arg,
    add_stats_arg,
    emit_stats,
    finish_observability,
    tracer_from_args,
)
from .learner import LearnResult, learn
from .sul import CaplSimulatorSUL, LearnError, derive_message_specs
from .teacher import DivergenceError, ReferenceTeacher


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csplearn",
        description="learn a CSP model of a CAPL program by querying the "
        "simulated CAN bus (active automata learning)",
    )
    parser.add_argument(
        "source",
        help="CAPL source file, or - for stdin",
    )
    parser.add_argument(
        "--node",
        default="ECU",
        help="name of the simulated node (default: ECU)",
    )
    parser.add_argument(
        "--dbc",
        default=None,
        metavar="FILE",
        help="take message specs from this .dbc instead of deriving "
        "deterministic ids from the source",
    )
    parser.add_argument(
        "--teacher",
        choices=("reference", "bounded"),
        default="reference",
        help="equivalence oracle: 'reference' extracts a model from the "
        "source and reports any divergence from it; 'bounded' stays "
        "black box and conformance-tests to --depth (default: reference)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=8,
        help="conformance-testing depth for --teacher bounded (default: 8)",
    )
    parser.add_argument(
        "--max-rounds",
        type=int,
        default=64,
        help="refinement-round bound before giving up (default: 64)",
    )
    parser.add_argument(
        "--format",
        choices=("summary", "json", "cspm"),
        default="summary",
        help="stdout format (default: summary)",
    )
    add_seed_arg(parser)
    add_stats_arg(
        parser, "print query/convergence statistics to stderr"
    )
    add_observability_args(parser)
    return parser


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _reference_teacher(source: str, node: str) -> ReferenceTeacher:
    from ..csp.lts import compile_lts
    from ..translator import ModelExtractor

    result = ModelExtractor().extract(source, node)
    model = result.load()
    reference = compile_lts(
        model.process(node), model.env, max_states=100_000
    )
    return ReferenceTeacher(reference, name="extracted:" + node)


def _emit_summary(result: LearnResult, out) -> None:
    out.write("states: {}\n".format(result.state_count))
    out.write("transitions: {}\n".format(result.transition_count))
    out.write(
        "alphabet: {}\n".format(
            " ".join(str(event) for event in result.alphabet)
        )
    )
    out.write("fingerprint: {}\n".format(result.fingerprint()))
    stats = result.stats
    out.write(
        "converged: {} rounds, {} membership queries, {} simulator runs, "
        "{} equivalence queries\n".format(
            stats.rounds,
            stats.membership_queries,
            stats.sul_runs,
            stats.equivalence_queries,
        )
    )


def _emit_cspm(result: LearnResult, out) -> None:
    from ..cspm import emit_process
    from ..csp.events import Channel

    names = sorted({event.fields[0] for event in result.alphabet})
    channel_names = sorted({event.channel for event in result.alphabet})
    channels = {name: Channel(name, names) for name in channel_names}
    out.write("datatype msgs = {}\n".format(" | ".join(names)))
    out.write("channel {} : msgs\n".format(", ".join(channel_names)))
    _entry, bindings = result.to_process("LEARNED")
    for name in sorted(bindings, key=lambda text: int(text.rsplit("_", 1)[1])):
        out.write(
            "{} = {}\n".format(name, emit_process(bindings[name], channels))
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.depth < 1:
        parser.exit(EXIT_USAGE, "csplearn: --depth must be >= 1\n")
    if args.max_rounds < 1:
        parser.exit(EXIT_USAGE, "csplearn: --max-rounds must be >= 1\n")
    try:
        source = _read_source(args.source)
    except OSError as error:
        parser.exit(
            EXIT_USAGE, "csplearn: cannot read input: {}\n".format(error)
        )
    tracer = tracer_from_args(args)
    try:
        if args.dbc is not None:
            from ..candb import parse_dbc_file

            message_specs = parse_dbc_file(args.dbc).message_specs()
        else:
            message_specs = derive_message_specs(source)
        sul = CaplSimulatorSUL(source, message_specs, node=args.node)
        teacher = (
            _reference_teacher(source, args.node)
            if args.teacher == "reference"
            else None  # learn() builds the bounded teacher itself
        )
    except (LearnError, OSError, ValueError) as error:
        parser.exit(EXIT_USAGE, "csplearn: {}\n".format(error))
    try:
        result = learn(
            sul,
            teacher=teacher,
            max_rounds=args.max_rounds,
            depth=args.depth,
            seed=args.seed,
            obs=tracer,
        )
    except DivergenceError as divergence:
        sys.stderr.write("csplearn: {}\n".format(divergence))
        finish_observability(args, tracer)
        return EXIT_VIOLATION
    except LearnError as error:
        sys.stderr.write("csplearn: {}\n".format(error))
        finish_observability(args, tracer)
        return EXIT_VIOLATION
    if args.format == "json":
        json.dump(result.to_doc(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    elif args.format == "cspm":
        _emit_cspm(result, sys.stdout)
    else:
        _emit_summary(result, sys.stdout)
    if args.stats:
        emit_stats(sorted(result.stats.to_doc().items()))
    finish_observability(args, tracer)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
