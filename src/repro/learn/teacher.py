"""Equivalence teachers: where do hypothesis and truth disagree?

Two strategies answer the learner's equivalence queries:

* :class:`ReferenceTeacher` -- the "Learn, Check, Test" loop's shape: a
  *reference automaton* (here: the model the CAPL extractor produced) is
  compared against the hypothesis with the refinement engine, both
  directions of ``[T=``.  The first counterexample trace of either
  direction is fed back into the table.  Because the reference is an
  independent artefact, a counterexample may expose a disagreement
  between the reference and the *system under learning itself* rather
  than a hypothesis defect; the learner detects that case (the membership
  oracle already agrees with the hypothesis on the trace) and raises
  :class:`DivergenceError` with the witness -- this is precisely the
  signal the ``learned_vs_extracted`` differential oracle fires on.
* :class:`BoundedTeacher` -- pure black box: breadth-first conformance
  testing of the hypothesis against the membership oracle itself, over
  all words up to a depth bound whose proper prefixes both sides accept.
  Exact for languages whose distinguishing words fit the bound; the
  golden corpus uses it for programs with genuinely hidden state, where
  the extractor's over-approximation makes a reference teacher
  inapplicable.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple, Optional

from ..fdr.normalise import normalise
from ..fdr.refine import check_trace_refinement, check_trace_refinement_from
from .sul import LearnError, Word
from .table import Hypothesis, MembershipCache


class Counterexample(NamedTuple):
    """One disagreement: the word, and whether the teacher's truth admits it."""

    word: Word
    reference_admits: bool


class DivergenceError(LearnError):
    """The reference automaton and the system under learning disagree.

    *word* is the witness trace; *reference_admits* tells the direction:
    ``False`` means the system exhibits a behaviour the reference forbids
    (an unsound reference -- for an extracted model, an extractor bug),
    ``True`` that the reference admits a behaviour the system cannot
    produce (an over-approximation outside the precise fragment).
    """

    def __init__(self, word: Word, reference_admits: bool) -> None:
        self.word = word
        self.reference_admits = reference_admits
        shown = [str(event) for event in word]
        if reference_admits:
            message = (
                "the reference admits {} but the system under learning "
                "cannot produce it".format(shown)
            )
        else:
            message = (
                "the system under learning exhibits {} but the reference "
                "forbids it".format(shown)
            )
        super().__init__("learning diverged from the reference: " + message)


class ReferenceTeacher:
    """Engine-backed equivalence against a reference LTS.

    *reference* is any compiled LTS (typically the extracted model's).
    It is normalised once; each equivalence query then runs the two
    ``[T=`` directions on-the-fly and returns the first disagreement.
    """

    def __init__(self, reference, *, name: str = "reference") -> None:
        self.reference = reference
        self.name = name
        self._normalised = normalise(reference)
        #: engine work done across all equivalence queries (diagnostics)
        self.states_explored = 0

    def counterexample(self, hypothesis: Hypothesis) -> Optional[Counterexample]:
        # reference [T= hypothesis: a hypothesis-only trace, if any
        excess = check_trace_refinement_from(self._normalised, hypothesis.lts)
        self.states_explored += excess.states_explored
        if not excess.passed:
            word = tuple(excess.counterexample.full_trace)
            return Counterexample(word, reference_admits=False)
        # hypothesis [T= reference: a reference-only trace, if any
        missing = check_trace_refinement(hypothesis.lts, self.reference)
        self.states_explored += missing.states_explored
        if not missing.passed:
            word = tuple(missing.counterexample.full_trace)
            return Counterexample(word, reference_admits=True)
        return None

    def __repr__(self) -> str:
        return "ReferenceTeacher({!r})".format(self.name)


class BoundedTeacher:
    """Depth-bounded conformance testing against the membership oracle.

    Explores, breadth first, every word whose proper prefixes hypothesis
    and system agree to accept, up to *depth* symbols, and reports the
    first word they classify differently.  With the membership cache in
    front of the simulator, re-querying the agreed frontier after each
    refinement round costs no extra runs.
    """

    def __init__(
        self,
        oracle: MembershipCache,
        alphabet,
        *,
        depth: int = 8,
        max_tests: int = 50_000,
    ) -> None:
        if depth < 1:
            raise ValueError("conformance depth must be at least 1")
        self.oracle = oracle
        self.alphabet = tuple(alphabet)
        self.depth = depth
        self.max_tests = max_tests

    def counterexample(self, hypothesis: Hypothesis) -> Optional[Counterexample]:
        tests = 0
        frontier = deque([()])
        while frontier:
            word = frontier.popleft()
            if len(word) >= self.depth:
                continue
            for symbol in self.alphabet:
                candidate = word + (symbol,)
                tests += 1
                if tests > self.max_tests:
                    raise LearnError(
                        "conformance budget of {} tests exhausted at depth "
                        "{}; lower --depth or raise the budget".format(
                            self.max_tests, len(candidate)
                        )
                    )
                real = self.oracle.ask(candidate)
                guessed = hypothesis.accepts(candidate)
                if real != guessed:
                    return Counterexample(candidate, reference_admits=real)
                if real:
                    frontier.append(candidate)
        return None

    def __repr__(self) -> str:
        return "BoundedTeacher(depth={})".format(self.depth)
