"""``capl2cspm`` -- command-line CAPL-to-CSPm model extraction.

Usage::

    capl2cspm ecu.can [-o ecu.csp] [--node ECU] [--in-channel send]
              [--out-channel rec] [--no-timers] [--check]

This is the batch form of the paper's Fig. 1 'model transformation'
component: it reads an exported CAPL source file and writes the CSPm
implementation model.  ``--check`` additionally loads the generated script
and runs its deadlock-freedom check as a sanity pass.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..cli_common import (
    EXIT_OK,
    EXIT_VIOLATION,
    add_observability_args,
    finish_observability,
    tracer_from_args,
)
from .extractor import ExtractorConfig, ModelExtractor
from .rules import ChannelConvention


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="capl2cspm",
        description="Extract a CSPm implementation model from CAPL source",
    )
    parser.add_argument("capl", help="path to the CAPL source file (.can)")
    parser.add_argument("-o", "--output", default=None, help="output .csp file")
    parser.add_argument("--node", default=None, help="node name (default: file stem)")
    parser.add_argument("--in-channel", default="send", help="receive channel name")
    parser.add_argument("--out-channel", default="rec", help="transmit channel name")
    parser.add_argument(
        "--no-timers", action="store_true", help="drop timer events from the model"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="load the generated model and run a deadlock-freedom sanity check",
    )
    add_observability_args(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    config = ExtractorConfig(
        convention=ChannelConvention(args.in_channel, args.out_channel),
        include_timers=not args.no_timers,
    )
    extractor = ModelExtractor(config)
    tracer = tracer_from_args(args)
    status = EXIT_OK
    with tracer.span("run", tool="capl2cspm", capl=args.capl):
        with tracer.span("parse", capl=args.capl):
            result = extractor.extract_file(args.capl, args.node)
        if args.output:
            result.write(args.output)
        else:
            sys.stdout.write(result.script_text)
        if args.check:
            from ..api import check_deadlock

            model = result.load()
            outcome = check_deadlock(
                model.process(result.process_name),
                env=model.env,
                obs=tracer,
            )
            sys.stderr.write(outcome.summary() + "\n")
            if not outcome.passed:
                status = EXIT_VIOLATION
    finish_observability(args, tracer)
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
