"""Network composition: several extracted node models into one system model.

The paper's Fig. 1 shows the extracted ECU component model being "combined
with other CSP models to compose an overall system model".  The
:class:`NetworkBuilder` does this: it extracts every node's CAPL source with
a *shared* message universe and complementary channel conventions, then
emits a single script defining each node plus

    SYSTEM = Node1 [| {| send, rec |} |] Node2 [| ... |] ...

together with any requested ``assert`` statements, ready for the refinement
checker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cspm.evaluator import CspmModel, load as load_cspm
from .extractor import ExtractionResult, ExtractorConfig, ModelExtractor
from .rules import ChannelConvention
from .templates import CSPM_TEMPLATES, TemplateGroup


class NodeSource:
    """One node to compose: its CAPL source and its channel orientation."""

    def __init__(
        self,
        name: str,
        source: str,
        convention: Optional[ChannelConvention] = None,
    ) -> None:
        self.name = name
        self.source = source
        self.convention = convention


class ComposedSystem:
    """The composed script plus metadata of each member node."""

    def __init__(
        self,
        script_text: str,
        system_name: str,
        results: Sequence[ExtractionResult],
    ) -> None:
        self.script_text = script_text
        self.system_name = system_name
        self.results = list(results)

    def load(self) -> CspmModel:
        return load_cspm(self.script_text)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.script_text)


class NetworkBuilder:
    """Extract-and-compose pipeline over multiple CAPL node programs."""

    def __init__(
        self,
        datatype_name: str = "msgs",
        include_timers: bool = True,
        templates: TemplateGroup = CSPM_TEMPLATES,
    ) -> None:
        self.datatype_name = datatype_name
        self.include_timers = include_timers
        self.templates = templates
        self._nodes: List[NodeSource] = []
        self._spec_definitions: List[Tuple[str, str]] = []
        self._assertions: List[str] = []

    # -- inputs ------------------------------------------------------------------

    def add_node(
        self,
        name: str,
        source: str,
        convention: Optional[ChannelConvention] = None,
    ) -> "NetworkBuilder":
        self._nodes.append(NodeSource(name, source, convention))
        return self

    def add_specification(self, name: str, body: str) -> "NetworkBuilder":
        """Add a hand-written specification process (e.g. the paper's SP02)."""
        self._spec_definitions.append((name, body))
        return self

    def add_assertion(self, text: str) -> "NetworkBuilder":
        """Add a raw ``assert`` line, e.g. ``assert SP02 [T= SYSTEM``."""
        self._assertions.append(text)
        return self

    def assert_trace_refinement(self, spec: str, impl: str) -> "NetworkBuilder":
        return self.add_assertion(
            self.templates.render(
                "assert_refinement", spec=spec, impl=impl, model="T"
            )
        )

    # -- composition --------------------------------------------------------------

    def compose(self, system_name: str = "SYSTEM") -> ComposedSystem:
        if not self._nodes:
            raise ValueError("no nodes added to the network")
        results = self._extract_all()
        script = self._render(system_name, results)
        return ComposedSystem(script, system_name, results)

    def _extract_all(self) -> List[ExtractionResult]:
        # first pass: discover every node's message universe
        universes: List[Tuple[str, ...]] = []
        default_convention = ChannelConvention()
        for index, node in enumerate(self._nodes):
            convention = node.convention or (
                default_convention if index == 0 else default_convention.swapped()
            )
            probe = ModelExtractor(
                ExtractorConfig(
                    convention=convention,
                    datatype_name=self.datatype_name,
                    include_timers=self.include_timers,
                )
            ).extract(node.source, node.name)
            universes.append(probe.messages)
        shared: List[str] = []
        for universe in universes:
            for message in universe:
                if message not in shared:
                    shared.append(message)
        # second pass: re-extract against the shared universe
        results: List[ExtractionResult] = []
        for index, node in enumerate(self._nodes):
            convention = node.convention or (
                default_convention if index == 0 else default_convention.swapped()
            )
            extractor = ModelExtractor(
                ExtractorConfig(
                    convention=convention,
                    datatype_name=self.datatype_name,
                    include_timers=self.include_timers,
                    extra_messages=shared,
                )
            )
            results.append(extractor.extract(node.source, node.name))
        return results

    def _render(self, system_name: str, results: List[ExtractionResult]) -> str:
        lines: List[str] = []
        lines.append(
            self.templates.render(
                "header",
                title="composed system model: "
                + " || ".join(result.node_name for result in results),
            )
        )
        # shared declarations
        messages = list(results[0].messages)
        lines.append(
            self.templates.render(
                "datatype", name=self.datatype_name, constructors=messages
            )
        )
        timers: List[str] = []
        for result in results:
            for timer in result.timers:
                if timer not in timers:
                    timers.append(timer)
        if timers and self.include_timers:
            lines.append(
                self.templates.render(
                    "datatype", name="timerIds", constructors=timers
                )
            )
        lines.append("")
        data_channels: List[str] = []
        for result in results:
            for channel in (
                result.convention.in_channel,
                result.convention.out_channel,
            ):
                if channel not in data_channels:
                    data_channels.append(channel)
        lines.append(
            self.templates.render(
                "channel", names=data_channels, type=self.datatype_name
            )
        )
        if timers and self.include_timers:
            convention = results[0].convention
            lines.append(
                self.templates.render(
                    "channel",
                    names=[
                        convention.timer_channel,
                        convention.set_timer_channel,
                        convention.cancel_timer_channel,
                    ],
                    type="timerIds",
                )
            )
        lines.append("")
        for result in results:
            lines.append(
                self.templates.render(
                    "comment", text="node {}".format(result.node_name)
                )
            )
            for name, body in result.definitions:
                lines.append(
                    self.templates.render("process_def", name=name, body=body)
                )
            lines.append("")
        # the system: synchronise every composition on the data channels
        sync = self.templates.render("enum_set", members=data_channels)
        system_body = results[0].process_name
        for result in results[1:]:
            system_body = self.templates.render(
                "parallel", left=system_body, sync=sync, right=result.process_name
            )
        for name, body in self._spec_definitions:
            lines.append(self.templates.render("process_def", name=name, body=body))
        lines.append(
            self.templates.render(
                "process_def", name=system_name, body=system_body
            )
        )
        if timers and self.include_timers:
            # a view of the system with timer events abstracted away, so
            # message-sequence properties like SP02 can be checked directly
            convention = results[0].convention
            timer_set = self.templates.render(
                "enum_set",
                members=[
                    convention.timer_channel,
                    convention.set_timer_channel,
                    convention.cancel_timer_channel,
                ],
            )
            lines.append(
                self.templates.render(
                    "process_def",
                    name="{}_DATA".format(system_name),
                    body=self.templates.render(
                        "hide", process=system_name, set=timer_set
                    ),
                )
            )
        if self._assertions:
            lines.append("")
            lines.extend(self._assertions)
        return "\n".join(lines).rstrip() + "\n"
