"""Translation rules: CAPL behaviour down to CSPm process structure.

The heart of the model extractor.  Each CAPL event procedure is summarised
into an abstract *behaviour tree* of communication actions:

* ``output(msg)``            -> an Output action (a transmit event),
* ``setTimer``/``cancelTimer`` -> timer actions (visible ``tock``-style
  events, the paper's Sec. VII-B extension),
* ``if``/``switch``          -> Choice (the data condition is abstracted, a
  sound over-approximation in the trace model),
* loops                      -> Loop (zero or more iterations, rendered as an
  auxiliary recursive process),
* calls to user functions    -> inlined (with a recursion guard).

A behaviour tree then renders, through the CSPm templates, into one
recursive process per event procedure plus a main-loop process offering the
external choice of all handlers -- the shape of the paper's Fig. 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..capl import ast_nodes as ast
from .templates import CSPM_TEMPLATES, TemplateGroup


class TranslationError(ValueError):
    """CAPL constructs the extractor cannot soundly translate."""


# -- behaviour trees ---------------------------------------------------------------


class Action:
    """Base class of abstract communication actions."""


class Output(Action):
    """``output(msg)`` -- transmit a message."""

    def __init__(self, message: str) -> None:
        self.message = message

    def __repr__(self) -> str:
        return "Output({!r})".format(self.message)

    def __eq__(self, other) -> bool:
        return isinstance(other, Output) and other.message == self.message

    def __hash__(self) -> int:
        return hash(("Output", self.message))


class SetTimer(Action):
    def __init__(self, timer: str) -> None:
        self.timer = timer

    def __repr__(self) -> str:
        return "SetTimer({!r})".format(self.timer)

    def __eq__(self, other) -> bool:
        return isinstance(other, SetTimer) and other.timer == self.timer

    def __hash__(self) -> int:
        return hash(("SetTimer", self.timer))


class CancelTimer(Action):
    def __init__(self, timer: str) -> None:
        self.timer = timer

    def __repr__(self) -> str:
        return "CancelTimer({!r})".format(self.timer)

    def __eq__(self, other) -> bool:
        return isinstance(other, CancelTimer) and other.timer == self.timer

    def __hash__(self) -> int:
        return hash(("CancelTimer", self.timer))


class Behaviour:
    """Base class of behaviour-tree nodes."""

    def is_empty(self) -> bool:
        return False

    def actions(self) -> List[Action]:
        """Every action appearing anywhere in the tree."""
        return []


class Empty(Behaviour):
    def is_empty(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "Empty"


class Act(Behaviour):
    def __init__(self, action: Action) -> None:
        self.action = action

    def actions(self) -> List[Action]:
        return [self.action]

    def __repr__(self) -> str:
        return "Act({!r})".format(self.action)


class Seq(Behaviour):
    def __init__(self, items: Sequence[Behaviour]) -> None:
        flattened: List[Behaviour] = []
        for item in items:
            if item.is_empty():
                continue
            if isinstance(item, Seq):
                flattened.extend(item.items)
            else:
                flattened.append(item)
        self.items = flattened

    def is_empty(self) -> bool:
        return not self.items

    def actions(self) -> List[Action]:
        collected: List[Action] = []
        for item in self.items:
            collected.extend(item.actions())
        return collected

    def __repr__(self) -> str:
        return "Seq({!r})".format(self.items)


class Choice(Behaviour):
    def __init__(self, branches: Sequence[Behaviour]) -> None:
        self.branches = list(branches)

    def is_empty(self) -> bool:
        return all(branch.is_empty() for branch in self.branches)

    def actions(self) -> List[Action]:
        collected: List[Action] = []
        for branch in self.branches:
            collected.extend(branch.actions())
        return collected

    def __repr__(self) -> str:
        return "Choice({!r})".format(self.branches)


class Loop(Behaviour):
    def __init__(self, body: Behaviour) -> None:
        self.body = body

    def is_empty(self) -> bool:
        return self.body.is_empty()

    def actions(self) -> List[Action]:
        return self.body.actions()

    def __repr__(self) -> str:
        return "Loop({!r})".format(self.body)


#: Enumeration guards for :func:`relax_bus_order`.  Behaviours past these
#: sizes fall back to the coarse any-order over-approximation.
MAX_RELAX_PATHS = 64
MAX_RELAX_VARIANTS = 256


def relax_bus_order(behaviour: Behaviour) -> Behaviour:
    """Over-approximate CAN transmit-queue arbitration.

    ``output()`` does not put a frame on the bus -- it queues it, and queued
    frames win the bus by arbitration (lowest CAN id first), not in program
    order.  A handler that queues two or more frames can therefore emit them
    in an order different from its ``output`` calls, and a model pinning the
    program order would reject real behaviour (an unsound extraction).

    Execution paths queuing >= 2 outputs are widened to the external choice
    of every permutation of their outputs; non-output actions keep their
    positions.  Handlers whose paths queue at most one frame each are
    returned unchanged (arbitration cannot reorder a single frame), so the
    common request/response shape renders exactly as before.  Behaviours too
    large to enumerate -- loops that transmit, or combinatorial blow-ups --
    fall back to :func:`_any_action_order`, a coarser but still sound
    over-approximation.
    """
    outputs = [action for action in behaviour.actions() if isinstance(action, Output)]
    if len(outputs) < 2:
        return behaviour
    paths = _action_paths(behaviour)
    if paths is None:
        return _any_action_order(behaviour)
    widened: List[Behaviour] = []
    signatures: Set[str] = set()
    reordered = False
    for path in paths:
        variants = _output_permutations(path)
        if variants is None or len(signatures) + len(variants) > MAX_RELAX_VARIANTS:
            return _any_action_order(behaviour)
        if len(variants) > 1:
            reordered = True
        for variant in variants:
            signature = repr(variant)
            if signature not in signatures:
                signatures.add(signature)
                widened.append(Seq(variant))
    if not reordered:
        # every path queues at most one frame: nothing to relax, keep the
        # original tree shape (and thus the original rendered text)
        return behaviour
    if len(widened) == 1:
        return widened[0]
    return Choice(widened)


def _action_paths(behaviour: Behaviour) -> Optional[List[List[Behaviour]]]:
    """All execution paths as sequences of atomic items (Act/Loop nodes).

    Loops that never transmit are kept as atomic path items; a transmitting
    loop (unbounded queue) or a path blow-up returns None.
    """
    if isinstance(behaviour, Empty):
        return [[]]
    if isinstance(behaviour, Act):
        return [[behaviour]]
    if isinstance(behaviour, Loop):
        if any(isinstance(action, Output) for action in behaviour.actions()):
            return None
        return [[behaviour]]
    if isinstance(behaviour, Seq):
        combined: List[List[Behaviour]] = [[]]
        for item in behaviour.items:
            item_paths = _action_paths(item)
            if item_paths is None:
                return None
            combined = [head + tail for head in combined for tail in item_paths]
            if len(combined) > MAX_RELAX_PATHS:
                return None
        return combined
    if isinstance(behaviour, Choice):
        merged: List[List[Behaviour]] = []
        for branch in behaviour.branches:
            branch_paths = _action_paths(branch)
            if branch_paths is None:
                return None
            merged.extend(branch_paths)
            if len(merged) > MAX_RELAX_PATHS:
                return None
        return merged
    raise TranslationError(
        "unknown behaviour node {!r}".format(type(behaviour).__name__)
    )


def _output_permutations(path: List[Behaviour]) -> Optional[List[List[Behaviour]]]:
    """One path per distinct ordering of the path's queued outputs."""
    import itertools

    positions = [
        index
        for index, item in enumerate(path)
        if isinstance(item, Act) and isinstance(item.action, Output)
    ]
    if len(positions) < 2:
        return [path]
    messages = [path[index].action.message for index in positions]
    orderings = sorted(set(itertools.permutations(messages)))
    if len(orderings) > MAX_RELAX_VARIANTS:
        return None
    variants: List[List[Behaviour]] = []
    for ordering in orderings:
        variant = list(path)
        for index, message in zip(positions, ordering):
            variant[index] = Act(Output(message))
        variants.append(variant)
    return variants


def _any_action_order(behaviour: Behaviour) -> Behaviour:
    """Coarse fallback: any finite sequence of the behaviour's actions."""
    distinct: List[Action] = []
    for action in behaviour.actions():
        if action not in distinct:
            distinct.append(action)
    if not distinct:
        return Empty()
    body: Behaviour = (
        Act(distinct[0])
        if len(distinct) == 1
        else Choice([Act(action) for action in distinct])
    )
    return Loop(body)


def may_be_silent(behaviour: Behaviour) -> bool:
    """True if some execution path through the behaviour performs no action."""
    if isinstance(behaviour, Empty):
        return True
    if isinstance(behaviour, Act):
        return False
    if isinstance(behaviour, Seq):
        return all(may_be_silent(item) for item in behaviour.items)
    if isinstance(behaviour, Choice):
        return any(may_be_silent(branch) for branch in behaviour.branches)
    if isinstance(behaviour, Loop):
        return True  # zero iterations
    raise TranslationError("unknown behaviour node {!r}".format(type(behaviour).__name__))


def must_act_variant(behaviour: Behaviour) -> Optional[Behaviour]:
    """The sub-behaviour containing exactly the paths with >= 1 action.

    Used when rendering loops: a loop iteration that performs no event would
    produce unguarded recursion (``LOOP = LOOP [] ...``) in the generated
    CSPm, so loop bodies recurse only through their acting paths -- silent
    iterations are no-ops already covered by the loop's exit branch.
    Returns None when every path is silent.
    """
    if isinstance(behaviour, Empty):
        return None
    if isinstance(behaviour, Act):
        return behaviour
    if isinstance(behaviour, Choice):
        kept = [must_act_variant(branch) for branch in behaviour.branches]
        kept = [branch for branch in kept if branch is not None]
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        return Choice(kept)
    if isinstance(behaviour, Loop):
        body = must_act_variant(behaviour.body)
        if body is None:
            return None
        # at least one acting iteration, then the loop continues freely
        return Seq([body, Loop(behaviour.body)])
    if isinstance(behaviour, Seq):
        return _must_act_seq(behaviour.items)
    raise TranslationError("unknown behaviour node {!r}".format(type(behaviour).__name__))


def _must_act_seq(items) -> Optional[Behaviour]:
    if not items:
        return None
    head, rest = items[0], list(items[1:])
    options = []
    acting_head = must_act_variant(head)
    if acting_head is not None:
        options.append(Seq([acting_head] + rest))
    if may_be_silent(head):
        acting_rest = _must_act_seq(rest)
        if acting_rest is not None:
            options.append(acting_rest)
    if not options:
        return None
    if len(options) == 1:
        return options[0]
    return Choice(options)


# -- summarising CAPL statements into behaviour trees ---------------------------------


class BehaviourBuilder:
    """Summarise statement trees into behaviour trees."""

    def __init__(
        self,
        message_vars: Dict[str, str],
        functions: Dict[str, ast.FunctionDef],
        known_messages: Set[str],
    ) -> None:
        self.message_vars = dict(message_vars)
        self.functions = functions
        self.known_messages = set(known_messages)
        self._inlining: List[str] = []

    def of_block(self, block: ast.Block) -> Behaviour:
        return Seq([self.of_statement(s) for s in block.statements])

    def of_statement(self, stmt: ast.Stmt) -> Behaviour:
        if isinstance(stmt, ast.Block):
            return self.of_block(stmt)
        if isinstance(stmt, ast.VarDecl):
            if stmt.message_type is not None and isinstance(stmt.message_type, str):
                self.message_vars[stmt.name] = stmt.message_type
            return Empty()
        if isinstance(stmt, ast.ExprStmt):
            return self.of_expression(stmt.expr)
        if isinstance(stmt, ast.IfStmt):
            then_branch = self.of_statement(stmt.then_branch)
            else_branch = (
                self.of_statement(stmt.else_branch)
                if stmt.else_branch is not None
                else Empty()
            )
            if then_branch.is_empty() and else_branch.is_empty():
                return Empty()
            return Choice([then_branch, else_branch])
        if isinstance(stmt, (ast.WhileStmt, ast.ForStmt)):
            body = self.of_statement(stmt.body)
            if isinstance(stmt, ast.ForStmt) and stmt.init is not None:
                init = self.of_statement(stmt.init)
            else:
                init = Empty()
            if body.is_empty():
                return init
            return Seq([init, Loop(body)])
        if isinstance(stmt, ast.DoWhileStmt):
            body = self.of_statement(stmt.body)
            if body.is_empty():
                return Empty()
            return Seq([body, Loop(body)])
        if isinstance(stmt, ast.SwitchStmt):
            branches = [
                Seq([self.of_statement(s) for s in case.statements])
                for case in stmt.cases
            ]
            # an implicit no-match branch exists unless a default case does
            if not any(case.value is None for case in stmt.cases):
                branches.append(Empty())
            if all(branch.is_empty() for branch in branches):
                return Empty()
            return Choice(branches)
        if isinstance(stmt, (ast.ReturnStmt, ast.BreakStmt, ast.ContinueStmt)):
            return Empty()
        raise TranslationError(
            "unsupported statement {!r}".format(type(stmt).__name__)
        )

    def of_expression(self, expr: ast.Expr) -> Behaviour:
        if isinstance(expr, ast.CallExpr) and isinstance(expr.function, ast.Identifier):
            name = expr.function.name
            if name == "output":
                return Act(Output(self._resolve_message(expr)))
            if name == "setTimer" and expr.args:
                return Act(SetTimer(self._resolve_timer(expr.args[0])))
            if name == "cancelTimer" and expr.args:
                return Act(CancelTimer(self._resolve_timer(expr.args[0])))
            if name in self.functions:
                return self._inline_function(name)
            return Empty()
        if isinstance(expr, ast.AssignExpr):
            return self.of_expression(expr.value)
        if isinstance(expr, ast.ConditionalExpr):
            then_value = self.of_expression(expr.then_value)
            else_value = self.of_expression(expr.else_value)
            if then_value.is_empty() and else_value.is_empty():
                return Empty()
            return Choice([then_value, else_value])
        # arithmetic, comparisons, reads: no communication
        return Empty()

    def _inline_function(self, name: str) -> Behaviour:
        if name in self._inlining:
            raise TranslationError(
                "recursive CAPL function {!r} cannot be summarised".format(name)
            )
        self._inlining.append(name)
        try:
            return self.of_block(self.functions[name].body)
        finally:
            self._inlining.pop()

    def _resolve_message(self, call: ast.CallExpr) -> str:
        if len(call.args) != 1:
            raise TranslationError("output() takes exactly one message argument")
        argument = call.args[0]
        if isinstance(argument, ast.Identifier):
            name = argument.name
            if name in self.message_vars:
                return self.message_vars[name]
            if name in self.known_messages:
                return name
            raise TranslationError(
                "output({}) references an undeclared message variable".format(name)
            )
        if isinstance(argument, ast.ThisExpr):
            raise TranslationError("re-transmitting 'this' is not supported")
        raise TranslationError("output() argument must be a message variable")

    @staticmethod
    def _resolve_timer(expr: ast.Expr) -> str:
        if isinstance(expr, ast.Identifier):
            return expr.name
        raise TranslationError("timer argument must be a timer variable")


# -- rendering behaviour trees to CSPm text --------------------------------------------


class ChannelConvention:
    """Channel naming for a node's communications.

    Defaults follow the paper's Sec. V-B example: the peer transmits to the
    node on ``send``, the node replies on ``rec``.
    """

    def __init__(
        self,
        in_channel: str = "send",
        out_channel: str = "rec",
        timer_channel: str = "timeout",
        set_timer_channel: str = "setTimer",
        cancel_timer_channel: str = "cancelTimer",
    ) -> None:
        self.in_channel = in_channel
        self.out_channel = out_channel
        self.timer_channel = timer_channel
        self.set_timer_channel = set_timer_channel
        self.cancel_timer_channel = cancel_timer_channel

    def swapped(self) -> "ChannelConvention":
        """The peer's view of the same two data channels."""
        return ChannelConvention(
            self.out_channel,
            self.in_channel,
            self.timer_channel,
            self.set_timer_channel,
            self.cancel_timer_channel,
        )


class ProcessRenderer:
    """Render behaviour trees into CSPm prefix chains via the template group."""

    def __init__(
        self,
        convention: ChannelConvention,
        templates: TemplateGroup = CSPM_TEMPLATES,
        include_timers: bool = True,
    ) -> None:
        self.convention = convention
        self.templates = templates
        self.include_timers = include_timers
        #: auxiliary loop processes generated while rendering: (name, body)
        self.auxiliary: List[Tuple[str, str]] = []
        self._loop_counter = 0

    def action_event(self, action: Action) -> Optional[str]:
        if isinstance(action, Output):
            return self.templates.render(
                "event", channel=self.convention.out_channel, payload=action.message
            )
        if not self.include_timers:
            return None
        if isinstance(action, SetTimer):
            return self.templates.render(
                "receive_event",
                channel=self.convention.set_timer_channel,
                payload=action.timer,
            )
        if isinstance(action, CancelTimer):
            return self.templates.render(
                "receive_event",
                channel=self.convention.cancel_timer_channel,
                payload=action.timer,
            )
        return None

    def _renderable_projection(self, behaviour: Behaviour) -> Behaviour:
        """Replace actions that render to no event (e.g. timer ops with
        timers disabled) by Empty, so guardedness analysis sees the truth."""
        if isinstance(behaviour, Act):
            if self.action_event(behaviour.action) is None:
                return Empty()
            return behaviour
        if isinstance(behaviour, Seq):
            return Seq([self._renderable_projection(item) for item in behaviour.items])
        if isinstance(behaviour, Choice):
            return Choice(
                [self._renderable_projection(branch) for branch in behaviour.branches]
            )
        if isinstance(behaviour, Loop):
            return Loop(self._renderable_projection(behaviour.body))
        return behaviour

    def render(self, behaviour: Behaviour, continuation: str, prefix: str) -> str:
        """Render *behaviour* followed by *continuation* (a process name).

        *prefix* seeds names of generated auxiliary loop processes.
        """
        if behaviour.is_empty():
            return continuation
        if isinstance(behaviour, Act):
            event = self.action_event(behaviour.action)
            if event is None:
                return continuation
            return self.templates.render(
                "prefix", event=event, continuation=continuation
            )
        if isinstance(behaviour, Seq):
            result = continuation
            for item in reversed(behaviour.items):
                result = self.render(item, result, prefix)
            return result
        if isinstance(behaviour, Choice):
            rendered: List[str] = []
            for branch in behaviour.branches:
                text = self.render(branch, continuation, prefix)
                rendered.append(text)
            unique: List[str] = []
            for text in rendered:
                if text not in unique:
                    unique.append(text)
            if len(unique) == 1:
                return unique[0]
            return "(" + self.templates.render("external_choice", branches=unique) + ")"
        if isinstance(behaviour, Loop):
            # recurse only through iterations that emit at least one event
            # *under the current configuration*: a silent iteration is a
            # no-op (the exit branch covers it) and would generate unguarded
            # recursion in the CSPm output
            acting_body = must_act_variant(self._renderable_projection(behaviour.body))
            if acting_body is None:
                return continuation
            self._loop_counter += 1
            name = "{}_LOOP{}".format(prefix, self._loop_counter)
            body = self.render(acting_body, name, prefix)
            definition = "(" + self.templates.render(
                "external_choice", branches=[continuation, body]
            ) + ")"
            self.auxiliary.append((name, definition))
            return name
        raise TranslationError(
            "unknown behaviour node {!r}".format(type(behaviour).__name__)
        )


def selector_process_name(kind: str, selector: Union[str, int, None]) -> str:
    """The generated process name for an event procedure (Fig.-3 style)."""
    if kind == "message":
        if isinstance(selector, int):
            return "ONMSG_ID_0X{:X}".format(selector)
        if selector == "*":
            return "ONMSG_ANY"
        return "ONMSG_{}".format(str(selector).upper())
    if kind == "timer":
        return "ONTIMER_{}".format(str(selector).upper())
    if kind == "key":
        return "ONKEY_{}".format(str(selector).upper())
    return "ON{}".format(kind.upper())
