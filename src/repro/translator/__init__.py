"""The model extractor -- the paper's core contribution (Fig. 1, Sec. VI).

Translates CAPL application code into CSPm implementation models through an
ANTLR-style listener walk and a StringTemplate-style template group, then
composes node models into system models for refinement checking.
"""

from .templates import CSPM_TEMPLATES, Template, TemplateError, TemplateGroup
from .listener import CaplListener, walk
from .rules import (
    Act,
    Action,
    Behaviour,
    BehaviourBuilder,
    CancelTimer,
    ChannelConvention,
    Choice,
    Empty,
    Loop,
    Output,
    ProcessRenderer,
    Seq,
    SetTimer,
    TranslationError,
    selector_process_name,
)
from .extractor import (
    DeclarationCollector,
    ExtractionResult,
    ExtractorConfig,
    ModelExtractor,
)
from .network import ComposedSystem, NetworkBuilder, NodeSource

__all__ = [
    "Act",
    "Action",
    "Behaviour",
    "BehaviourBuilder",
    "CSPM_TEMPLATES",
    "CancelTimer",
    "CaplListener",
    "ChannelConvention",
    "Choice",
    "ComposedSystem",
    "DeclarationCollector",
    "Empty",
    "ExtractionResult",
    "ExtractorConfig",
    "Loop",
    "ModelExtractor",
    "NetworkBuilder",
    "NodeSource",
    "Output",
    "ProcessRenderer",
    "Seq",
    "SetTimer",
    "Template",
    "TemplateError",
    "TemplateGroup",
    "TranslationError",
    "selector_process_name",
    "walk",
]
