"""ANTLR-style listener walk over the CAPL AST.

ANTLR generates "an empty program containing skeletal methods, each
corresponding to nodes of an Abstract Syntax Tree" (paper Sec. IV-C); users
override the methods they care about.  :class:`CaplListener` is that skeletal
program for our CAPL AST, and :func:`walk` performs the depth-first
enter/exit traversal.  The model extractor is a listener subclass -- exactly
the architecture of the paper's prototype.
"""

from __future__ import annotations

from typing import Optional

from ..capl import ast_nodes as ast


class CaplListener:
    """Skeletal listener: override only the callbacks you need."""

    # -- program structure ----------------------------------------------------

    def enter_program(self, node: ast.Program) -> None: ...
    def exit_program(self, node: ast.Program) -> None: ...
    def enter_include(self, node: ast.IncludeDirective) -> None: ...
    def enter_variable(self, node: ast.VarDecl) -> None: ...
    def enter_function(self, node: ast.FunctionDef) -> None: ...
    def exit_function(self, node: ast.FunctionDef) -> None: ...
    def enter_event_procedure(self, node: ast.EventProcedure) -> None: ...
    def exit_event_procedure(self, node: ast.EventProcedure) -> None: ...

    # -- statements --------------------------------------------------------------

    def enter_block(self, node: ast.Block) -> None: ...
    def exit_block(self, node: ast.Block) -> None: ...
    def enter_if(self, node: ast.IfStmt) -> None: ...
    def exit_if(self, node: ast.IfStmt) -> None: ...
    def enter_while(self, node: ast.WhileStmt) -> None: ...
    def exit_while(self, node: ast.WhileStmt) -> None: ...
    def enter_do_while(self, node: ast.DoWhileStmt) -> None: ...
    def exit_do_while(self, node: ast.DoWhileStmt) -> None: ...
    def enter_for(self, node: ast.ForStmt) -> None: ...
    def exit_for(self, node: ast.ForStmt) -> None: ...
    def enter_switch(self, node: ast.SwitchStmt) -> None: ...
    def exit_switch(self, node: ast.SwitchStmt) -> None: ...
    def enter_return(self, node: ast.ReturnStmt) -> None: ...
    def enter_expr_stmt(self, node: ast.ExprStmt) -> None: ...

    # -- expressions --------------------------------------------------------------

    def enter_call(self, node: ast.CallExpr) -> None: ...
    def enter_assign(self, node: ast.AssignExpr) -> None: ...
    def enter_identifier(self, node: ast.Identifier) -> None: ...


def walk(listener: CaplListener, node: object) -> None:
    """Depth-first traversal firing the listener's enter/exit callbacks."""
    if isinstance(node, ast.Program):
        listener.enter_program(node)
        for include in node.includes:
            listener.enter_include(include)
        for variable in node.variables:
            listener.enter_variable(variable)
            _walk_optional(listener, variable.initializer)
        for function in node.functions:
            listener.enter_function(function)
            walk(listener, function.body)
            listener.exit_function(function)
        for procedure in node.event_procedures:
            listener.enter_event_procedure(procedure)
            walk(listener, procedure.body)
            listener.exit_event_procedure(procedure)
        listener.exit_program(node)
    elif isinstance(node, ast.Block):
        listener.enter_block(node)
        for statement in node.statements:
            walk(listener, statement)
        listener.exit_block(node)
    elif isinstance(node, ast.VarDecl):
        listener.enter_variable(node)
        _walk_optional(listener, node.initializer)
    elif isinstance(node, ast.ExprStmt):
        listener.enter_expr_stmt(node)
        walk(listener, node.expr)
    elif isinstance(node, ast.IfStmt):
        listener.enter_if(node)
        walk(listener, node.condition)
        walk(listener, node.then_branch)
        _walk_optional(listener, node.else_branch)
        listener.exit_if(node)
    elif isinstance(node, ast.WhileStmt):
        listener.enter_while(node)
        walk(listener, node.condition)
        walk(listener, node.body)
        listener.exit_while(node)
    elif isinstance(node, ast.DoWhileStmt):
        listener.enter_do_while(node)
        walk(listener, node.body)
        walk(listener, node.condition)
        listener.exit_do_while(node)
    elif isinstance(node, ast.ForStmt):
        listener.enter_for(node)
        _walk_optional(listener, node.init)
        _walk_optional(listener, node.condition)
        _walk_optional(listener, node.update)
        walk(listener, node.body)
        listener.exit_for(node)
    elif isinstance(node, ast.SwitchStmt):
        listener.enter_switch(node)
        walk(listener, node.subject)
        for case in node.cases:
            _walk_optional(listener, case.value)
            for statement in case.statements:
                walk(listener, statement)
        listener.exit_switch(node)
    elif isinstance(node, ast.ReturnStmt):
        listener.enter_return(node)
        _walk_optional(listener, node.value)
    elif isinstance(node, (ast.BreakStmt, ast.ContinueStmt)):
        pass
    elif isinstance(node, ast.CallExpr):
        listener.enter_call(node)
        walk(listener, node.function)
        for argument in node.args:
            walk(listener, argument)
    elif isinstance(node, ast.AssignExpr):
        listener.enter_assign(node)
        walk(listener, node.target)
        walk(listener, node.value)
    elif isinstance(node, ast.BinaryExpr):
        walk(listener, node.left)
        walk(listener, node.right)
    elif isinstance(node, (ast.UnaryExpr, ast.PostfixExpr)):
        walk(listener, node.operand)
    elif isinstance(node, ast.ConditionalExpr):
        walk(listener, node.condition)
        walk(listener, node.then_value)
        walk(listener, node.else_value)
    elif isinstance(node, ast.MemberAccess):
        walk(listener, node.obj)
    elif isinstance(node, ast.IndexExpr):
        walk(listener, node.obj)
        walk(listener, node.index)
    elif isinstance(node, ast.Identifier):
        listener.enter_identifier(node)
    elif isinstance(
        node,
        (
            ast.IntLiteral,
            ast.FloatLiteral,
            ast.StringLiteral,
            ast.CharLiteral,
            ast.ThisExpr,
        ),
    ):
        pass
    elif node is None:
        pass
    else:
        raise TypeError("walk: unknown node {!r}".format(type(node).__name__))


def _walk_optional(listener: CaplListener, node: Optional[object]) -> None:
    if node is not None:
        walk(listener, node)
