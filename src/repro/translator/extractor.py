"""The model extractor: CAPL source to a CSPm implementation model.

This is the pipeline processor described in the paper's Sec. VI: source text
runs "through successive lexing, parsing, template generating stages before
finally writing a target file".  Concretely:

1. the CAPL lexer/parser produce the AST (:mod:`repro.capl`),
2. a listener walk collects message declarations, timers and event
   procedures (:class:`DeclarationCollector`),
3. each event procedure's body is summarised to a behaviour tree and
   rendered through the CSPm templates (:mod:`repro.translator.rules`),
4. the assembled script -- datatype and channel declarations followed by one
   recursive process per handler and a main-loop choice (the paper's Fig. 3
   shape) -- is returned, writable to a ``.csp`` file and loadable straight
   into the refinement checker.

Beyond the paper's prototype (which handled ``on message`` and ``output``
only), the extractor also translates timers into visible ``tock``-style
events with per-timer monitor processes, conditionals into choices, loops
into auxiliary recursive processes, and user functions by inlining --
the extensions Sec. VIII-A asks for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..capl import ast_nodes as ast
from ..capl.parser import parse as parse_capl
from ..cspm.evaluator import CspmModel, load as load_cspm
from .listener import CaplListener, walk
from .rules import (
    BehaviourBuilder,
    ChannelConvention,
    ProcessRenderer,
    TranslationError,
    relax_bus_order,
    selector_process_name,
)
from .templates import CSPM_TEMPLATES, TemplateGroup


class ExtractorConfig:
    """Knobs of the extraction: channel naming, timers, templates."""

    def __init__(
        self,
        convention: Optional[ChannelConvention] = None,
        datatype_name: str = "msgs",
        timer_datatype_name: str = "timerIds",
        include_timers: bool = True,
        timer_monitors: bool = True,
        qualify_names: bool = True,
        templates: TemplateGroup = CSPM_TEMPLATES,
        extra_messages: Sequence[str] = (),
    ) -> None:
        self.convention = convention or ChannelConvention()
        self.datatype_name = datatype_name
        self.timer_datatype_name = timer_datatype_name
        self.include_timers = include_timers
        self.timer_monitors = timer_monitors and include_timers
        self.qualify_names = qualify_names
        self.templates = templates
        #: extra message constructors forced into the datatype (so peer
        #: nodes translated separately share one message universe)
        self.extra_messages = tuple(extra_messages)


class DeclarationCollector(CaplListener):
    """Listener pass gathering message variables, timers and handlers."""

    def __init__(self) -> None:
        self.message_vars: Dict[str, str] = {}
        self.numeric_message_vars: Dict[str, int] = {}
        self.timers: List[str] = []
        self.handlers: List[ast.EventProcedure] = []
        self.functions: Dict[str, ast.FunctionDef] = {}

    def enter_variable(self, node: ast.VarDecl) -> None:
        if node.message_type is not None:
            if isinstance(node.message_type, str) and node.message_type != "*":
                self.message_vars[node.name] = node.message_type
            elif isinstance(node.message_type, int):
                self.numeric_message_vars[node.name] = node.message_type
        elif node.type_name in ("msTimer", "sTimer"):
            if node.name not in self.timers:
                self.timers.append(node.name)

    def enter_event_procedure(self, node: ast.EventProcedure) -> None:
        self.handlers.append(node)

    def enter_function(self, node: ast.FunctionDef) -> None:
        self.functions[node.name] = node


class ExtractionResult:
    """The generated implementation model plus its structured metadata."""

    def __init__(
        self,
        node_name: str,
        script_text: str,
        process_name: str,
        messages: Tuple[str, ...],
        timers: Tuple[str, ...],
        handler_names: Tuple[str, ...],
        convention: ChannelConvention,
        definitions: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.node_name = node_name
        self.script_text = script_text
        self.process_name = process_name
        self.messages = messages
        self.timers = timers
        self.handler_names = handler_names
        self.convention = convention
        #: the (name, body) process equations, for network re-composition
        self.definitions = definitions

    def load(self) -> CspmModel:
        """Load the generated script into the checker's CSPm front-end."""
        return load_cspm(self.script_text)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.script_text)

    def __repr__(self) -> str:
        return "ExtractionResult({!r}, process={!r})".format(
            self.node_name, self.process_name
        )


def _message_constructor(selector: Union[str, int]) -> str:
    if isinstance(selector, int):
        return "ID_0X{:X}".format(selector)
    return selector


class ModelExtractor:
    """CAPL -> CSPm model extraction (the paper's Fig. 1 'model transformation')."""

    def __init__(self, config: Optional[ExtractorConfig] = None) -> None:
        self.config = config or ExtractorConfig()

    # -- public API --------------------------------------------------------------

    def extract(
        self, source: Union[str, ast.Program], node_name: str = "ECU"
    ) -> ExtractionResult:
        """Translate CAPL source text (or an already-parsed program)."""
        program = parse_capl(source) if isinstance(source, str) else source
        collector = DeclarationCollector()
        walk(collector, program)
        return self._assemble(program, collector, node_name)

    def extract_file(self, path: str, node_name: Optional[str] = None) -> ExtractionResult:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        if node_name is None:
            stem = path.replace("\\", "/").rsplit("/", 1)[-1]
            node_name = stem.split(".")[0].upper() or "ECU"
        return self.extract(source, node_name)

    # -- assembly ------------------------------------------------------------------

    def _qualified(self, node_name: str, base: str) -> str:
        if self.config.qualify_names and node_name:
            return "{}_{}".format(node_name.upper(), base)
        return base

    def _message_universe(
        self, collector: DeclarationCollector
    ) -> List[str]:
        universe: List[str] = []

        def add(name: str) -> None:
            if name not in universe:
                universe.append(name)

        for message_type in collector.message_vars.values():
            add(message_type)
        for can_id in collector.numeric_message_vars.values():
            add(_message_constructor(can_id))
        for handler in collector.handlers:
            if handler.kind == "message" and handler.selector not in (None, "*"):
                add(_message_constructor(handler.selector))
        for extra in self.config.extra_messages:
            add(extra)
        return universe

    def _assemble(
        self,
        program: ast.Program,
        collector: DeclarationCollector,
        node_name: str,
    ) -> ExtractionResult:
        config = self.config
        convention = config.convention
        messages = self._message_universe(collector)
        timers = list(collector.timers)

        message_vars: Dict[str, str] = dict(collector.message_vars)
        for var, can_id in collector.numeric_message_vars.items():
            message_vars[var] = _message_constructor(can_id)

        builder = BehaviourBuilder(
            message_vars, collector.functions, set(messages)
        )
        renderer = ProcessRenderer(
            convention, config.templates, config.include_timers
        )

        main_name = self._qualified(node_name, "MAIN")
        top_name = node_name.upper() if node_name else "NODE"

        definitions: List[Tuple[str, str]] = []
        handler_names: List[str] = []
        start_behaviour_text: Optional[str] = None

        for handler in collector.handlers:
            # widen multi-output handlers to admit transmit-queue arbitration
            behaviour = relax_bus_order(builder.of_block(handler.body))
            if handler.kind in ("start", "preStart"):
                rendered = renderer.render(
                    behaviour, main_name, self._qualified(node_name, "ONSTART")
                )
                start_behaviour_text = rendered
                continue
            if handler.kind == "message":
                base = selector_process_name("message", handler.selector)
                name = self._qualified(node_name, base)
                if handler.selector in (None, "*"):
                    entry_events = [
                        config.templates.render(
                            "receive_event",
                            channel=convention.in_channel,
                            payload=message,
                        )
                        for message in messages
                    ]
                else:
                    entry_events = [
                        config.templates.render(
                            "receive_event",
                            channel=convention.in_channel,
                            payload=_message_constructor(handler.selector),
                        )
                    ]
                body_text = renderer.render(behaviour, main_name, name)
                branches = [
                    config.templates.render(
                        "prefix", event=entry, continuation=body_text
                    )
                    for entry in entry_events
                ]
                if len(branches) == 1:
                    definition = branches[0]
                else:
                    definition = (
                        "("
                        + config.templates.render("external_choice", branches=branches)
                        + ")"
                    )
                definitions.append((name, definition))
                handler_names.append(name)
            elif handler.kind == "timer" and config.include_timers:
                if handler.selector not in timers:
                    timers.append(str(handler.selector))
                base = selector_process_name("timer", handler.selector)
                name = self._qualified(node_name, base)
                entry = config.templates.render(
                    "receive_event",
                    channel=convention.timer_channel,
                    payload=str(handler.selector),
                )
                body_text = renderer.render(behaviour, main_name, name)
                definitions.append(
                    (
                        name,
                        config.templates.render(
                            "prefix", event=entry, continuation=body_text
                        ),
                    )
                )
                handler_names.append(name)
            # key / errorFrame / busOff handlers have no bus-visible entry
            # event in this model and are skipped (documented limitation)

        # auxiliary loop processes generated during rendering
        definitions.extend(renderer.auxiliary)

        if handler_names:
            main_body = config.templates.render(
                "external_choice", branches=handler_names
            )
        else:
            main_body = config.templates.render("stop")
        definitions.append((main_name, main_body))

        behaviour_name = (
            self._qualified(node_name, "BEHAVIOUR")
            if config.timer_monitors and timers
            else top_name
        )
        if start_behaviour_text is not None:
            definitions.append((behaviour_name, start_behaviour_text))
        else:
            definitions.append((behaviour_name, main_name))

        if config.timer_monitors and timers:
            definitions.extend(
                self._timer_monitor_definitions(node_name, timers)
            )
            timer_sync = config.templates.render(
                "enum_set",
                members=[
                    convention.set_timer_channel,
                    convention.cancel_timer_channel,
                    convention.timer_channel,
                ],
            )
            timers_name = self._qualified(node_name, "TIMERS")
            definitions.append(
                (
                    top_name,
                    config.templates.render(
                        "parallel",
                        left=behaviour_name,
                        sync=timer_sync,
                        right=timers_name,
                    ),
                )
            )

        script = self._render_script(
            node_name, messages, timers, definitions
        )
        return ExtractionResult(
            node_name=node_name,
            script_text=script,
            process_name=top_name,
            messages=tuple(messages),
            timers=tuple(timers),
            handler_names=tuple(handler_names),
            convention=convention,
            definitions=tuple(definitions),
        )

    def _timer_monitor_definitions(
        self, node_name: str, timers: List[str]
    ) -> List[Tuple[str, str]]:
        """Per-timer monitors: a timer only expires between set and cancel."""
        config = self.config
        convention = config.convention
        definitions: List[Tuple[str, str]] = []
        monitor_names: List[str] = []
        for timer in timers:
            idle = self._qualified(node_name, "TIMER_{}".format(timer.upper()))
            armed = self._qualified(node_name, "TIMER_{}_SET".format(timer.upper()))
            set_event = "{}.{}".format(convention.set_timer_channel, timer)
            cancel_event = "{}.{}".format(convention.cancel_timer_channel, timer)
            fire_event = "{}.{}".format(convention.timer_channel, timer)
            definitions.append(
                (
                    idle,
                    config.templates.render(
                        "external_choice",
                        branches=[
                            "{} -> {}".format(set_event, armed),
                            "{} -> {}".format(cancel_event, idle),
                        ],
                    ),
                )
            )
            definitions.append(
                (
                    armed,
                    config.templates.render(
                        "external_choice",
                        branches=[
                            "{} -> {}".format(fire_event, idle),
                            "{} -> {}".format(cancel_event, idle),
                            "{} -> {}".format(set_event, armed),
                        ],
                    ),
                )
            )
            monitor_names.append(idle)
        timers_name = self._qualified(node_name, "TIMERS")
        if len(monitor_names) == 1:
            definitions.append((timers_name, monitor_names[0]))
        else:
            body = monitor_names[0]
            for monitor in monitor_names[1:]:
                body = self.config.templates.render(
                    "interleave", left=body, right=monitor
                )
            definitions.append((timers_name, body))
        return definitions

    def _render_script(
        self,
        node_name: str,
        messages: List[str],
        timers: List[str],
        definitions: List[Tuple[str, str]],
    ) -> str:
        config = self.config
        lines: List[str] = []
        lines.append(
            config.templates.render(
                "header",
                title="{} implementation model (CSPm) extracted from CAPL source".format(
                    node_name or "ECU"
                ),
            )
        )
        if messages:
            lines.append(
                config.templates.render(
                    "datatype", name=config.datatype_name, constructors=messages
                )
            )
        if timers and config.include_timers:
            lines.append(
                config.templates.render(
                    "datatype",
                    name=config.timer_datatype_name,
                    constructors=timers,
                )
            )
        lines.append("")
        convention = config.convention
        if messages:
            channel_names = [convention.in_channel]
            if convention.out_channel != convention.in_channel:
                channel_names.append(convention.out_channel)
            lines.append(
                config.templates.render(
                    "channel", names=channel_names, type=config.datatype_name
                )
            )
        if timers and config.include_timers:
            lines.append(
                config.templates.render(
                    "channel",
                    names=[
                        convention.timer_channel,
                        convention.set_timer_channel,
                        convention.cancel_timer_channel,
                    ],
                    type=config.timer_datatype_name,
                )
            )
        lines.append("")
        for name, body in definitions:
            lines.append(
                config.templates.render("process_def", name=name, body=body)
            )
        return "\n".join(lines).rstrip() + "\n"
