"""Abstract syntax tree for the supported CSPm subset.

Two node families:

* *Declarations* -- ``datatype``, ``nametype``, ``channel``, process
  equations (possibly parameterised), and ``assert`` statements.
* *Expressions* -- a single expression grammar covering both process
  expressions (Table I operators) and the value/set expressions CSPm borrows
  from its Haskell-like functional layer.

Nodes are plain frozen dataclasses; evaluation lives in
:mod:`repro.cspm.evaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Node:
    """Base class for all CSPm AST nodes."""


class Expr(Node):
    """Base class for expressions."""


class Decl(Node):
    """Base class for top-level declarations."""


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class Name(Expr):
    """An identifier reference: a process, channel, constructor or variable."""

    ident: str


@dataclass(frozen=True)
class Number(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class Stop(Expr):
    """The STOP process."""


@dataclass(frozen=True)
class Skip(Expr):
    """The SKIP process."""


@dataclass(frozen=True)
class CommField(Node):
    """One communication field of a prefix: ``!expr``, ``?var`` or ``.expr``.

    *kind* is one of ``"!"``, ``"?"`` or ``"."``.  For ``?`` the payload is
    the bound variable name (plus an optional restriction set); otherwise it
    is the value expression.
    """

    kind: str
    var: Optional[str] = None
    expr: Optional[Expr] = None
    restriction: Optional[Expr] = None


@dataclass(frozen=True)
class PrefixExpr(Expr):
    """``channel<fields> -> continuation``."""

    channel: str
    comm_fields: Tuple[CommField, ...]
    continuation: Expr


@dataclass(frozen=True)
class ExternalChoiceExpr(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class InternalChoiceExpr(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class SeqExpr(Expr):
    first: Expr
    second: Expr


@dataclass(frozen=True)
class ParallelExpr(Expr):
    """``left [| sync |] right`` -- generalised parallel over a sync set."""

    left: Expr
    sync: Expr
    right: Expr


@dataclass(frozen=True)
class AlphaParallelExpr(Expr):
    """``left [ lalpha || ralpha ] right`` -- alphabetised parallel."""

    left: Expr
    left_alpha: Expr
    right_alpha: Expr
    right: Expr


@dataclass(frozen=True)
class InterleaveExpr(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class InterruptExpr(Expr):
    """``primary /\\ handler`` -- the handler may take over at any moment."""

    primary: Expr
    handler: Expr


@dataclass(frozen=True)
class HideExpr(Expr):
    process: Expr
    hidden: Expr


@dataclass(frozen=True)
class RenameExpr(Expr):
    """``process [[ new <- old, ... ]]`` (FDR writes target <- source)."""

    process: Expr
    pairs: Tuple[Tuple[Expr, Expr], ...]  # (target, source) event expressions


@dataclass(frozen=True)
class IfExpr(Expr):
    condition: Expr
    then_branch: Expr
    else_branch: Expr


@dataclass(frozen=True)
class GuardExpr(Expr):
    """The boolean guard ``condition & process`` (STOP when false)."""

    condition: Expr
    process: Expr


@dataclass(frozen=True)
class LetExpr(Expr):
    """``let <local defs> within <expr>``."""

    definitions: Tuple["ProcessDef", ...]
    body: Expr


@dataclass(frozen=True)
class Apply(Expr):
    """Application of a parameterised definition: ``P(x, y)``."""

    function: Expr
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic / comparison / boolean / set binary operators."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str
    operand: Expr


@dataclass(frozen=True)
class SetLit(Expr):
    """``{ e1, e2, ... }``."""

    elements: Tuple[Expr, ...]


@dataclass(frozen=True)
class SetRange(Expr):
    """``{ low .. high }``."""

    low: Expr
    high: Expr


@dataclass(frozen=True)
class EnumSet(Expr):
    """``{| ch1, ch2.x |}`` -- all events carried by the listed channel prefixes."""

    members: Tuple[Expr, ...]


@dataclass(frozen=True)
class EventsSet(Expr):
    """The CSPm constant ``Events`` -- every declared channel's events."""


@dataclass(frozen=True)
class DottedExpr(Expr):
    """A dotted value/event expression such as ``send.reqSw``."""

    parts: Tuple[Expr, ...]


@dataclass(frozen=True)
class ReplicatedOp(Expr):
    """Replicated operator: ``[] x : S @ P(x)`` / ``||| x : S @ P(x)``."""

    op: str  # "[]", "|~|", "|||"
    variable: str
    domain: Expr
    body: Expr


# -- declarations --------------------------------------------------------------


@dataclass(frozen=True)
class DatatypeDecl(Decl):
    """``datatype msgs = reqSw | rptSw | ...`` (nullary constructors only)."""

    name: str
    constructors: Tuple[str, ...]


@dataclass(frozen=True)
class NametypeDecl(Decl):
    """``nametype Small = {0..3}`` -- a named value set."""

    name: str
    definition: Expr


@dataclass(frozen=True)
class ChannelDecl(Decl):
    """``channel send, rec : msgs.Ids`` -- shared field types per declaration."""

    names: Tuple[str, ...]
    field_types: Tuple[Expr, ...]  # empty for dataless channels


@dataclass(frozen=True)
class ProcessDef(Decl):
    """``Name(params) = body`` -- a process or value equation."""

    name: str
    params: Tuple[str, ...]
    body: Expr


@dataclass(frozen=True)
class AssertDecl(Decl):
    """``assert Spec [T= Impl`` or ``assert P :[deadlock free]``."""

    kind: str  # "T", "F", "FD", "deadlock free", "divergence free", "deterministic"
    left: Expr
    right: Optional[Expr] = None
    negated: bool = False


@dataclass
class Script(Node):
    """A whole CSPm file: an ordered list of declarations."""

    declarations: List[Decl] = field(default_factory=list)

    def process_defs(self) -> List[ProcessDef]:
        return [d for d in self.declarations if isinstance(d, ProcessDef)]

    def channels(self) -> List[ChannelDecl]:
        return [d for d in self.declarations if isinstance(d, ChannelDecl)]

    def datatypes(self) -> List[DatatypeDecl]:
        return [d for d in self.declarations if isinstance(d, DatatypeDecl)]

    def assertions(self) -> List[AssertDecl]:
        return [d for d in self.declarations if isinstance(d, AssertDecl)]
