"""CSPm -- the machine-readable CSP dialect (paper Sec. IV-A2, Table I).

Provides the lexer/parser for the supported CSPm subset, the evaluator that
lowers scripts onto the core process algebra, and the emitter the model
extractor uses to write Fig.-3-style generated scripts.
"""

from .lexer import CspmSyntaxError, Token, tokenize
from .parser import Parser, parse, parse_expression
from .evaluator import CspmEvaluationError, CspmModel, load, load_file
from .emitter import (
    ScriptBuilder,
    emit_alphabet,
    emit_event,
    emit_process,
    emit_value,
    environment_to_script,
)
from . import ast_nodes as ast
from . import prelude

__all__ = [
    "CspmEvaluationError",
    "CspmModel",
    "CspmSyntaxError",
    "Parser",
    "ScriptBuilder",
    "Token",
    "ast",
    "emit_alphabet",
    "emit_event",
    "emit_process",
    "emit_value",
    "environment_to_script",
    "load",
    "load_file",
    "parse",
    "parse_expression",
    "prelude",
    "tokenize",
]
