"""Recursive-descent parser for the supported CSPm subset.

Operator precedence follows the FDR manual, from loosest to tightest:

    hiding  <  parallel ([|A|], |||, alphabetised)  <  |~|  <  []
            <  ;  <  guard &  <  prefix ->  <  renaming/application

Communication prefixes (``send!reqSw -> P``, ``rec?x -> P``) are
disambiguated from value expressions by backtracking: the parser first tries
to read a communication followed by ``->``; if that fails it re-reads the
tokens as a value expression.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast_nodes import (
    AlphaParallelExpr,
    Apply,
    AssertDecl,
    BinOp,
    BoolLit,
    ChannelDecl,
    CommField,
    DatatypeDecl,
    Decl,
    DottedExpr,
    EnumSet,
    EventsSet,
    Expr,
    ExternalChoiceExpr,
    GuardExpr,
    HideExpr,
    InterruptExpr,
    IfExpr,
    InterleaveExpr,
    InternalChoiceExpr,
    LetExpr,
    Name,
    NametypeDecl,
    Number,
    ParallelExpr,
    PrefixExpr,
    ProcessDef,
    RenameExpr,
    ReplicatedOp,
    Script,
    SeqExpr,
    SetLit,
    SetRange,
    Skip,
    Stop,
    UnaryOp,
)
from .lexer import CspmSyntaxError, Token, tokenize


class Parser:
    """A backtracking recursive-descent parser over the token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _error(self, message: str) -> CspmSyntaxError:
        token = self.current
        return CspmSyntaxError(
            "{} (found {!r})".format(message, token.text or "<eof>"),
            token.line,
            token.column,
        )

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            token = self.current
            self._pos += 1
            return token
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise self._error("expected {!r}".format(want))
        return token

    def mark(self) -> int:
        return self._pos

    def reset(self, mark: int) -> None:
        self._pos = mark

    # -- top level -----------------------------------------------------------

    def parse_script(self) -> Script:
        script = Script()
        while not self.at("EOF"):
            script.declarations.append(self.parse_declaration())
        return script

    def parse_declaration(self) -> Decl:
        if self.at("KEYWORD", "channel"):
            return self._parse_channel_decl()
        if self.at("KEYWORD", "datatype"):
            return self._parse_datatype_decl()
        if self.at("KEYWORD", "nametype"):
            return self._parse_nametype_decl()
        if self.at("KEYWORD", "assert"):
            return self._parse_assert_decl()
        return self._parse_process_def()

    def _parse_channel_decl(self) -> ChannelDecl:
        self.expect("KEYWORD", "channel")
        names = [self.expect("IDENT").text]
        while self.accept("COMMA"):
            names.append(self.expect("IDENT").text)
        field_types: List[Expr] = []
        if self.accept("COLON"):
            field_types.append(self._parse_type_atom())
            while self.accept("DOT"):
                field_types.append(self._parse_type_atom())
        return ChannelDecl(tuple(names), tuple(field_types))

    def _parse_type_atom(self) -> Expr:
        """A channel field type: a named type or an inline set."""
        if self.at("LBRACE"):
            return self._parse_set()
        return Name(self.expect("IDENT").text)

    def _parse_datatype_decl(self) -> DatatypeDecl:
        self.expect("KEYWORD", "datatype")
        name = self.expect("IDENT").text
        self.expect("EQUALS")
        constructors = [self.expect("IDENT").text]
        while self.accept("BAR"):
            constructors.append(self.expect("IDENT").text)
        return DatatypeDecl(name, tuple(constructors))

    def _parse_nametype_decl(self) -> NametypeDecl:
        self.expect("KEYWORD", "nametype")
        name = self.expect("IDENT").text
        self.expect("EQUALS")
        return NametypeDecl(name, self._parse_set_expr())

    def _parse_assert_decl(self) -> AssertDecl:
        self.expect("KEYWORD", "assert")
        negated = bool(self.accept("KEYWORD", "not"))
        left = self.parse_process()
        if self.accept("TRACE_REFINES"):
            return AssertDecl("T", left, self.parse_process(), negated)
        if self.accept("FAILURES_REFINES"):
            return AssertDecl("F", left, self.parse_process(), negated)
        if self.accept("FD_REFINES"):
            return AssertDecl("FD", left, self.parse_process(), negated)
        if self.accept("LPROP"):
            words = [self.expect("IDENT").text]
            while self.at("IDENT"):
                words.append(self.expect("IDENT").text)
            prop = " ".join(words)
            # optional model annotation like [F] / [FD]
            if self.accept("LBRACKET"):
                self.expect("IDENT")
                self.expect("RBRACKET")
            self.expect("RBRACKET")
            if prop not in ("deadlock free", "divergence free", "deterministic"):
                raise self._error("unknown assertion property {!r}".format(prop))
            return AssertDecl(prop, left, None, negated)
        raise self._error("expected a refinement operator or ':[' in assert")

    def _parse_process_def(self) -> ProcessDef:
        name = self.expect("IDENT").text
        params: List[str] = []
        if self.accept("LPAREN"):
            if not self.at("RPAREN"):
                params.append(self.expect("IDENT").text)
                while self.accept("COMMA"):
                    params.append(self.expect("IDENT").text)
            self.expect("RPAREN")
        self.expect("EQUALS")
        body = self.parse_process()
        return ProcessDef(name, tuple(params), body)

    # -- process expressions, loosest binding first ---------------------------

    def parse_process(self) -> Expr:
        return self._parse_hide()

    def _parse_hide(self) -> Expr:
        left = self._parse_parallel()
        while self.accept("HIDE"):
            left = HideExpr(left, self._parse_set_expr())
        return left

    def _parse_parallel(self) -> Expr:
        left = self._parse_internal_choice()
        while True:
            if self.accept("LPAR_SYNC"):
                sync = self._parse_set_expr()
                self.expect("RPAR_SYNC")
                right = self._parse_internal_choice()
                left = ParallelExpr(left, sync, right)
            elif self.accept("INTERLEAVE"):
                right = self._parse_internal_choice()
                left = InterleaveExpr(left, right)
            elif self.at("LBRACKET"):
                # alphabetised parallel  P [A || B] Q  -- needs backtracking
                # because '[' also begins nothing else in process position
                mark = self.mark()
                self.expect("LBRACKET")
                try:
                    lalpha = self._parse_set_expr()
                    self.expect("BOOL_OR")
                    ralpha = self._parse_set_expr()
                    self.expect("RBRACKET")
                except CspmSyntaxError:
                    self.reset(mark)
                    break
                right = self._parse_internal_choice()
                left = AlphaParallelExpr(left, lalpha, ralpha, right)
            else:
                break
        return left

    def _parse_internal_choice(self) -> Expr:
        left = self._parse_external_choice()
        while self.accept("INTERNAL_CHOICE"):
            left = InternalChoiceExpr(left, self._parse_external_choice())
        return left

    def _parse_external_choice(self) -> Expr:
        left = self._parse_seq()
        while self.accept("EXTERNAL_CHOICE"):
            left = ExternalChoiceExpr(left, self._parse_seq())
        return left

    def _parse_seq(self) -> Expr:
        left = self._parse_interrupt()
        while self.accept("SEMI"):
            left = SeqExpr(left, self._parse_interrupt())
        return left

    def _parse_interrupt(self) -> Expr:
        left = self._parse_prefixish()
        while self.accept("INTERRUPT"):
            left = InterruptExpr(left, self._parse_prefixish())
        return left

    def _parse_prefixish(self) -> Expr:
        if self.at("KEYWORD", "if"):
            return self._parse_if()
        if self.at("KEYWORD", "let"):
            return self._parse_let()
        replicated = self._try_parse_replicated()
        if replicated is not None:
            return replicated
        communication = self._try_parse_prefix()
        if communication is not None:
            return communication
        expr = self.parse_expr()
        if self.accept("GUARD"):
            return GuardExpr(expr, self._parse_prefixish())
        return expr

    def _parse_if(self) -> Expr:
        self.expect("KEYWORD", "if")
        condition = self.parse_expr()
        self.expect("KEYWORD", "then")
        then_branch = self.parse_process()
        self.expect("KEYWORD", "else")
        else_branch = self.parse_process()
        return IfExpr(condition, then_branch, else_branch)

    def _parse_let(self) -> Expr:
        self.expect("KEYWORD", "let")
        definitions: List[ProcessDef] = []
        while not self.at("KEYWORD", "within"):
            definitions.append(self._parse_process_def())
        self.expect("KEYWORD", "within")
        return LetExpr(tuple(definitions), self.parse_process())

    def _try_parse_replicated(self) -> Optional[Expr]:
        """``[] x : S @ P`` and the |~| / ||| variants."""
        op_map = {
            "EXTERNAL_CHOICE": "[]",
            "INTERNAL_CHOICE": "|~|",
            "INTERLEAVE": "|||",
        }
        if self.current.kind not in op_map:
            return None
        mark = self.mark()
        kind = self.current.kind
        self._pos += 1
        if not self.at("IDENT"):
            self.reset(mark)
            return None
        variable = self.expect("IDENT").text
        if not self.accept("COLON"):
            self.reset(mark)
            return None
        domain = self._parse_set_expr()
        self.expect("AT")
        body = self._parse_prefixish()
        return ReplicatedOp(op_map[kind], variable, domain, body)

    def _try_parse_prefix(self) -> Optional[Expr]:
        """Backtracking attempt at ``channel<fields> -> continuation``."""
        if not self.at("IDENT"):
            return None
        mark = self.mark()
        channel = self.expect("IDENT").text
        fields: List[CommField] = []
        while True:
            if self.accept("BANG"):
                fields.append(CommField("!", expr=self._parse_comm_atom()))
            elif self.accept("QUERY"):
                if self.accept("UNDERSCORE"):
                    var = "_"
                else:
                    var = self.expect("IDENT").text
                restriction: Optional[Expr] = None
                if self.accept("COLON"):
                    restriction = self._parse_set_expr()
                fields.append(CommField("?", var=var, restriction=restriction))
            elif self.accept("DOT"):
                fields.append(CommField(".", expr=self._parse_comm_atom()))
            else:
                break
        if not self.accept("ARROW"):
            self.reset(mark)
            return None
        continuation = self._parse_prefixish()
        return PrefixExpr(channel, tuple(fields), continuation)

    def _parse_comm_atom(self) -> Expr:
        """A single communication field value: name, number, or parenthesised expr."""
        if self.at("IDENT"):
            return Name(self.expect("IDENT").text)
        if self.at("NUMBER"):
            return Number(int(self.expect("NUMBER").text))
        if self.accept("KEYWORD", "true"):
            return BoolLit(True)
        if self.accept("KEYWORD", "false"):
            return BoolLit(False)
        if self.accept("LPAREN"):
            expr = self.parse_expr()
            self.expect("RPAREN")
            return expr
        raise self._error("expected a communication field value")

    # -- value expressions -----------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept("KEYWORD", "or") or self.accept("BOOL_OR"):
            left = BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept("KEYWORD", "and") or self.accept("BOOL_AND"):
            left = BinOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.accept("KEYWORD", "not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    _COMPARISONS = {
        "EQ": "==",
        "NEQ": "!=",
        "LT": "<",
        "GT": ">",
        "LE": "<=",
        "GE": ">=",
    }

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        if self.current.kind in self._COMPARISONS:
            op = self._COMPARISONS[self.current.kind]
            self._pos += 1
            return BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            if self.accept("PLUS"):
                left = BinOp("+", left, self._parse_multiplicative())
            elif self.accept("MINUS"):
                left = BinOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_value_atom()
        while True:
            if self.accept("STAR"):
                left = BinOp("*", left, self._parse_value_atom())
            elif self.accept("SLASH"):
                left = BinOp("/", left, self._parse_value_atom())
            elif self.accept("PERCENT"):
                left = BinOp("%", left, self._parse_value_atom())
            else:
                return left

    def _parse_value_atom(self) -> Expr:
        if self.accept("MINUS"):
            return UnaryOp("-", self._parse_value_atom())
        if self.at("NUMBER"):
            return Number(int(self.expect("NUMBER").text))
        if self.accept("KEYWORD", "true"):
            return BoolLit(True)
        if self.accept("KEYWORD", "false"):
            return BoolLit(False)
        if self.accept("KEYWORD", "STOP"):
            return Stop()
        if self.accept("KEYWORD", "SKIP"):
            return Skip()
        if self.accept("KEYWORD", "Events"):
            return EventsSet()
        for keyword in ("union", "inter", "diff"):
            if self.at("KEYWORD", keyword):
                self._pos += 1
                self.expect("LPAREN")
                left = self._parse_set_expr()
                self.expect("COMMA")
                right = self._parse_set_expr()
                self.expect("RPAREN")
                return BinOp(keyword, left, right)
        if self.at("LBRACE") or self.at("LENUM"):
            return self._parse_set()
        if self.accept("LPAREN"):
            expr = self.parse_process()
            self.expect("RPAREN")
            return self._parse_postfix(expr)
        if self.at("IDENT"):
            name = Name(self.expect("IDENT").text)
            expr = self._parse_postfix(name)
            # dotted value such as  send.reqSw  used in renaming pairs / sets
            if self.at("DOT"):
                parts: List[Expr] = [expr]
                while self.accept("DOT"):
                    parts.append(self._parse_comm_atom())
                return DottedExpr(tuple(parts))
            return expr
        raise self._error("expected an expression")

    def _parse_postfix(self, expr: Expr) -> Expr:
        """Application ``P(args)`` and renaming ``P[[ .. ]]`` suffixes."""
        while True:
            if self.accept("LPAREN"):
                args: List[Expr] = []
                if not self.at("RPAREN"):
                    args.append(self.parse_expr())
                    while self.accept("COMMA"):
                        args.append(self.parse_expr())
                self.expect("RPAREN")
                expr = Apply(expr, tuple(args))
            elif self.accept("LRENAME"):
                pairs: List[Tuple[Expr, Expr]] = []
                old = self._parse_event_expr()
                self.expect("LARROW")
                new = self._parse_event_expr()
                pairs.append((old, new))
                while self.accept("COMMA"):
                    old = self._parse_event_expr()
                    self.expect("LARROW")
                    new = self._parse_event_expr()
                    pairs.append((old, new))
                self.expect("RRENAME")
                expr = RenameExpr(expr, tuple(pairs))
            else:
                return expr

    def _parse_event_expr(self) -> Expr:
        """A dotted event literal used in renamings and set literals."""
        first = self._parse_comm_atom()
        if not self.at("DOT"):
            return first
        parts = [first]
        while self.accept("DOT"):
            parts.append(self._parse_comm_atom())
        return DottedExpr(tuple(parts))

    # -- set expressions --------------------------------------------------------

    def _parse_set_expr(self) -> Expr:
        """Sets in sync/hide positions: literals, names, Events, union(...)"""
        if self.at("LBRACE") or self.at("LENUM"):
            return self._parse_set()
        if self.accept("KEYWORD", "Events"):
            return EventsSet()
        for keyword in ("union", "inter", "diff"):
            if self.at("KEYWORD", keyword):
                self._pos += 1
                self.expect("LPAREN")
                left = self._parse_set_expr()
                self.expect("COMMA")
                right = self._parse_set_expr()
                self.expect("RPAREN")
                return BinOp(keyword, left, right)
        if self.at("IDENT"):
            return Name(self.expect("IDENT").text)
        raise self._error("expected a set expression")

    def _parse_set(self) -> Expr:
        if self.accept("LENUM"):
            members: List[Expr] = []
            if not self.at("RENUM"):
                members.append(self._parse_event_expr())
                while self.accept("COMMA"):
                    members.append(self._parse_event_expr())
            self.expect("RENUM")
            return EnumSet(tuple(members))
        self.expect("LBRACE")
        if self.accept("RBRACE"):
            return SetLit(())
        first = self.parse_expr()
        if self.accept("DOTDOT"):
            high = self.parse_expr()
            self.expect("RBRACE")
            return SetRange(first, high)
        elements = [first]
        while self.accept("COMMA"):
            elements.append(self._parse_event_expr())
        self.expect("RBRACE")
        return SetLit(tuple(elements))


def parse(source: str) -> Script:
    """Parse CSPm source text into a :class:`Script`."""
    return Parser(tokenize(source)).parse_script()


def parse_expression(source: str) -> Expr:
    """Parse a single process/value expression (testing convenience)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_process()
    parser.expect("EOF")
    return expr
