"""Ready-made CSPm fragments used across the case study and the tests.

The paper's Sec. V-B sketches its models directly in CSPm; this module keeps
those canonical scripts in one place so tests, examples and benchmarks all
load the same text.
"""

#: The paper's integrity property and the basic VMG/ECU composition of
#: Sec. V-B, as a complete loadable script.
SP02_SCRIPT = """
-- Security property SP02 (paper Sec. V-B): every software inventory
-- request (reqSw) is answered by a software list response (rptSw).

datatype msgs = reqSw | rptSw | reqApp | rptUpd

channel send, rec : msgs

SP02 = send!reqSw -> rec!rptSw -> SP02

VMG = send!reqSw -> rec?x -> VMG

ECU = send?x -> rec!rptSw -> ECU

SYSTEM = VMG [| {| send, rec |} |] ECU

assert SP02 [T= SYSTEM
"""

#: A deliberately flawed ECU that reports an update result (rptUpd) to a
#: software inventory request -- the integrity property must fail on it.
SP02_FLAWED_SCRIPT = """
datatype msgs = reqSw | rptSw | reqApp | rptUpd

channel send, rec : msgs

SP02 = send!reqSw -> rec!rptSw -> SP02

VMG = send!reqSw -> rec?x -> VMG

ECUFLAWED = send?x -> (rec!rptSw -> ECUFLAWED [] rec!rptUpd -> ECUFLAWED)

SYSTEM = VMG [| {| send, rec |} |] ECUFLAWED

assert SP02 [T= SYSTEM
"""

#: The shape of the generated model in the paper's Fig. 3: channel type
#: declarations extracted from CAPL message declarations plus one recursive
#: process per 'on message' event procedure.
FIG3_STYLE_SCRIPT = """
-- ECU implementation model automatically generated from CAPL source

datatype msgs = reqSw | rptSw | reqApp | rptUpd

channel send, rec : msgs

ONMSG_REQSW = send!reqSw -> rec!rptSw -> ONMSG_REQSW

ONMSG_REQAPP = send!reqApp -> rec!rptUpd -> ONMSG_REQAPP

ECU_IMPL = ONMSG_REQSW [] ONMSG_REQAPP
"""
