"""Emission of CSPm source text from core process terms.

The inverse of the evaluator: pretty-prints :class:`repro.csp.Process` terms
in CSPm notation (Table I of the paper) and assembles complete scripts --
datatype / channel declarations, process equations and assert statements --
of the shape shown in the paper's Fig. 3.  The model extractor uses this to
write its output files, and the Table I benchmark round-trips every operator
through emit-then-parse.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..csp.events import Alphabet, Channel, Event, Value
from ..csp.process import (
    Environment,
    Interrupt,
    ExternalChoice,
    GenParallel,
    Hiding,
    Interleave,
    InternalChoice,
    Omega,
    Prefix,
    Process,
    ProcessRef,
    Renaming,
    SeqComp,
    Skip,
    Stop,
)


def emit_value(value: Value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def emit_event(event: Event) -> str:
    """An event in CSPm dotted form: ``send.reqSw``."""
    if not event.fields:
        return event.channel
    return event.channel + "." + ".".join(emit_value(f) for f in event.fields)


def emit_alphabet(
    alphabet: Alphabet, channels: Optional[Mapping[str, Channel]] = None
) -> str:
    """Emit a set of events, using ``{| channel |}`` where a whole channel is covered."""
    events = set(alphabet.events)
    enum_members: List[str] = []
    if channels:
        for name in sorted(channels):
            channel = channels[name]
            channel_events = set(channel.events())
            if channel_events and channel_events <= events:
                enum_members.append(name)
                events -= channel_events
    leftovers = sorted(emit_event(e) for e in events)
    if enum_members and not leftovers:
        return "{| " + ", ".join(enum_members) + " |}"
    if enum_members and leftovers:
        return "union({| " + ", ".join(enum_members) + " |}, {" + ", ".join(leftovers) + "})"
    return "{" + ", ".join(leftovers) + "}"


# binding strengths, tighter binds higher; mirrors the parser
_PREC_HIDE = 1
_PREC_PAR = 2
_PREC_ICHOICE = 3
_PREC_ECHOICE = 4
_PREC_INTERRUPT = 5
_PREC_SEQ = 5
_PREC_PREFIX = 6
_PREC_ATOM = 7


def emit_process(
    process: Process,
    channels: Optional[Mapping[str, Channel]] = None,
) -> str:
    """Pretty-print a process term in CSPm concrete syntax."""
    return _emit(process, channels, 0)


def _wrap(text: str, inner: int, outer: int) -> str:
    return "({})".format(text) if inner < outer else text


def _emit(process: Process, channels: Optional[Mapping[str, Channel]], outer: int) -> str:
    if isinstance(process, Stop):
        return "STOP"
    if isinstance(process, (Skip, Omega)):
        return "SKIP"
    if isinstance(process, ProcessRef):
        return process.name
    if isinstance(process, Prefix):
        text = "{} -> {}".format(
            emit_event(process.event), _emit(process.continuation, channels, _PREC_PREFIX)
        )
        return _wrap(text, _PREC_PREFIX, outer)
    if isinstance(process, ExternalChoice):
        text = "{} [] {}".format(
            _emit(process.left, channels, _PREC_ECHOICE + 1),
            _emit(process.right, channels, _PREC_ECHOICE),
        )
        return _wrap(text, _PREC_ECHOICE, outer)
    if isinstance(process, InternalChoice):
        text = "{} |~| {}".format(
            _emit(process.left, channels, _PREC_ICHOICE + 1),
            _emit(process.right, channels, _PREC_ICHOICE),
        )
        return _wrap(text, _PREC_ICHOICE, outer)
    if isinstance(process, SeqComp):
        text = "{} ; {}".format(
            _emit(process.first, channels, _PREC_SEQ + 1),
            _emit(process.second, channels, _PREC_SEQ),
        )
        return _wrap(text, _PREC_SEQ, outer)
    if isinstance(process, Interrupt):
        text = "{} /\\ {}".format(
            _emit(process.primary, channels, _PREC_INTERRUPT + 1),
            _emit(process.handler, channels, _PREC_INTERRUPT + 1),
        )
        return _wrap(text, _PREC_INTERRUPT, outer)
    if isinstance(process, GenParallel):
        text = "{} [| {} |] {}".format(
            _emit(process.left, channels, _PREC_PAR + 1),
            emit_alphabet(process.sync, channels),
            _emit(process.right, channels, _PREC_PAR + 1),
        )
        return _wrap(text, _PREC_PAR, outer)
    if isinstance(process, Interleave):
        text = "{} ||| {}".format(
            _emit(process.left, channels, _PREC_PAR + 1),
            _emit(process.right, channels, _PREC_PAR + 1),
        )
        return _wrap(text, _PREC_PAR, outer)
    if isinstance(process, Hiding):
        text = "{} \\ {}".format(
            _emit(process.process, channels, _PREC_HIDE + 1),
            emit_alphabet(process.hidden, channels),
        )
        return _wrap(text, _PREC_HIDE, outer)
    if isinstance(process, Renaming):
        pairs = ", ".join(
            "{} <- {}".format(emit_event(old), emit_event(new))
            for old, new in process.mapping
        )
        return "{}[[{}]]".format(_emit(process.process, channels, _PREC_ATOM), pairs)
    raise TypeError("cannot emit process term {!r}".format(process))


class ScriptBuilder:
    """Assemble a complete CSPm script, Fig.-3 style.

    The builder collects declarations in the conventional order -- datatypes,
    nametypes, channels, process equations, assertions -- and renders a single
    text with a comment header, ready to be written to a ``.csp`` file (or
    re-loaded with :func:`repro.cspm.load` for checking).
    """

    def __init__(self, header: Optional[str] = None) -> None:
        self.header = header
        self._datatypes: List[Tuple[str, Tuple[str, ...]]] = []
        self._nametypes: List[Tuple[str, str]] = []
        self._channels: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
        self._definitions: List[Tuple[str, str]] = []
        self._assertions: List[str] = []
        self._comments: Dict[int, str] = {}
        self.channel_registry: Dict[str, Channel] = {}

    def datatype(self, name: str, constructors: Sequence[str]) -> "ScriptBuilder":
        self._datatypes.append((name, tuple(constructors)))
        return self

    def nametype(self, name: str, definition: str) -> "ScriptBuilder":
        self._nametypes.append((name, definition))
        return self

    def channel(self, names: Sequence[str], field_types: Sequence[str] = ()) -> "ScriptBuilder":
        self._channels.append((tuple(names), tuple(field_types)))
        return self

    def register_channel(self, channel: Channel) -> "ScriptBuilder":
        """Make a channel known for ``{| ... |}`` compression in emitted sets."""
        self.channel_registry[channel.name] = channel
        return self

    def define(self, name: str, process: Process) -> "ScriptBuilder":
        self._definitions.append(
            (name, emit_process(process, self.channel_registry))
        )
        return self

    def define_raw(self, name: str, body: str) -> "ScriptBuilder":
        self._definitions.append((name, body))
        return self

    def comment_before_definition(self, index: int, text: str) -> "ScriptBuilder":
        self._comments[index] = text
        return self

    def assert_refinement(self, spec: str, impl: str, model: str = "T") -> "ScriptBuilder":
        self._assertions.append("assert {} [{}= {}".format(spec, model, impl))
        return self

    def assert_property(self, process: str, property_name: str) -> "ScriptBuilder":
        self._assertions.append("assert {} :[{}]".format(process, property_name))
        return self

    def render(self) -> str:
        lines: List[str] = []
        if self.header:
            for header_line in self.header.splitlines():
                lines.append("-- " + header_line if header_line else "--")
            lines.append("")
        if self._datatypes:
            for name, constructors in self._datatypes:
                lines.append("datatype {} = {}".format(name, " | ".join(constructors)))
            lines.append("")
        if self._nametypes:
            for name, definition in self._nametypes:
                lines.append("nametype {} = {}".format(name, definition))
            lines.append("")
        if self._channels:
            for names, field_types in self._channels:
                declaration = "channel " + ", ".join(names)
                if field_types:
                    declaration += " : " + ".".join(field_types)
                lines.append(declaration)
            lines.append("")
        for index, (name, body) in enumerate(self._definitions):
            comment = self._comments.get(index)
            if comment:
                lines.append("-- " + comment)
            lines.append("{} = {}".format(name, body))
        if self._definitions:
            lines.append("")
        for assertion in self._assertions:
            lines.append(assertion)
        while lines and not lines[-1]:
            lines.pop()
        return "\n".join(lines) + "\n"


def environment_to_script(
    env: Environment,
    channels: Iterable[Channel],
    datatypes: Optional[Mapping[str, Sequence[str]]] = None,
    header: Optional[str] = None,
    assertions: Optional[Sequence[str]] = None,
) -> str:
    """Render a whole environment of equations as a CSPm script."""
    builder = ScriptBuilder(header)
    channel_list = list(channels)
    for name, constructors in (datatypes or {}).items():
        builder.datatype(name, constructors)
    type_names = {tuple(v): k for k, v in (datatypes or {}).items()}
    for channel in channel_list:
        builder.register_channel(channel)
        field_types = []
        for domain in channel.field_domains:
            known = type_names.get(tuple(domain))
            if known is not None:
                field_types.append(known)
            else:
                field_types.append(
                    "{" + ", ".join(emit_value(v) for v in domain) + "}"
                )
        builder.channel([channel.name], field_types)
    for name in env.names():
        builder.define(name, env.resolve(name))
    for assertion in assertions or ():
        builder._assertions.append(assertion)
    return builder.render()
