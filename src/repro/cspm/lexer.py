"""Lexer for the machine-readable CSP dialect (CSPm).

Covers the subset of CSPm the paper relies on (Table I plus the declaration
forms appearing in the generated model of Fig. 3): channel / datatype /
nametype declarations, process equations, the operators of Table I, set and
enumerated-channel-set syntax, ``assert`` statements and comments.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional


class CspmSyntaxError(SyntaxError):
    """A lexing or parsing error, carrying source position."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__("{} (line {}, column {})".format(message, line, column))
        self.line = line
        self.column = column


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int


KEYWORDS = frozenset(
    {
        "channel",
        "datatype",
        "nametype",
        "assert",
        "if",
        "then",
        "else",
        "let",
        "within",
        "STOP",
        "SKIP",
        "true",
        "false",
        "not",
        "and",
        "or",
        "union",
        "inter",
        "diff",
        "Events",
    }
)

# longest-match-first multi-character operators
_OPERATORS = [
    ("[T=", "TRACE_REFINES"),
    ("[F=", "FAILURES_REFINES"),
    ("[FD=", "FD_REFINES"),
    ("|~|", "INTERNAL_CHOICE"),
    ("|||", "INTERLEAVE"),
    ("[|", "LPAR_SYNC"),
    ("|]", "RPAR_SYNC"),
    ("{|", "LENUM"),
    ("|}", "RENUM"),
    ("[[", "LRENAME"),
    ("]]", "RRENAME"),
    ("/\\", "INTERRUPT"),
    ("<-", "LARROW"),
    ("->", "ARROW"),
    ("[]", "EXTERNAL_CHOICE"),
    ("==", "EQ"),
    ("!=", "NEQ"),
    ("<=", "LE"),
    (">=", "GE"),
    ("..", "DOTDOT"),
    (":[", "LPROP"),
    ("&&", "BOOL_AND"),
    ("||", "BOOL_OR"),
    ("@@", "ATAT"),
    ("=", "EQUALS"),
    ("(", "LPAREN"),
    (")", "RPAREN"),
    ("{", "LBRACE"),
    ("}", "RBRACE"),
    ("[", "LBRACKET"),
    ("]", "RBRACKET"),
    ("<", "LT"),
    (">", "GT"),
    (",", "COMMA"),
    (";", "SEMI"),
    (":", "COLON"),
    ("?", "QUERY"),
    ("!", "BANG"),
    (".", "DOT"),
    ("\\", "HIDE"),
    ("|", "BAR"),
    ("+", "PLUS"),
    ("-", "MINUS"),
    ("*", "STAR"),
    ("/", "SLASH"),
    ("%", "PERCENT"),
    ("&", "GUARD"),
    ("@", "AT"),
    ("_", "UNDERSCORE"),
]


def tokenize(source: str) -> List[Token]:
    """Tokenise CSPm source into a list of tokens ending with EOF.

    Raises :class:`CspmSyntaxError` on any character that cannot start a
    token.  Both ``--`` line comments and ``{- -}`` block comments are
    stripped.
    """
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> CspmSyntaxError:
        return CspmSyntaxError(message, line, column)

    while index < length:
        char = source[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("--", index):
            end = source.find("\n", index)
            if end == -1:
                break
            column += end - index
            index = end
            continue
        if source.startswith("{-", index):
            end = source.find("-}", index + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[index : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            tokens.append(Token("NUMBER", text, line, column))
            column += len(text)
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] in "_'"):
                index += 1
            text = source[start:index]
            kind = "KEYWORD" if text in KEYWORDS else "IDENT"
            # a lone underscore is the wildcard token, not an identifier
            if text == "_":
                kind = "UNDERSCORE"
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue
        matched: Optional[Token] = None
        for symbol, kind in _OPERATORS:
            if source.startswith(symbol, index):
                matched = Token(kind, symbol, line, column)
                break
        if matched is None:
            raise error("unexpected character {!r}".format(char))
        tokens.append(matched)
        index += len(matched.text)
        column += len(matched.text)
    tokens.append(Token("EOF", "", line, column))
    return tokens


def iter_significant(tokens: List[Token]) -> Iterator[Token]:
    """All tokens except the trailing EOF (helper for tests/debugging)."""
    for token in tokens:
        if token.kind != "EOF":
            yield token
