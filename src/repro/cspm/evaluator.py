"""Evaluator: CSPm abstract syntax down to core process-algebra terms.

Loading a script performs, in order:

1. ``datatype`` / ``nametype`` declarations populate the value universe,
2. ``channel`` declarations build :class:`repro.csp.Channel` objects with
   finite field domains (what makes the models checkable),
3. process equations are evaluated to :class:`repro.csp.Process` terms in a
   shared :class:`repro.csp.Environment`; parameterised equations are
   instantiated on demand, one environment entry per argument tuple, which is
   how FDR compiles them,
4. ``assert`` declarations are collected and can be discharged against the
   refinement engine with :meth:`CspmModel.check_assertions`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..csp.events import Alphabet, Channel, Event, Value
from ..csp.process import (
    Environment,
    Interrupt,
    ExternalChoice,
    GenParallel,
    Hiding,
    Interleave,
    InternalChoice,
    Prefix,
    Process,
    ProcessRef,
    Renaming,
    SKIP,
    STOP,
    SeqComp,
    external_choice,
    internal_choice,
)
from ..fdr.assertions import PropertyAssertion, RefinementAssertion
from ..fdr.refine import CheckResult
from . import ast_nodes as ast
from .parser import parse

SetValue = Union[Alphabet, FrozenSet[Value]]


class CspmEvaluationError(RuntimeError):
    """Raised when a script is well-formed but cannot be evaluated."""


class CspmModel:
    """A fully loaded CSPm script: types, channels, processes, assertions."""

    def __init__(self, script: ast.Script) -> None:
        self.script = script
        self.env = Environment()
        self.channels: Dict[str, Channel] = {}
        self.datatypes: Dict[str, Tuple[str, ...]] = {}
        self.nametypes: Dict[str, Tuple[Value, ...]] = {}
        #: constructor name -> owning datatype
        self.constructors: Dict[str, str] = {}
        #: parameterised definitions kept as AST for on-demand instantiation
        self.templates: Dict[str, ast.ProcessDef] = {}
        self.assertions: List[ast.AssertDecl] = []
        self._instantiating: Set[str] = set()
        self._value_defs: Dict[str, ast.Expr] = {}
        self._load()

    # -- loading ----------------------------------------------------------------

    def _load(self) -> None:
        # types and channels first: process bodies need the domains
        for decl in self.script.declarations:
            if isinstance(decl, ast.DatatypeDecl):
                self._load_datatype(decl)
            elif isinstance(decl, ast.NametypeDecl):
                self.nametypes[decl.name] = tuple(
                    sorted(self.eval_value_set(decl.definition, {}), key=str)
                )
        for decl in self.script.declarations:
            if isinstance(decl, ast.ChannelDecl):
                self._load_channel(decl)
        # register every process definition before evaluating any body, so
        # mutually recursive equations resolve to ProcessRefs
        for decl in self.script.process_defs():
            if decl.params:
                self.templates[decl.name] = decl
            else:
                self.templates[decl.name] = decl
        for decl in self.script.process_defs():
            if not decl.params:
                self.env.bind(decl.name, self.eval_process(decl.body, {}))
        for decl in self.script.declarations:
            if isinstance(decl, ast.AssertDecl):
                self.assertions.append(decl)

    def _load_datatype(self, decl: ast.DatatypeDecl) -> None:
        if decl.name in self.datatypes:
            raise CspmEvaluationError("duplicate datatype {!r}".format(decl.name))
        self.datatypes[decl.name] = decl.constructors
        for constructor in decl.constructors:
            if constructor in self.constructors:
                raise CspmEvaluationError(
                    "constructor {!r} declared twice".format(constructor)
                )
            self.constructors[constructor] = decl.name

    def _load_channel(self, decl: ast.ChannelDecl) -> None:
        domains: List[Tuple[Value, ...]] = []
        for field_type in decl.field_types:
            domains.append(tuple(sorted(self.eval_value_set(field_type, {}), key=str)))
        for name in decl.names:
            if name in self.channels:
                raise CspmEvaluationError("duplicate channel {!r}".format(name))
            self.channels[name] = Channel(name, *domains)

    # -- public queries ----------------------------------------------------------

    def events(self) -> Alphabet:
        """The CSPm ``Events`` constant: every event of every channel."""
        return Alphabet.from_channels(*self.channels.values())

    def process(self, name: str, *args: Value) -> Process:
        """A reference to a defined process, instantiating parameters if given."""
        if args:
            return self._instantiate(name, tuple(args))
        if name not in self.templates:
            raise CspmEvaluationError("undefined process {!r}".format(name))
        if self.templates[name].params:
            raise CspmEvaluationError(
                "process {!r} needs {} argument(s)".format(
                    name, len(self.templates[name].params)
                )
            )
        return ProcessRef(name)

    def check_assertions(
        self, max_states: int = 200_000, pipeline=None, passes="default"
    ) -> List[CheckResult]:
        """Discharge every ``assert`` in the script; returns one result each.

        All assertions share one verification pipeline, so a process term
        appearing on several assert lines compiles and normalises once.  Pass
        a preconfigured :class:`~repro.engine.VerificationPipeline` to
        control eager/lazy search or reuse a cache across scripts; *passes*
        configures compress-before-compose when no pipeline is supplied
        ("default", "none", or a comma-separated pass list).
        """
        from ..engine.pipeline import VerificationPipeline

        if pipeline is None:
            pipeline = VerificationPipeline(
                self.env, max_states=max_states, passes=passes
            )
        results = []
        for decl in self.assertions:
            results.append(self.check_assertion(decl, max_states, pipeline))
        return results

    def check_assertion(
        self,
        decl: ast.AssertDecl,
        max_states: int = 200_000,
        pipeline=None,
    ) -> CheckResult:
        left = self.eval_process(decl.left, {})
        if decl.kind in ("T", "F", "FD"):
            right = self.eval_process(decl.right, {})
            model = decl.kind
            result = RefinementAssertion(left, right, model).check(
                self.env, max_states, pipeline=pipeline
            )
        else:
            result = PropertyAssertion(left, decl.kind).check(
                self.env, max_states, pipeline=pipeline
            )
        if decl.negated:
            flipped = CheckResult(
                "not ({})".format(result.name),
                not result.passed,
                result.counterexample,
                result.states_explored,
                result.transitions_explored,
                pass_stats=result.pass_stats,
                profile=result.profile,
            )
            return flipped
        return result

    # -- expression evaluation -----------------------------------------------------

    def eval_process(self, expr: ast.Expr, scope: Dict[str, Value]) -> Process:
        """Evaluate an expression in process position."""
        if isinstance(expr, ast.Stop):
            return STOP
        if isinstance(expr, ast.Skip):
            return SKIP
        if isinstance(expr, ast.Name):
            return self._resolve_process_name(expr.ident, scope)
        if isinstance(expr, ast.PrefixExpr):
            return self._eval_prefix(expr, scope)
        if isinstance(expr, ast.ExternalChoiceExpr):
            return ExternalChoice(
                self.eval_process(expr.left, scope), self.eval_process(expr.right, scope)
            )
        if isinstance(expr, ast.InternalChoiceExpr):
            return InternalChoice(
                self.eval_process(expr.left, scope), self.eval_process(expr.right, scope)
            )
        if isinstance(expr, ast.SeqExpr):
            return SeqComp(
                self.eval_process(expr.first, scope), self.eval_process(expr.second, scope)
            )
        if isinstance(expr, ast.ParallelExpr):
            return GenParallel(
                self.eval_process(expr.left, scope),
                self.eval_process(expr.right, scope),
                self.eval_event_set(expr.sync, scope),
            )
        if isinstance(expr, ast.AlphaParallelExpr):
            left_alpha = self.eval_event_set(expr.left_alpha, scope)
            right_alpha = self.eval_event_set(expr.right_alpha, scope)
            # alphabetised parallel P [A || B] Q: each side is confined to
            # its alphabet (events outside it are blocked by a STOP partner
            # synchronising on them), and the two sync on the intersection
            everything = self.events()
            left = GenParallel(
                self.eval_process(expr.left, scope), STOP, everything - left_alpha
            )
            right = GenParallel(
                self.eval_process(expr.right, scope), STOP, everything - right_alpha
            )
            return GenParallel(left, right, left_alpha & right_alpha)
        if isinstance(expr, ast.InterleaveExpr):
            return Interleave(
                self.eval_process(expr.left, scope), self.eval_process(expr.right, scope)
            )
        if isinstance(expr, ast.InterruptExpr):
            return Interrupt(
                self.eval_process(expr.primary, scope),
                self.eval_process(expr.handler, scope),
            )
        if isinstance(expr, ast.HideExpr):
            return Hiding(
                self.eval_process(expr.process, scope),
                self.eval_event_set(expr.hidden, scope),
            )
        if isinstance(expr, ast.RenameExpr):
            mapping: Dict[Event, Event] = {}
            for old_expr, new_expr in expr.pairs:
                for old, new in self._rename_pairs(old_expr, new_expr, scope):
                    mapping[old] = new
            return Renaming(self.eval_process(expr.process, scope), mapping)
        if isinstance(expr, ast.IfExpr):
            condition = self.eval_value(expr.condition, scope)
            branch = expr.then_branch if condition else expr.else_branch
            return self.eval_process(branch, scope)
        if isinstance(expr, ast.GuardExpr):
            if self.eval_value(expr.condition, scope):
                return self.eval_process(expr.process, scope)
            return STOP
        if isinstance(expr, ast.LetExpr):
            return self._eval_let(expr, scope)
        if isinstance(expr, ast.Apply):
            return self._eval_apply(expr, scope)
        if isinstance(expr, ast.ReplicatedOp):
            return self._eval_replicated(expr, scope)
        raise CspmEvaluationError(
            "expression {!r} is not a process".format(type(expr).__name__)
        )

    def _resolve_process_name(self, ident: str, scope: Dict[str, Value]) -> Process:
        if ident in scope:
            value = scope[ident]
            if isinstance(value, Process):
                return value
            raise CspmEvaluationError(
                "variable {!r} holds a value, not a process".format(ident)
            )
        if ident in self.templates:
            template = self.templates[ident]
            if template.params:
                raise CspmEvaluationError(
                    "process {!r} used without its {} argument(s)".format(
                        ident, len(template.params)
                    )
                )
            return ProcessRef(ident)
        raise CspmEvaluationError("undefined process {!r}".format(ident))

    def _eval_prefix(self, expr: ast.PrefixExpr, scope: Dict[str, Value]) -> Process:
        channel = self.channels.get(expr.channel)
        if channel is None:
            raise CspmEvaluationError(
                "prefix on undeclared channel {!r}".format(expr.channel)
            )
        if len(expr.comm_fields) != channel.arity:
            raise CspmEvaluationError(
                "channel {!r} carries {} field(s); prefix supplies {}".format(
                    expr.channel, channel.arity, len(expr.comm_fields)
                )
            )
        return self._expand_prefix(channel, expr.comm_fields, (), expr.continuation, scope)

    def _expand_prefix(
        self,
        channel: Channel,
        fields: Tuple[ast.CommField, ...],
        resolved: Tuple[Value, ...],
        continuation: ast.Expr,
        scope: Dict[str, Value],
    ) -> Process:
        position = len(resolved)
        if position == len(fields):
            return Prefix(channel(*resolved), self.eval_process(continuation, scope))
        field = fields[position]
        if field.kind in ("!", "."):
            value = self.eval_value(field.expr, scope)
            return self._expand_prefix(
                channel, fields, resolved + (value,), continuation, scope
            )
        # input field '?var': external choice over the field's finite domain
        domain = channel.field_domains[position]
        allowed: Sequence[Value] = domain
        if field.restriction is not None:
            restriction = self.eval_value_set(field.restriction, scope)
            allowed = [value for value in domain if value in restriction]
        branches = []
        for value in allowed:
            extended = dict(scope)
            if field.var != "_":
                extended[field.var] = value
            branches.append(
                self._expand_prefix(
                    channel, fields, resolved + (value,), continuation, extended
                )
            )
        if not branches:
            return STOP
        return external_choice(*branches)

    def _eval_let(self, expr: ast.LetExpr, scope: Dict[str, Value]) -> Process:
        local = dict(scope)
        for definition in expr.definitions:
            if definition.params:
                raise CspmEvaluationError(
                    "parameterised let-definitions are not supported"
                )
            local[definition.name] = self.eval_process(definition.body, local)
        return self.eval_process(expr.body, local)

    def _eval_apply(self, expr: ast.Apply, scope: Dict[str, Value]) -> Process:
        if not isinstance(expr.function, ast.Name):
            raise CspmEvaluationError("only named processes can be applied")
        name = expr.function.ident
        template = self.templates.get(name)
        if template is None:
            raise CspmEvaluationError("undefined process {!r}".format(name))
        if len(expr.args) != len(template.params):
            raise CspmEvaluationError(
                "process {!r} expects {} argument(s), got {}".format(
                    name, len(template.params), len(expr.args)
                )
            )
        args = tuple(self.eval_value(arg, scope) for arg in expr.args)
        return self._instantiate(name, args)

    def _instantiate(self, name: str, args: Tuple[Value, ...]) -> Process:
        template = self.templates.get(name)
        if template is None:
            raise CspmEvaluationError("undefined process {!r}".format(name))
        if len(args) != len(template.params):
            raise CspmEvaluationError(
                "process {!r} expects {} argument(s), got {}".format(
                    name, len(template.params), len(args)
                )
            )
        key = "{}({})".format(name, ",".join(str(a) for a in args)) if args else name
        if key in self.env or key in self._instantiating:
            return ProcessRef(key)
        self._instantiating.add(key)
        try:
            bound = dict(zip(template.params, args))
            body = self.eval_process(template.body, bound)
        finally:
            self._instantiating.discard(key)
        self.env.bind(key, body)
        return ProcessRef(key)

    def _eval_replicated(self, expr: ast.ReplicatedOp, scope: Dict[str, Value]) -> Process:
        domain = sorted(self.eval_value_set(expr.domain, scope), key=str)
        processes = []
        for value in domain:
            extended = dict(scope)
            extended[expr.variable] = value
            processes.append(self.eval_process(expr.body, extended))
        if expr.op == "[]":
            return external_choice(*processes)
        if expr.op == "|~|":
            return internal_choice(*processes)
        if expr.op == "|||":
            result: Process = SKIP
            if processes:
                result = processes[0]
                for process in processes[1:]:
                    result = Interleave(result, process)
            return result
        raise CspmEvaluationError("unknown replicated operator {!r}".format(expr.op))

    # -- values ----------------------------------------------------------------

    def eval_value(self, expr: ast.Expr, scope: Dict[str, Value]) -> Value:
        """Evaluate an expression in value position (fields, conditions)."""
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Name):
            if expr.ident in scope:
                value = scope[expr.ident]
                if isinstance(value, Process):
                    raise CspmEvaluationError(
                        "{!r} is a process, not a value".format(expr.ident)
                    )
                return value
            if expr.ident in self.constructors:
                return expr.ident
            raise CspmEvaluationError("unbound value name {!r}".format(expr.ident))
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "not":
                return not self.eval_value(expr.operand, scope)
            if expr.op == "-":
                return -self.eval_value(expr.operand, scope)
        if isinstance(expr, ast.IfExpr):
            condition = self.eval_value(expr.condition, scope)
            branch = expr.then_branch if condition else expr.else_branch
            return self.eval_value(branch, scope)
        raise CspmEvaluationError(
            "cannot evaluate {!r} as a value".format(type(expr).__name__)
        )

    def _eval_binop(self, expr: ast.BinOp, scope: Dict[str, Value]) -> Value:
        op = expr.op
        if op in ("and", "or"):
            left = self.eval_value(expr.left, scope)
            if op == "and":
                return bool(left) and bool(self.eval_value(expr.right, scope))
            return bool(left) or bool(self.eval_value(expr.right, scope))
        left = self.eval_value(expr.left, scope)
        right = self.eval_value(expr.right, scope)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left // right
        if op == "%":
            return left % right
        raise CspmEvaluationError("unknown operator {!r}".format(op))

    def eval_value_set(self, expr: ast.Expr, scope: Dict[str, Value]) -> FrozenSet[Value]:
        """Evaluate a set of *values* (datatype ranges, nametypes, restrictions)."""
        if isinstance(expr, ast.Name):
            if expr.ident in self.datatypes:
                return frozenset(self.datatypes[expr.ident])
            if expr.ident in self.nametypes:
                return frozenset(self.nametypes[expr.ident])
            raise CspmEvaluationError("unknown type name {!r}".format(expr.ident))
        if isinstance(expr, ast.SetLit):
            return frozenset(self.eval_value(e, scope) for e in expr.elements)
        if isinstance(expr, ast.SetRange):
            low = self.eval_value(expr.low, scope)
            high = self.eval_value(expr.high, scope)
            return frozenset(range(low, high + 1))
        if isinstance(expr, ast.BinOp) and expr.op in ("union", "inter", "diff"):
            left = self.eval_value_set(expr.left, scope)
            right = self.eval_value_set(expr.right, scope)
            if expr.op == "union":
                return left | right
            if expr.op == "inter":
                return left & right
            return left - right
        raise CspmEvaluationError(
            "cannot evaluate {!r} as a value set".format(type(expr).__name__)
        )

    def eval_event_set(self, expr: ast.Expr, scope: Dict[str, Value]) -> Alphabet:
        """Evaluate a set of *events* (sync sets, hiding sets)."""
        if isinstance(expr, ast.EventsSet):
            return self.events()
        if isinstance(expr, ast.EnumSet):
            events: List[Event] = []
            for member in expr.members:
                events.extend(self._channel_prefix_events(member, scope))
            return Alphabet(events)
        if isinstance(expr, ast.SetLit):
            events = []
            for element in expr.elements:
                events.append(self._eval_event(element, scope))
            return Alphabet(events)
        if isinstance(expr, ast.Name):
            # a bare channel name in set position means all its events
            if expr.ident in self.channels:
                return self.channels[expr.ident].alphabet()
            if expr.ident in scope and isinstance(scope[expr.ident], Alphabet):
                return scope[expr.ident]
            raise CspmEvaluationError(
                "{!r} does not denote an event set".format(expr.ident)
            )
        if isinstance(expr, ast.BinOp) and expr.op in ("union", "inter", "diff"):
            left = self.eval_event_set(expr.left, scope)
            right = self.eval_event_set(expr.right, scope)
            if expr.op == "union":
                return left | right
            if expr.op == "inter":
                return left & right
            return left - right
        raise CspmEvaluationError(
            "cannot evaluate {!r} as an event set".format(type(expr).__name__)
        )

    def _channel_prefix_events(
        self, expr: ast.Expr, scope: Dict[str, Value]
    ) -> List[Event]:
        """Events matching a ``{| channel.prefix |}`` member."""
        if isinstance(expr, ast.Name):
            channel = self.channels.get(expr.ident)
            if channel is None:
                raise CspmEvaluationError(
                    "{!r} is not a channel".format(expr.ident)
                )
            return list(channel.events())
        if isinstance(expr, ast.DottedExpr):
            head = expr.parts[0]
            if not isinstance(head, ast.Name) or head.ident not in self.channels:
                raise CspmEvaluationError("enumerated set member must start with a channel")
            channel = self.channels[head.ident]
            prefix_values = tuple(
                self.eval_value(part, scope) for part in expr.parts[1:]
            )
            return [
                event
                for event in channel.events()
                if event.fields[: len(prefix_values)] == prefix_values
            ]
        raise CspmEvaluationError("bad enumerated-set member")

    def _eval_event(self, expr: ast.Expr, scope: Dict[str, Value]) -> Event:
        """A single concrete event from a dotted expression or bare name."""
        if isinstance(expr, ast.Name):
            channel = self.channels.get(expr.ident)
            if channel is not None:
                if channel.arity != 0:
                    raise CspmEvaluationError(
                        "event {!r} needs {} field(s)".format(
                            expr.ident, channel.arity
                        )
                    )
                return channel()
            raise CspmEvaluationError("{!r} is not an event".format(expr.ident))
        if isinstance(expr, ast.DottedExpr):
            head = expr.parts[0]
            if not isinstance(head, ast.Name) or head.ident not in self.channels:
                raise CspmEvaluationError("event must start with a channel name")
            channel = self.channels[head.ident]
            fields = tuple(self.eval_value(part, scope) for part in expr.parts[1:])
            return channel(*fields)
        raise CspmEvaluationError(
            "cannot evaluate {!r} as an event".format(type(expr).__name__)
        )

    def _rename_pairs(
        self, old_expr: ast.Expr, new_expr: ast.Expr, scope: Dict[str, Value]
    ) -> List[Tuple[Event, Event]]:
        """Expand one renaming pair; bare channel names map field-wise."""
        old_is_channel = isinstance(old_expr, ast.Name) and old_expr.ident in self.channels
        new_is_channel = isinstance(new_expr, ast.Name) and new_expr.ident in self.channels
        if old_is_channel and new_is_channel:
            old_channel = self.channels[old_expr.ident]
            new_channel = self.channels[new_expr.ident]
            if old_channel.field_domains != new_channel.field_domains:
                raise CspmEvaluationError(
                    "cannot rename channel {!r} to {!r}: field domains differ".format(
                        old_channel.name, new_channel.name
                    )
                )
            return [
                (event, Event(new_channel.name, event.fields))
                for event in old_channel.events()
            ]
        return [(self._eval_event(old_expr, scope), self._eval_event(new_expr, scope))]


def load(source: str) -> CspmModel:
    """Parse and evaluate a CSPm script in one step."""
    return CspmModel(parse(source))


def load_file(path: str) -> CspmModel:
    """Load a CSPm script from a file path."""
    with open(path, "r", encoding="utf-8") as handle:
        return load(handle.read())
