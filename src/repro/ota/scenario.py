"""The end-to-end Fig. 1 workflow over the case-study network.

One call, :func:`run_workflow`, performs the whole toolchain of the paper:

1. **Simulate** -- run the VMG and ECU CAPL programs on the simulated CAN
   bus (the CANoe stage) and record the bus trace.
2. **Extract** -- translate the same CAPL sources into CSPm implementation
   models and compose them into a system model (the model-transformation
   stage).
3. **Check** -- discharge the SP02 integrity assertion with the refinement
   engine (the FDR stage), returning any insecure trace.
4. **Validate** -- replay the simulation's bus trace through the extracted
   model's LTS, confirming the model admits the observed behaviour (the
   soundness link between stages 1 and 2).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from ..canbus import CanBus, Scheduler, TraceLog
from ..capl import CaplNode
from ..csp.events import Event
from ..engine.pipeline import VerificationPipeline
from ..fdr.refine import CheckResult
from ..translator import ChannelConvention, NetworkBuilder
from .capl_sources import ECU_FLAWED_SOURCE, ECU_SOURCE, VMG_SOURCE
from .messages import CAN_MESSAGE_SPECS


class WorkflowReport(NamedTuple):
    """Everything the Fig. 1 pipeline produces."""

    simulation_log: TraceLog
    vmg_console: Tuple[str, ...]
    composed_script: str
    check_results: Tuple[CheckResult, ...]
    simulation_trace_admitted: bool

    @property
    def all_passed(self) -> bool:
        return all(result.passed for result in self.check_results)

    def summary(self) -> str:
        lines = ["-- Fig. 1 workflow report --"]
        lines.append(
            "simulation: {} frames exchanged".format(len(self.simulation_log))
        )
        for result in self.check_results:
            lines.append(result.summary())
        lines.append(
            "simulation trace admitted by extracted model: {}".format(
                "yes" if self.simulation_trace_admitted else "NO"
            )
        )
        return "\n".join(lines)


def simulate_network(
    ecu_source: str = ECU_SOURCE,
    vmg_source: str = VMG_SOURCE,
    until_us: int = 1_000_000,
) -> Tuple[TraceLog, CaplNode, CaplNode]:
    """Stage 1: the CANoe-substitute simulation of the Fig. 2 demo system."""
    scheduler = Scheduler()
    bus = CanBus(scheduler)
    vmg = CaplNode("VMG", bus, vmg_source, CAN_MESSAGE_SPECS)
    ecu = CaplNode("ECU", bus, ecu_source, CAN_MESSAGE_SPECS)
    log = bus.simulate(until=until_us)
    return log, vmg, ecu


def extract_system(
    ecu_source: str = ECU_SOURCE,
    vmg_source: str = VMG_SOURCE,
):
    """Stage 2: model extraction and composition.

    The VMG transmits on ``send`` and receives on ``rec``; the ECU is the
    mirror image -- the paper's Sec. V-B channel convention.
    """
    builder = NetworkBuilder(include_timers=True)
    builder.add_node("VMG", vmg_source, ChannelConvention("rec", "send"))
    builder.add_node("ECU", ecu_source, ChannelConvention("send", "rec"))
    builder.add_specification("SP02", "send.reqSw -> rec.rptSw -> SP02")
    builder.add_specification(
        "SP02_LOOSE",
        "send.reqSw -> rec.rptSw -> SP02_LOOSE "
        "[] send.reqApp -> rec.rptUpd -> SP02_LOOSE",
    )
    builder.add_assertion("assert SP02_LOOSE [T= SYSTEM_DATA")
    return builder.compose()


def _simulation_events(log: TraceLog) -> List[Event]:
    """Map the bus trace onto the extracted model's events.

    The VMG transmits on ``send``, the ECU on ``rec`` (Sec. V-B convention).
    """
    events = []
    for entry in log:
        channel = "send" if entry.sender == "VMG" else "rec"
        name = entry.frame.name or "ID_0X{:X}".format(entry.frame.can_id)
        events.append(Event(channel, (name,)))
    return events


def run_workflow(
    flawed: bool = False,
    until_us: int = 1_000_000,
    max_states: int = 200_000,
) -> WorkflowReport:
    """Run the complete Fig. 1 pipeline; ``flawed=True`` seeds the defect."""
    ecu_source = ECU_FLAWED_SOURCE if flawed else ECU_SOURCE
    log, vmg, _ecu = simulate_network(ecu_source, until_us=until_us)
    composed = extract_system(ecu_source)
    model = composed.load()
    results = tuple(model.check_assertions(max_states))

    # stage 4: replay the simulated bus trace against the extracted model,
    # with timer events free to occur (they are internal to the nodes)
    system = model.process("SYSTEM_DATA" if "SYSTEM_DATA" in model.env else "SYSTEM")
    pipeline = VerificationPipeline(model.env, max_states=max_states)
    # trace admission is a trace-level question, so the composed system may
    # be walked in its compressed form (compress-before-compose)
    prepared = pipeline.plan.prepare(system, "T")
    lts = pipeline.compile(prepared.term)
    admitted = lts.walk(_simulation_events(log)) is not None

    return WorkflowReport(
        simulation_log=log,
        vmg_console=tuple(vmg.console),
        composed_script=composed.script_text,
        check_results=results,
        simulation_trace_admitted=admitted,
    )
