"""Hand-written CSP models of the OTA update case study (paper Sec. V).

Three model families:

* :func:`build_paper_system` -- the exact Sec. V-B scope: ``SP02``, a VMG
  and an ECU composed as ``SYSTEM = VMG [|{|send,rec|}|] ECU`` (with the
  seeded flaw variant for the negative result).
* :func:`build_session_system` -- the full diagnose-then-update session over
  the Table II message set.
* :func:`build_secured_system` -- the shared-key (R05) analysis: the same
  update flow under three protection levels (``none``, ``mac``,
  ``mac_nonce``) composed with a Dolev-Yao intruder, exposing the injection
  attack, the replay attack, and the secured configuration respectively.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..csp.events import Alphabet, Channel, Event, Value
from ..csp.process import (
    Environment,
    GenParallel,
    Prefix,
    Process,
    ProcessRef,
    external_choice,
    input_choice,
    prefix,
    ref,
)
from ..security.crypto import key, mac
from ..security.intruder import IntruderBuilder
from .messages import BASIC_MESSAGES, basic_channels


class BasicSystem(NamedTuple):
    """The Sec. V-B demonstration model, ready for checking."""

    env: Environment
    send: Channel
    rec: Channel
    sync: Alphabet
    sp02: ProcessRef
    vmg: ProcessRef
    ecu: ProcessRef
    system: Process


def build_paper_system(
    env: Optional[Environment] = None, flawed: bool = False
) -> BasicSystem:
    """The paper's SP02 scenario: ``SP02 ⊑T VMG [|{|send,rec|}|] ECU``.

    With ``flawed=True`` the ECU may answer an inventory request with an
    update report; the refinement then fails with the insecure trace
    ``<send.reqSw, rec.rptUpd>``.
    """
    env = env or Environment()
    send, rec = basic_channels()

    # SP02 = send!reqSw -> rec!rptSw -> SP02          (paper Sec. V-B)
    env.bind("SP02", prefix(send("reqSw"), prefix(rec("rptSw"), ref("SP02"))))

    # VMG = send!reqSw -> rec?x -> VMG
    env.bind("VMG", prefix(send("reqSw"), input_choice(rec, lambda _x: ref("VMG"))))

    if flawed:
        # the ECU may take the update path on an inventory request
        env.bind(
            "ECU",
            input_choice(
                send,
                lambda _x: external_choice(
                    prefix(rec("rptSw"), ref("ECU")),
                    prefix(rec("rptUpd"), ref("ECU")),
                ),
            ),
        )
    else:
        # ECU = send?x -> rec!rptSw -> ECU
        env.bind("ECU", input_choice(send, lambda _x: prefix(rec("rptSw"), ref("ECU"))))

    sync = Alphabet.from_channels(send, rec)
    system = GenParallel(ref("VMG"), ref("ECU"), sync)
    env.bind("SYSTEM", system)
    return BasicSystem(env, send, rec, sync, ref("SP02"), ref("VMG"), ref("ECU"), ref("SYSTEM"))


class SessionSystem(NamedTuple):
    """The full diagnose-then-update session over Table II."""

    env: Environment
    send: Channel
    rec: Channel
    sync: Alphabet
    spec: ProcessRef
    system: Process


def build_session_system(env: Optional[Environment] = None) -> SessionSystem:
    """Diagnose phase then update phase, as one recurring session.

    SESSION_SPEC = send.reqSw -> rec.rptSw -> send.reqApp -> rec.rptUpd -> SESSION_SPEC
    """
    env = env or Environment()
    send, rec = basic_channels()
    env.bind(
        "SESSION_SPEC",
        prefix(
            send("reqSw"),
            prefix(
                rec("rptSw"),
                prefix(send("reqApp"), prefix(rec("rptUpd"), ref("SESSION_SPEC"))),
            ),
        ),
    )
    env.bind(
        "VMG_FULL",
        prefix(
            send("reqSw"),
            input_choice(
                rec,
                lambda _x: prefix(
                    send("reqApp"), input_choice(rec, lambda _y: ref("VMG_FULL"))
                ),
            ),
        ),
    )
    env.bind(
        "ECU_FULL",
        external_choice(
            prefix(send("reqSw"), prefix(rec("rptSw"), ref("ECU_FULL"))),
            prefix(send("reqApp"), prefix(rec("rptUpd"), ref("ECU_FULL"))),
        ),
    )
    sync = Alphabet.from_channels(send, rec)
    env.bind("SESSION_SYSTEM", GenParallel(ref("VMG_FULL"), ref("ECU_FULL"), sync))
    return SessionSystem(
        env, send, rec, sync, ref("SESSION_SPEC"), ref("SESSION_SYSTEM")
    )


# -- the shared-key (R05) security analysis ----------------------------------------


#: the two update modules in play: ``upd1`` is the module the VMG actually
#: distributes; ``upd2`` exists in the wild but is never sent legitimately
UPDATE_MODULES: Tuple[str, ...] = ("upd1", "upd2")

#: nonces for the freshness-protected variant
NONCES: Tuple[str, ...] = ("n1", "n2")

#: the shared VMG<->ECU key of requirement R05
SHARED_KEY = key("k_vmg_ecu")

#: the token an intruder can always fabricate (no key needed)
FORGED_TOKEN: Value = "forged"


class SecuredSystem(NamedTuple):
    """A protection level's model plus the events its properties speak about."""

    env: Environment
    protection: str
    legit: Channel
    fake: Channel
    apply: Channel
    attacked_system: Process
    #: apply events that must never happen (unauthorised module)
    forbidden_applies: Tuple[Event, ...]
    #: (legitimate send event, apply event) pairs for agreement checks
    agreement_pairs: Tuple[Tuple[Event, Event], ...]
    alphabet: Alphabet


def _payloads(protection: str) -> List[Value]:
    """The finite payload universe for a protection level."""
    if protection == "none":
        return list(UPDATE_MODULES)
    if protection == "mac":
        payloads: List[Value] = []
        for module in UPDATE_MODULES:
            payloads.append((module, mac(SHARED_KEY, module)))
            payloads.append((module, FORGED_TOKEN))
        return payloads
    if protection == "mac_nonce":
        payloads = []
        for module in UPDATE_MODULES:
            for nonce_value in NONCES:
                payloads.append(
                    (module, nonce_value, mac(SHARED_KEY, (module, nonce_value)))
                )
                payloads.append((module, nonce_value, FORGED_TOKEN))
        return payloads
    raise ValueError(
        "unknown protection {!r}; use 'none', 'mac' or 'mac_nonce'".format(protection)
    )


def _payload_is_valid(protection: str, payload: Value) -> bool:
    if protection == "none":
        return True
    if protection == "mac":
        module, token = payload
        return token == mac(SHARED_KEY, module)
    module, nonce_value, token = payload
    return token == mac(SHARED_KEY, (module, nonce_value))


def _payload_module(protection: str, payload: Value) -> str:
    if protection == "none":
        return payload
    return payload[0]


def _legit_payloads(protection: str) -> List[Value]:
    """What the VMG actually transmits: module upd1 only, correctly tagged."""
    if protection == "none":
        return ["upd1"]
    if protection == "mac":
        return [("upd1", mac(SHARED_KEY, "upd1"))]
    return [
        ("upd1", nonce_value, mac(SHARED_KEY, ("upd1", nonce_value)))
        for nonce_value in NONCES
    ]


def build_secured_system(
    protection: str = "none", env: Optional[Environment] = None
) -> SecuredSystem:
    """The update-distribution model under a protection level, with intruder.

    * ``none``      -- raw module names on the bus; the intruder can inject
      the unauthorised module ``upd2`` (integrity attack found).
    * ``mac``       -- shared-key MAC per R05; forgery is impossible but a
      recorded message can be replayed (injective agreement fails).
    * ``mac_nonce`` -- MAC over module+nonce with single-use nonces; both
      integrity and injective agreement hold.
    """
    env = env or Environment()
    payloads = _payloads(protection)
    legit = Channel("legit", payloads)
    fake = Channel("fake", payloads)
    apply_channel = Channel("apply", list(UPDATE_MODULES))

    # -- VMG: transmits its legitimate payload(s), one after another, then idles
    sends = _legit_payloads(protection)
    process: Process = ref("VMG_SEC_IDLE")
    env.bind("VMG_SEC_IDLE", external_choice())  # STOP: session complete
    for payload in reversed(sends):
        process = Prefix(legit(payload), process)
    env.bind("VMG_SEC", process)

    # -- ECU: accepts from either channel, verifies, applies
    def ecu_states() -> None:
        if protection == "mac_nonce":
            # track the set of already-used nonces
            def state_name(used: Tuple[str, ...]) -> str:
                return "ECU_SEC_" + ("_".join(used) if used else "FRESH")

            all_subsets: List[Tuple[str, ...]] = [()]
            for nonce_value in NONCES:
                all_subsets += [
                    subset + (nonce_value,)
                    for subset in list(all_subsets)
                ]
            for used in all_subsets:
                branches = []
                for channel in (legit, fake):
                    for payload in payloads:
                        module, nonce_value, _token = payload
                        if (
                            _payload_is_valid(protection, payload)
                            and nonce_value not in used
                        ):
                            next_state = state_name(
                                tuple(sorted(set(used) | {nonce_value}))
                            )
                            branches.append(
                                Prefix(
                                    channel(payload),
                                    Prefix(
                                        apply_channel(module), ref(next_state)
                                    ),
                                )
                            )
                        else:
                            branches.append(
                                Prefix(channel(payload), ref(state_name(used)))
                            )
                env.bind(state_name(used), external_choice(*branches))
            env.bind("ECU_SEC", ref(state_name(())))
            return

        branches = []
        for channel in (legit, fake):
            for payload in payloads:
                if _payload_is_valid(protection, payload):
                    module = _payload_module(protection, payload)
                    branches.append(
                        Prefix(
                            channel(payload),
                            Prefix(apply_channel(module), ref("ECU_SEC")),
                        )
                    )
                else:
                    branches.append(Prefix(channel(payload), ref("ECU_SEC")))
        env.bind("ECU_SEC", external_choice(*branches))

    ecu_states()

    # -- honest system: VMG and ECU synchronise on the legitimate channel
    honest = GenParallel(ref("VMG_SEC"), ref("ECU_SEC"), legit.alphabet())
    env.bind("HONEST_SYSTEM", honest)

    # -- the Dolev-Yao intruder overhears legit and injects fake
    initial_knowledge: List[Value]
    if protection == "none":
        initial_knowledge = list(UPDATE_MODULES)  # formats are public
    elif protection == "mac":
        initial_knowledge = [
            (module, FORGED_TOKEN) for module in UPDATE_MODULES
        ]
    else:
        initial_knowledge = [
            (module, nonce_value, FORGED_TOKEN)
            for module in UPDATE_MODULES
            for nonce_value in NONCES
        ]
    builder = IntruderBuilder(
        listen_channels=[legit],
        inject_channels=[fake],
        universe=payloads,
        initial_knowledge=initial_knowledge,
    )
    builder.compose_with(
        ref("HONEST_SYSTEM"), env, register_as="ATTACKED_SYSTEM"
    )

    forbidden = (apply_channel("upd2"),)
    agreement = tuple(
        (legit(payload), apply_channel(_payload_module(protection, payload)))
        for payload in sends
    )
    alphabet = (
        legit.alphabet() | fake.alphabet() | apply_channel.alphabet()
    )
    return SecuredSystem(
        env,
        protection,
        legit,
        fake,
        apply_channel,
        ref("ATTACKED_SYSTEM"),
        forbidden,
        agreement,
        alphabet,
    )
