"""CAPL sources of the demonstration network (paper Sec. VI).

"In preparation, a simulated CANbus network was implemented in CANoe, with
components (per Figure 2) programmed to exchange simple messages as defined
in our requirements."  These are those components: the VMG and target-ECU
CAPL programs, each both *executable* on the simulated bus
(:class:`repro.capl.CaplNode`) and *translatable* by the model extractor.

``ECU_FLAWED_SOURCE`` seeds the defect the security check must find: the ECU
answers a software-inventory request with an update report, violating the
integrity property SP02.
"""

#: Vehicle Mobile Gateway: drives the update session (requirements R01, R03).
VMG_SOURCE = """\
/*@!Encoding:1252*/
// Vehicle Mobile Gateway (VMG) -- X.1373 software update manager.
// Starts the session by requesting a software inventory (R01), then
// requests application of the update module and collects the result.

variables
{
  message reqSw msgReqSw;    // software inventory request       (R01)
  message reqApp msgReqApp;  // apply update module request      (R03)
  msTimer sessionTimer;
  int inventoryDone = 0;
  int updateResult = 0;
}

on start
{
  write("VMG: starting software update session");
  setTimer(sessionTimer, 10);
}

on timer sessionTimer
{
  if (inventoryDone == 0) {
    output(msgReqSw);
  }
}

on message rptSw
{
  inventoryDone = 1;
  write("VMG: inventory received (sw version %d)", this.byte(0));
  msgReqApp.byte(0) = 1;   // update module id
  output(msgReqApp);
}

on message rptUpd
{
  updateResult = this.byte(0);
  write("VMG: update result code %d", updateResult);
}
"""

#: Target ECU: reports inventory and applies updates (requirements R02, R04).
ECU_SOURCE = """\
/*@!Encoding:1252*/
// Target ECU -- X.1373 update module within core functional services.
// Answers software inventory requests with a software list (R02) and
// applies update modules, reporting the result (R03, R04).

variables
{
  message rptSw msgRptSw;    // software diagnosis result        (R02)
  message rptUpd msgRptUpd;  // update application result        (R04)
  int swVersion = 7;
}

on message reqSw
{
  msgRptSw.byte(0) = swVersion;
  output(msgRptSw);
}

on message reqApp
{
  applyUpdate(this.byte(0));
  msgRptUpd.byte(0) = 0;   // 0 = success
  output(msgRptUpd);
}

void applyUpdate(int moduleId)
{
  // package contents are checked and installed here (R03); the install
  // itself has no bus-visible behaviour
  swVersion = swVersion + 1;
}
"""

#: A seeded integrity flaw: the inventory request may be answered with an
#: update report, so the message exchange no longer progresses as specified.
ECU_FLAWED_SOURCE = """\
/*@!Encoding:1252*/
// Target ECU with a seeded integrity defect: a software inventory request
// may be (mis)handled by the update path, answering rptUpd instead of
// rptSw -- the insecure behaviour the refinement check must expose.

variables
{
  message rptSw msgRptSw;
  message rptUpd msgRptUpd;
  int swVersion = 7;
  int corrupted = 0;
}

on message reqSw
{
  if (corrupted == 0) {
    msgRptSw.byte(0) = swVersion;
    output(msgRptSw);
  } else {
    msgRptUpd.byte(0) = 1;    // wrong response type
    output(msgRptUpd);
  }
}

on message reqApp
{
  corrupted = 1;
  msgRptUpd.byte(0) = 0;
  output(msgRptUpd);
}
"""

#: Extended scope (paper Sec. VIII-A): the VMG also talks to an update
#: server with the X.1373 server-side message types.
VMG_EXTENDED_SOURCE = """\
/*@!Encoding:1252*/
// VMG, extended scope: bridges the OEM update server and the target ECU.

variables
{
  message reqSw msgReqSw;
  message reqApp msgReqApp;
  message update_report msgUpdateReport;
  msTimer pollTimer;
  int sessionState = 0;   // 0 idle, 1 diagnosing, 2 updating
}

on start
{
  setTimer(pollTimer, 100);
}

on timer pollTimer
{
  if (sessionState == 0) {
    output(msgReqSw);
    sessionState = 1;
  }
}

on message update
{
  // server pushed an update package: forward an apply request to the ECU
  msgReqApp.byte(0) = this.byte(0);
  output(msgReqApp);
  sessionState = 2;
}

on message rptSw
{
  // diagnosis done; report upstream happens out of scope here
  sessionState = 0;
}

on message rptUpd
{
  msgUpdateReport.byte(0) = this.byte(0);
  output(msgUpdateReport);
  sessionState = 0;
}
"""

#: A UDS-style SecurityAccess gate in front of the OTA download step
#: (paper Sec. V-B: the update session must not expose protected services
#: before authentication).  Deliberately payload-free -- the protocol
#: *order* is the whole state machine: a seed must be requested before a
#: key is accepted, and downloads are served only once unlocked.  The
#: golden learn corpus learns this machine black-box (bounded teacher:
#: the extractor over-approximates the state-dependent branches).
ECU_SECURITY_ACCESS_SOURCE = """\
/*@!Encoding:1252*/
// SecurityAccess-gated download handler: seed -> key -> unlock -> data.

variables
{
  message rspSeed msgRspSeed;   // seed response
  message rspOk msgRspOk;       // key accepted, session unlocked
  message rspErr msgRspErr;     // rejected (no seed / still locked)
  message rspData msgRspData;   // protected download payload
  int seedGiven = 0;
  int unlocked = 0;
}

on message reqSeed
{
  seedGiven = 1;
  output(msgRspSeed);
}

on message sendKey
{
  if (seedGiven == 1) {
    unlocked = 1;
    output(msgRspOk);
  } else {
    output(msgRspErr);
  }
}

on message reqDl
{
  if (unlocked == 1) {
    output(msgRspData);
  } else {
    output(msgRspErr);
  }
}
"""
