"""The OTA software-update case study (paper Sec. V, ITU-T X.1373).

Message set (Table II), requirements (Table III), hand-written CSP models
(SP02 and friends), runnable/translatable CAPL sources for the Fig. 2 demo
network, and the end-to-end Fig. 1 workflow runner.
"""

from .messages import (
    BASIC_MESSAGES,
    CAN_MESSAGE_SPECS,
    EXTENDED_MESSAGES,
    SERVER_MESSAGES,
    TABLE_II,
    MessageType,
    basic_alphabet,
    basic_channels,
    extended_channels,
    render_table_ii,
    table_ii_rows,
)
from .capl_sources import (
    ECU_FLAWED_SOURCE,
    ECU_SOURCE,
    VMG_EXTENDED_SOURCE,
    VMG_SOURCE,
)
from .models import (
    BasicSystem,
    NONCES,
    SHARED_KEY,
    SecuredSystem,
    SessionSystem,
    UPDATE_MODULES,
    build_paper_system,
    build_secured_system,
    build_session_system,
)
from .requirements import (
    Requirement,
    TABLE_III,
    check_all,
    check_requirement,
    injective_agreement_check,
    render_table_iii,
    requirement,
)
from .extended import ExtendedSystem, build_extended_system
from .replay import (
    ReplayOutcome,
    find_witness,
    replay_insecure_trace,
    split_counterexample,
)
from .scenario import (
    WorkflowReport,
    extract_system,
    run_workflow,
    simulate_network,
)

__all__ = [
    "BASIC_MESSAGES",
    "BasicSystem",
    "CAN_MESSAGE_SPECS",
    "ECU_FLAWED_SOURCE",
    "ECU_SOURCE",
    "EXTENDED_MESSAGES",
    "ExtendedSystem",
    "MessageType",
    "NONCES",
    "ReplayOutcome",
    "Requirement",
    "SERVER_MESSAGES",
    "SHARED_KEY",
    "SecuredSystem",
    "SessionSystem",
    "TABLE_II",
    "TABLE_III",
    "UPDATE_MODULES",
    "VMG_EXTENDED_SOURCE",
    "VMG_SOURCE",
    "WorkflowReport",
    "basic_alphabet",
    "basic_channels",
    "build_extended_system",
    "build_paper_system",
    "build_secured_system",
    "build_session_system",
    "check_all",
    "check_requirement",
    "extended_channels",
    "find_witness",
    "extract_system",
    "injective_agreement_check",
    "render_table_ii",
    "replay_insecure_trace",
    "render_table_iii",
    "requirement",
    "run_workflow",
    "simulate_network",
    "split_counterexample",
    "table_ii_rows",
]
