"""Replaying checker counterexamples on the simulated bus.

The paper's workflow feeds counterexamples "back to software designers to
review and rectify faults".  This module closes that loop mechanically: it
takes an insecure trace from the refinement checker (events on the VMG's
``send`` channel and the ECU's ``rec`` channel) and drives the *actual* CAPL
program on the simulated CAN bus with the same stimuli, reporting whether
the wire behaviour confirms the finding.

Because extracted models over-approximate data state (conditionals become
choices), a counterexample may not replay directly from the initial state;
:func:`find_witness` then searches for a short setup sequence of requests
that steers the program into the state where the insecure response really
occurs -- distinguishing a *confirmed* defect from an abstraction artefact.
"""

from __future__ import annotations

from itertools import chain, permutations
from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple

from ..canbus import CanBus, CanFrame, Scheduler, ScriptedNode, TraceLog
from ..capl import CaplNode
from ..csp.events import Event
from .messages import CAN_MESSAGE_SPECS

#: microseconds between successive injected stimuli (enough for replies)
STIMULUS_SPACING_US = 20_000


class ReplayOutcome(NamedTuple):
    """The verdict of replaying a counterexample on the wire."""

    confirmed: bool
    #: the request names injected before the counterexample's stimuli
    setup: Tuple[str, ...]
    #: what the ECU actually transmitted, in order
    observed_responses: Tuple[str, ...]
    #: the responses the counterexample predicted
    expected_responses: Tuple[str, ...]
    log: TraceLog

    def describe(self) -> str:
        if self.confirmed:
            prefix = (
                "confirmed on the bus"
                if not self.setup
                else "confirmed on the bus after setup {}".format(list(self.setup))
            )
            return "{}: observed {}".format(prefix, list(self.observed_responses))
        return (
            "not reproduced from this state (possible abstraction artefact): "
            "expected {}, observed {}".format(
                list(self.expected_responses), list(self.observed_responses)
            )
        )


def split_counterexample(trace: Sequence[Event]) -> Tuple[List[str], List[str]]:
    """Separate a violating trace into VMG stimuli and expected ECU responses.

    Uses the paper's channel convention: ``send.X`` is VMG->ECU (a stimulus
    we must inject), ``rec.X`` is ECU->VMG (a response we expect to observe).
    Timer events and other channels are ignored -- they are node-internal.
    """
    stimuli: List[str] = []
    responses: List[str] = []
    for event in trace:
        if event.channel == "send" and event.fields:
            stimuli.append(str(event.fields[0]))
        elif event.channel == "rec" and event.fields:
            responses.append(str(event.fields[0]))
    return stimuli, responses


def _frame_for(message_name: str) -> CanFrame:
    spec = CAN_MESSAGE_SPECS.get(message_name)
    if spec is None:
        raise ValueError(
            "no CAN identity for message {!r}; known: {}".format(
                message_name, sorted(CAN_MESSAGE_SPECS)
            )
        )
    return CanFrame(spec.can_id, [0] * spec.dlc, name=message_name)


def _drive(ecu_source: str, requests: Sequence[str]) -> TraceLog:
    """Inject the requests in order against a fresh ECU; return the bus log."""
    scheduler = Scheduler()
    bus = CanBus(scheduler)
    CaplNode("ECU", bus, ecu_source, CAN_MESSAGE_SPECS)
    schedule = [
        ((index + 1) * STIMULUS_SPACING_US, _frame_for(name))
        for index, name in enumerate(requests)
    ]
    ScriptedNode("VMG_REPLAY", bus, schedule)
    bus.simulate(until=(len(requests) + 2) * STIMULUS_SPACING_US)
    return bus.log


def _ecu_responses(log: TraceLog) -> List[str]:
    return [
        entry.frame.name or "0x{:X}".format(entry.frame.can_id)
        for entry in log
        if entry.sender == "ECU"
    ]


def replay_insecure_trace(
    trace: Sequence[Event],
    ecu_source: str,
    setup: Sequence[str] = (),
) -> ReplayOutcome:
    """Drive the ECU with the counterexample's stimuli and compare responses.

    *setup* requests are injected first (state preparation); the
    counterexample is confirmed if, after the setup's own responses, the
    observed response sequence matches the expected one.
    """
    stimuli, expected = split_counterexample(trace)
    log = _drive(ecu_source, list(setup) + stimuli)
    observed = _ecu_responses(log)
    # responses caused by the setup requests come first; compare the tail
    tail = observed[len(observed) - len(expected):] if expected else []
    confirmed = bool(expected) and tail == expected
    return ReplayOutcome(
        confirmed=confirmed,
        setup=tuple(setup),
        observed_responses=tuple(observed),
        expected_responses=tuple(expected),
        log=log,
    )


def find_witness(
    trace: Sequence[Event],
    ecu_source: str,
    setup_candidates: Iterable[str] = ("reqSw", "reqApp"),
    max_setup_length: int = 2,
) -> ReplayOutcome:
    """Search for a setup sequence under which the counterexample replays.

    Tries the empty setup first, then every ordered selection of candidate
    requests up to *max_setup_length*.  Returns the first confirming
    outcome, or the direct (unconfirmed) outcome if none replays.
    """
    direct = replay_insecure_trace(trace, ecu_source)
    if direct.confirmed:
        return direct
    candidates = list(setup_candidates)
    for length in range(1, max_setup_length + 1):
        for setup in permutations(candidates, length):
            outcome = replay_insecure_trace(trace, ecu_source, setup)
            if outcome.confirmed:
                return outcome
    # also try repeated single candidates (permutations exclude repeats)
    for candidate in candidates:
        for length in range(2, max_setup_length + 1):
            outcome = replay_insecure_trace(trace, ecu_source, (candidate,) * length)
            if outcome.confirmed:
                return outcome
    return direct
