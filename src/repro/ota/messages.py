"""The X.1373 message set of the case study (paper Table II).

The demonstration scope (paper Fig. 2) covers the VMG and target ECU with
four message types; the standard's full set -- which the paper lists as
future work -- adds the update-server exchanges (``diagnose``,
``update_check``, ``update``, ``update_report``), implemented here as the
extended scope.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from ..capl.interpreter import MessageSpec
from ..csp.events import Alphabet, Channel


class MessageType(NamedTuple):
    """One row of the paper's Table II."""

    type_group: str
    message_id: str
    sender: str
    receiver: str
    description: str


#: Paper Table II, verbatim.
TABLE_II: Tuple[MessageType, ...] = (
    MessageType("Diagnose", "reqSw", "VMG", "ECU", "Request diagnose software status"),
    MessageType("Diagnose", "rptSw", "ECU", "VMG", "Result of software diagnosis"),
    MessageType("Update", "reqApp", "VMG", "ECU", "Request apply update module"),
    MessageType("Update", "rptUpd", "ECU", "VMG", "Result of applying update module"),
)

#: The basic demonstration message universe (Table II ids).
BASIC_MESSAGES: Tuple[str, ...] = ("reqSw", "rptSw", "reqApp", "rptUpd")

#: X.1373 server-side message types (paper Sec. V-A1 / VIII-A future work).
SERVER_MESSAGES: Tuple[str, ...] = (
    "diagnose",
    "diagnoseRpt",
    "update_check",
    "update",
    "update_report",
)

#: The extended universe: server <-> VMG <-> ECU.
EXTENDED_MESSAGES: Tuple[str, ...] = BASIC_MESSAGES + SERVER_MESSAGES


def basic_channels() -> Tuple[Channel, Channel]:
    """The paper's ``channel send, rec : msgs`` pair (Sec. V-B)."""
    send = Channel("send", BASIC_MESSAGES)
    rec = Channel("rec", BASIC_MESSAGES)
    return send, rec


def extended_channels() -> Dict[str, Channel]:
    """Channels of the extended scope: server link plus the vehicle link."""
    return {
        "srv": Channel("srv", EXTENDED_MESSAGES),  # update server <-> VMG
        "send": Channel("send", EXTENDED_MESSAGES),  # VMG -> ECU
        "rec": Channel("rec", EXTENDED_MESSAGES),  # ECU -> VMG
    }


def basic_alphabet() -> Alphabet:
    send, rec = basic_channels()
    return Alphabet.from_channels(send, rec)


#: CAN wire identities for the simulated CANoe network (Fig. 2 demo system).
CAN_MESSAGE_SPECS: Dict[str, MessageSpec] = {
    "reqSw": MessageSpec(0x101, 1),
    "rptSw": MessageSpec(0x102, 2),
    "reqApp": MessageSpec(0x103, 4),
    "rptUpd": MessageSpec(0x104, 1),
}


def table_ii_rows() -> List[Tuple[str, str, str, str, str]]:
    """Table II as printable rows (benchmark T2 regenerates this table)."""
    return [tuple(row) for row in TABLE_II]


def render_table_ii() -> str:
    header = "{:<10} {:<8} {:<6} {:<6} {}".format("Type", "Id", "From", "To", "Description")
    lines = [header, "-" * len(header)]
    for row in TABLE_II:
        lines.append(
            "{:<10} {:<8} {:<6} {:<6} {}".format(
                row.type_group, row.message_id, row.sender, row.receiver, row.description
            )
        )
    return "\n".join(lines)
