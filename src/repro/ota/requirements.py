"""Requirements R01-R05 of the secure update system (paper Table III).

Each requirement is stated verbatim and given a formal reading: a CSP
specification checked against the case-study system by the refinement
engine.  ``check_requirement`` discharges one; ``check_all`` reproduces the
whole table with verdicts (benchmark T3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Tuple

from ..csp.events import Alphabet
from ..csp.process import Environment, Hiding, Prefix, Process, ProcessRef, external_choice
from ..engine import CompilationCache
from ..fdr.refine import CheckResult
from ..security.properties import (
    alternates,
    never_occurs,
    precedes,
    request_response,
    run_process,
)
from .models import SecuredSystem, build_secured_system, build_session_system


class Requirement(NamedTuple):
    """One row of the paper's Table III."""

    req_id: str
    text: str
    formal_reading: str


TABLE_III: Tuple[Requirement, ...] = (
    Requirement(
        "R01",
        "At start of update process, the VMG shall send a software inventory "
        "request message to all ECUs.",
        "the first bus event of the session is send.reqSw",
    ),
    Requirement(
        "R02",
        "On receipt of software inventory request, the ECU shall send a "
        "software list response message.",
        "projected onto {send.reqSw, rec.rptSw} the system refines "
        "SP02 = send.reqSw -> rec.rptSw -> SP02",
    ),
    Requirement(
        "R03",
        "On receipt of apply update message from the VMG, the ECU shall check "
        "the package contents and apply the update.",
        "an update result (rec.rptUpd) is only ever preceded by an apply "
        "request (send.reqApp)",
    ),
    Requirement(
        "R04",
        "On completion of update module installation, the ECU shall send "
        "software update result message to the VMG.",
        "projected onto {send.reqApp, rec.rptUpd} the two events strictly "
        "alternate, starting with the request",
    ),
    Requirement(
        "R05",
        "It is assumed the system uses shared keys (see below).",
        "with shared-key MACs the Dolev-Yao intruder cannot cause the ECU to "
        "apply an unauthorised update module",
    ),
)


def requirement(req_id: str) -> Requirement:
    for row in TABLE_III:
        if row.req_id == req_id:
            return row
    raise KeyError("unknown requirement {!r}".format(req_id))


#: Compilation cache shared by every requirement check.  Keys are structural,
#: so the cache stays valid even though each check rebuilds its session
#: system (and environment) from scratch -- repeated ``check_all`` runs (the
#: T3 benchmark) compile each distinct spec/system once.
_CACHE = CompilationCache()


def _discharge(
    spec: Process,
    impl: Process,
    env: Environment,
    name: str,
    passes: str = "default",
    obs=None,
    cache: CompilationCache = None,
) -> CheckResult:
    # composed session systems (ECUs, the VMG, an intruder where present)
    # run compress-before-compose; the ablation benchmark calls this with
    # passes="none" to measure the uncompressed product
    from ..api import check_refinement  # deferred: repro.api builds on us

    return check_refinement(
        spec,
        impl,
        "T",
        env=env,
        name=name,
        passes=passes,
        cache=cache if cache is not None else _CACHE,
        obs=obs,
    )


#: one builder per Table III row: the specification, the system under
#: check, their environment, and the check label -- everything
#: :func:`check_requirement`'s single discharge path needs
def _build_r01() -> Tuple[Process, Process, Environment, str]:
    session = build_session_system()
    env = session.env
    everything = run_process(session.sync, env, "R01_RUN")
    env.bind("R01_SPEC", Prefix(session.send("reqSw"), everything))
    return (
        ProcessRef("R01_SPEC"),
        session.system,
        env,
        "R01: session starts with send.reqSw",
    )


def _build_r02() -> Tuple[Process, Process, Environment, str]:
    session = build_session_system()
    env = session.env
    keep = Alphabet.of(session.send("reqSw"), session.rec("rptSw"))
    projected = Hiding(session.system, session.sync - keep)
    spec = request_response(
        session.send("reqSw"), session.rec("rptSw"), env, "R02_SPEC"
    )
    return spec, projected, env, "R02: every reqSw answered by rptSw"


def _build_r03() -> Tuple[Process, Process, Environment, str]:
    session = build_session_system()
    env = session.env
    spec = precedes(
        session.send("reqApp"), session.rec("rptUpd"), session.sync, env, "R03_SPEC"
    )
    return spec, session.system, env, "R03: rptUpd only after reqApp"


def _build_r04() -> Tuple[Process, Process, Environment, str]:
    session = build_session_system()
    env = session.env
    keep = Alphabet.of(session.send("reqApp"), session.rec("rptUpd"))
    projected = Hiding(session.system, session.sync - keep)
    spec = alternates(
        session.send("reqApp"), session.rec("rptUpd"), keep, env, "R04_SPEC"
    )
    return (
        spec,
        projected,
        env,
        "R04: update result completes each apply request",
    )


def _build_r05() -> Tuple[Process, Process, Environment, str]:
    secured = build_secured_system("mac")
    spec = never_occurs(
        secured.forbidden_applies, secured.alphabet, secured.env, "R05_SPEC"
    )
    return (
        spec,
        secured.attacked_system,
        secured.env,
        "R05: intruder cannot cause apply of unauthorised module (MAC)",
    )


_BUILDERS: Dict[str, Callable[[], Tuple[Process, Process, Environment, str]]] = {
    "R01": _build_r01,
    "R02": _build_r02,
    "R03": _build_r03,
    "R04": _build_r04,
    "R05": _build_r05,
}


def check_requirement(
    req_id: str,
    passes: str = "default",
    obs=None,
    cache: CompilationCache = None,
) -> CheckResult:
    """Discharge one Table III requirement through the shared facade path.

    Every requirement is the same shape -- build (spec, system, env, label),
    then trace refinement through :func:`repro.api.check_refinement` with
    the module's shared cache -- so they all run through this one function.
    *cache* overrides that shared cache; batch workers pass one backed by
    the on-disk store so compiled session systems survive across processes.
    """
    try:
        builder = _BUILDERS[req_id]
    except KeyError:
        raise KeyError("unknown requirement {!r}".format(req_id)) from None
    spec, impl, env, name = builder()
    return _discharge(spec, impl, env, name, passes=passes, obs=obs, cache=cache)


def check_r01() -> CheckResult:
    """First session event is the inventory request."""
    return check_requirement("R01")


def check_r02() -> CheckResult:
    """SP02 on the inventory exchange (the paper's worked property)."""
    return check_requirement("R02")


def check_r03() -> CheckResult:
    """No update result without a prior apply request."""
    return check_requirement("R03")


def check_r04() -> CheckResult:
    """Apply request and update result strictly alternate."""
    return check_requirement("R04")


def check_r05() -> CheckResult:
    """Shared-key MACs stop unauthorised-update injection."""
    return check_requirement("R05")


def check_all() -> List[Tuple[Requirement, CheckResult]]:
    """Discharge every Table III requirement; the T3 benchmark's payload."""
    return [(row, check_requirement(row.req_id)) for row in TABLE_III]


def injective_agreement_check(secured: SecuredSystem) -> CheckResult:
    """Each legitimate update send authorises at most one apply.

    Fails under MAC-only protection (replay attack) and holds with nonces --
    the freshness argument behind X.1373's message counters.
    """
    env = secured.env
    sends = [send_event for send_event, _apply in secured.agreement_pairs]
    if not sends:
        raise ValueError("secured system has no legitimate sends")
    apply_event = secured.agreement_pairs[0][1]
    keep = Alphabet(sends) | Alphabet.of(apply_event)
    projected = Hiding(secured.attacked_system, secured.alphabet - keep)
    limit = len(sends)

    def state(count: int) -> str:
        return "AGREEMENT_{}".format(count)

    for count in range(limit + 1):
        branches = []
        if count < limit:
            branches.extend(
                Prefix(send_event, ProcessRef(state(count + 1)))
                for send_event in sends
            )
        if count > 0:
            branches.append(Prefix(apply_event, ProcessRef(state(count - 1))))
        env.bind(state(count), external_choice(*branches))
    return _discharge(
        ProcessRef(state(0)),
        projected,
        env,
        "injective agreement [{}]".format(secured.protection),
    )


def render_table_iii() -> str:
    """Table III as text (the T3 benchmark prints this with verdicts)."""
    lines = ["{:<5} {}".format("ID", "Requirement Text")]
    lines.append("-" * 76)
    for row in TABLE_III:
        lines.append("{:<5} {}".format(row.req_id, row.text))
    return "\n".join(lines)
