"""Extended X.1373 scope: Update Server <-> VMG <-> target ECU.

The paper's demonstration deliberately excludes the update server
(Sec. V-A1) and names its message types -- ``diagnose``, ``update_check``,
``update``, ``update_report`` -- as future work (Sec. VIII-A).  This module
implements that extension as CSP models:

* the **Update Server** pushes an update after a successful check,
* the **VMG** bridges: it diagnoses the ECU on the server's behalf, relays
  the update as an apply request, and reports the outcome upstream,
* the **target ECU** is the Sec. V scope unchanged.

The end-to-end specification ``E2E_SPEC`` captures the full distribution
chain; its refinement by the three-component composition is the extended
analogue of SP02.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from ..csp.events import Alphabet, Channel
from ..csp.process import (
    Environment,
    GenParallel,
    Prefix,
    ProcessRef,
    external_choice,
    prefix,
    ref,
)
from .messages import EXTENDED_MESSAGES


class ExtendedSystem(NamedTuple):
    """The three-component distribution chain, ready for checking."""

    env: Environment
    srv: Channel  # update server <-> VMG
    send: Channel  # VMG -> ECU
    rec: Channel  # ECU -> VMG
    spec: ProcessRef
    server: ProcessRef
    vmg: ProcessRef
    ecu: ProcessRef
    system: ProcessRef


def build_extended_system(env: Optional[Environment] = None) -> ExtendedSystem:
    """Build the server-to-ECU update chain of Sec. VIII-A.

    Message flow (one full distribution round):

        SERVER --srv.diagnose-->      VMG
        VMG    --send.reqSw-->        ECU       (diagnose downstream)
        ECU    --rec.rptSw-->         VMG
        VMG    --srv.diagnoseRpt-->   SERVER
        SERVER --srv.update_check--> VMG        (is this vehicle eligible?)
        VMG    --srv.update_check--> SERVER     (ack; kept symmetric)
        SERVER --srv.update-->        VMG       (push the package)
        VMG    --send.reqApp-->       ECU
        ECU    --rec.rptUpd-->        VMG
        VMG    --srv.update_report--> SERVER
    """
    env = env or Environment()
    srv = Channel("srv", EXTENDED_MESSAGES)
    send = Channel("send", EXTENDED_MESSAGES)
    rec = Channel("rec", EXTENDED_MESSAGES)

    # -- the update server drives the session
    env.bind(
        "SERVER",
        prefix(
            srv("diagnose"),
            prefix(
                srv("diagnoseRpt"),
                prefix(
                    srv("update_check"),
                    prefix(
                        srv("update"),
                        prefix(srv("update_report"), ref("SERVER")),
                    ),
                ),
            ),
        ),
    )

    # -- the VMG bridges server-side and vehicle-side protocols
    env.bind(
        "XVMG",
        prefix(
            srv("diagnose"),
            prefix(
                send("reqSw"),
                prefix(
                    rec("rptSw"),
                    prefix(
                        srv("diagnoseRpt"),
                        prefix(
                            srv("update_check"),
                            prefix(
                                srv("update"),
                                prefix(
                                    send("reqApp"),
                                    prefix(
                                        rec("rptUpd"),
                                        prefix(srv("update_report"), ref("XVMG")),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )

    # -- the target ECU: the basic Sec. V behaviour, unchanged
    env.bind(
        "XECU",
        external_choice(
            prefix(send("reqSw"), prefix(rec("rptSw"), ref("XECU"))),
            prefix(send("reqApp"), prefix(rec("rptUpd"), ref("XECU"))),
        ),
    )

    vehicle_sync = Alphabet.from_channels(send, rec)
    server_sync = srv.alphabet()
    env.bind(
        "XSYSTEM",
        GenParallel(
            ref("SERVER"),
            GenParallel(ref("XVMG"), ref("XECU"), vehicle_sync),
            server_sync,
        ),
    )

    # -- the end-to-end specification: the full round in order
    env.bind(
        "E2E_SPEC",
        prefix(
            srv("diagnose"),
            prefix(
                send("reqSw"),
                prefix(
                    rec("rptSw"),
                    prefix(
                        srv("diagnoseRpt"),
                        prefix(
                            srv("update_check"),
                            prefix(
                                srv("update"),
                                prefix(
                                    send("reqApp"),
                                    prefix(
                                        rec("rptUpd"),
                                        prefix(
                                            srv("update_report"), ref("E2E_SPEC")
                                        ),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )

    return ExtendedSystem(
        env,
        srv,
        send,
        rec,
        ref("E2E_SPEC"),
        ref("SERVER"),
        ref("XVMG"),
        ref("XECU"),
        ref("XSYSTEM"),
    )
