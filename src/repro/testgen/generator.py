"""Test-sequence generation from CSP models.

The paper's aim is "to enable systematic security testing of ECU
components" (abstract, Sec. I).  Model checking is one half; the other is
deriving *executable test suites* from the same formal models.  This module
implements the classic automata-based generators over the checker's
normalised (deterministic, tau-free) view of a specification:

* :func:`state_cover`      -- a shortest trace reaching every state,
* :func:`transition_cover` -- a test per transition (its source's access
  trace extended by the transition), the W-method's core ingredient,
* :func:`bounded_traces`   -- exhaustive traces to a depth (for small specs).

Each test is a trace of the specification; running it against an
implementation and checking the observed behaviour is conformance testing
(:mod:`repro.testgen.conformance`).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..csp.events import Event
from ..csp.lts import LTS
from ..csp.process import Environment, Process
from ..fdr.normalise import NodeId, NormalisedSpec, normalise

Trace = Tuple[Event, ...]


def _normalised(model, env: Optional[Environment]) -> NormalisedSpec:
    if isinstance(model, NormalisedSpec):
        return model
    if isinstance(model, LTS):
        return normalise(model)
    if isinstance(model, Process):
        from ..engine.pipeline import VerificationPipeline, shared_cache

        pipeline = VerificationPipeline(
            env or Environment(), cache=shared_cache()
        )
        return pipeline.normalised(model)
    raise TypeError("expected a Process, LTS or NormalisedSpec")


def state_cover(model, env: Optional[Environment] = None) -> Dict[NodeId, Trace]:
    """A shortest visible trace reaching each state of the normalised model."""
    spec = _normalised(model, env)
    access: Dict[NodeId, Trace] = {spec.initial: ()}
    work: deque = deque([spec.initial])
    while work:
        node = work.popleft()
        for event, target in sorted(spec.afters[node].items(), key=lambda kv: str(kv[0])):
            if target not in access and not event.is_tick():
                access[target] = access[node] + (event,)
                work.append(target)
            elif target not in access:
                access[target] = access[node] + (event,)
    return access


def transition_cover(model, env: Optional[Environment] = None) -> List[Trace]:
    """One test per transition of the normalised model.

    Every transition ``node --e--> target`` yields the test
    ``access(node) + <e>``; tests that are prefixes of other tests are
    dropped (the longer test exercises them anyway).  The result is sorted
    longest-first for deterministic output.
    """
    spec = _normalised(model, env)
    access = state_cover(spec)
    tests = set()
    for node, trace in access.items():
        for event in spec.afters[node]:
            tests.add(trace + (event,))
    # drop proper prefixes of other tests
    kept: List[Trace] = []
    for test in sorted(tests, key=len, reverse=True):
        if not any(existing[: len(test)] == test for existing in kept):
            kept.append(test)
    kept.sort(key=lambda t: (len(t), tuple(str(e) for e in t)))
    return kept


def bounded_traces(
    model, depth: int, env: Optional[Environment] = None
) -> List[Trace]:
    """Every trace of the model up to *depth* events (exhaustive testing)."""
    spec = _normalised(model, env)
    results: List[Trace] = []
    frontier: List[Tuple[Trace, NodeId]] = [((), spec.initial)]
    for _ in range(depth):
        next_frontier: List[Tuple[Trace, NodeId]] = []
        for trace, node in frontier:
            for event, target in sorted(
                spec.afters[node].items(), key=lambda kv: str(kv[0])
            ):
                extended = trace + (event,)
                results.append(extended)
                if not event.is_tick():
                    next_frontier.append((extended, target))
        frontier = next_frontier
    return results


def coverage_of(
    tests: List[Trace], model, env: Optional[Environment] = None
) -> Tuple[int, int]:
    """(transitions exercised, transitions total) for a test suite."""
    spec = _normalised(model, env)
    total = sum(len(spec.afters[node]) for node in range(spec.node_count))
    covered = set()
    for test in tests:
        node = spec.initial
        for event in test:
            target = spec.after(node, event)
            if target is None:
                break
            covered.add((node, event))
            node = target
    return len(covered), total
