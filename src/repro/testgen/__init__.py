"""Model-based test generation and conformance execution.

The complement of refinement checking in the paper's 'systematic security
testing' programme: derive transition-covering test suites from CSP
specification models and execute them against CAPL implementations on the
simulated bus.
"""

from .generator import bounded_traces, coverage_of, state_cover, transition_cover
from .conformance import ConformanceReport, TestVerdict, run_suite, run_test

__all__ = [
    "ConformanceReport",
    "TestVerdict",
    "bounded_traces",
    "coverage_of",
    "run_suite",
    "run_test",
    "state_cover",
    "transition_cover",
]
