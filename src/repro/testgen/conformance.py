"""Conformance testing: run model-derived tests against CAPL implementations.

Each test is a specification trace over the case-study channel convention
(``send.X`` = stimulus to inject, ``rec.X`` = response the ECU should emit).
The harness drives a fresh ECU instance on the simulated bus with the test's
stimuli, records what actually happens, and passes the test iff the observed
exchange is itself a trace of the specification.

A faithful implementation passes every generated test; an implementation
with a behavioural defect fails the test whose stimuli steer it into the
defective state -- turning the checker's specification into an executable
regression suite, the 'systematic security testing' of the paper's abstract.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from ..canbus import CanBus, CanFrame, Scheduler
from ..capl import CaplNode
from ..capl.interpreter import MessageSpec
from ..csp.events import Event
from ..csp.lts import LTS
from ..csp.process import Environment, Process
from ..csp.traces import format_trace
from ..engine.pipeline import VerificationPipeline, shared_cache

Trace = Tuple[Event, ...]


class TestVerdict(NamedTuple):
    """Outcome of one conformance test."""

    test: Trace
    observed: Trace
    passed: bool

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return "{}  test={}  observed={}".format(
            verdict, format_trace(self.test), format_trace(self.observed)
        )


class ConformanceReport(NamedTuple):
    """A whole suite's outcome."""

    verdicts: Tuple[TestVerdict, ...]

    @property
    def passed(self) -> bool:
        return all(verdict.passed for verdict in self.verdicts)

    @property
    def failures(self) -> Tuple[TestVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.passed)

    def summary(self) -> str:
        passed = sum(1 for v in self.verdicts if v.passed)
        lines = [
            "conformance: {}/{} tests passed".format(passed, len(self.verdicts))
        ]
        for verdict in self.failures:
            lines.append("  " + verdict.describe())
        return "\n".join(lines)


def _stimuli_of(test: Trace, in_channel: str) -> List[str]:
    return [str(e.fields[0]) for e in test if e.channel == in_channel and e.fields]


def run_test(
    ecu_source: str,
    test: Trace,
    message_specs: Mapping[str, MessageSpec],
    spec_lts: LTS,
    in_channel: str = "send",
    out_channel: str = "rec",
) -> TestVerdict:
    """Execute one test against a fresh ECU instance.

    Stimuli are injected one at a time (each followed by a scheduler flush,
    so responses interleave deterministically); the observed exchange is
    rebuilt as a trace and checked for membership in the specification.
    """
    scheduler = Scheduler()
    bus = CanBus(scheduler)
    node = CaplNode("ECU", bus, ecu_source, dict(message_specs))
    observed: List[Event] = []
    for request in _stimuli_of(test, in_channel):
        spec = message_specs[request]
        before = len(bus.log)
        node.deliver(CanFrame(spec.can_id, [0] * spec.dlc, name=request))
        scheduler.run()
        observed.append(Event(in_channel, (request,)))
        for entry in bus.log.entries[before:]:
            observed.append(Event(out_channel, (entry.frame.name,)))
    passed = spec_lts.walk(observed) is not None
    return TestVerdict(test, tuple(observed), passed)


def run_suite(
    ecu_source: str,
    tests: Sequence[Trace],
    specification: Process,
    message_specs: Mapping[str, MessageSpec],
    env: Optional[Environment] = None,
    in_channel: str = "send",
    out_channel: str = "rec",
    max_states: int = 200_000,
) -> ConformanceReport:
    """Run a whole generated suite against a CAPL implementation."""
    # the process-wide cache makes repeated suite runs against the same
    # specification (e.g. a mutation sweep) compile the spec exactly once
    pipeline = VerificationPipeline(
        env or Environment(), cache=shared_cache(), max_states=max_states
    )
    # composed specifications go through the compilation plan: trace
    # membership (walk) is invariant under the trace-preserving passes, and
    # the harness then walks the compressed product instead of the full one
    prepared = pipeline.plan.prepare(specification, "T")
    spec_lts = pipeline.compile(prepared.term)
    verdicts = [
        run_test(
            ecu_source, test, message_specs, spec_lts, in_channel, out_channel
        )
        for test in tests
    ]
    return ConformanceReport(tuple(verdicts))
