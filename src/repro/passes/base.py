"""The semantic pass framework: LTS -> LTS rewrites with provenance.

FDR's scalability story (paper Sec. VII-A) is *compress before compose*:
apply compression functions (``sbisim``, ``normal``, diamond ...) to
component state machines before building their product.  This module is the
framework those compressions plug into:

* :class:`LtsPass` -- one rewrite.  A pass declares the strongest semantic
  model it preserves (``"T"`` traces, ``"F"`` stable failures, ``"FD"``
  failures-divergences); the compilation plan only applies passes safe for
  the check being discharged.
* :class:`StateProvenance` -- the map from each output state to the input
  state it represents.  Provenance composes across a pass sequence, so a
  counterexample found on a compressed automaton maps all the way back to
  the states of the automaton the user compiled.
* :class:`PassStats` -- states/transitions before and after plus wall time,
  surfaced in :class:`~repro.fdr.refine.CheckResult` and the ablation
  benchmark JSON.

Every pass output is renumbered by BFS order from the root (see
:func:`bfs_renumber`), so pass results -- and everything keyed on them,
like cached verdicts and ``NormalisedSpec.as_lts()`` -- are byte-stable
across runs and interpreter hash seeds.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..csp.events import TICK_ID
from ..csp.lts import LTS, StateId

#: semantic models, weakest to strongest; a pass preserving "FD" preserves
#: everything below it
_MODEL_RANK = {"T": 0, "F": 1, "FD": 2}


def terminated_states(lts: LTS) -> FrozenSet[StateId]:
    """States that are the target of a tick -- the successfully-terminated
    states.

    They have the same (empty) move set as a deadlocked state, but the
    failures model tells them apart: termination refuses every ordinary
    event yet is *not* a deadlock.  Quotient passes must never conflate
    the two, so they seed their partitions (or guard their merges) with
    this set.
    """
    targets = set()
    for state in range(lts.state_count):
        events, edge_targets, lo, hi = lts.successors_span(state)
        for i in range(lo, hi):
            if events[i] == TICK_ID:
                targets.add(edge_targets[i])
    return frozenset(targets)


class PassStats(NamedTuple):
    """One pass application: size before/after and wall time."""

    name: str
    states_before: int
    transitions_before: int
    states_after: int
    transitions_after: int
    wall_ms: float

    @property
    def states_removed(self) -> int:
        return self.states_before - self.states_after

    def as_dict(self) -> Dict[str, object]:
        return {
            "pass": self.name,
            "states_before": self.states_before,
            "transitions_before": self.transitions_before,
            "states_after": self.states_after,
            "transitions_after": self.transitions_after,
            "wall_ms": round(self.wall_ms, 3),
        }

    def summary(self) -> str:
        return "{}: {} -> {} states, {} -> {} transitions ({:.2f} ms)".format(
            self.name,
            self.states_before,
            self.states_after,
            self.transitions_before,
            self.transitions_after,
            self.wall_ms,
        )


class StateProvenance:
    """Maps each state of a pass output to the input state it represents.

    For a quotient pass the representative is the BFS-first member of the
    state's equivalence class.  Provenance composes: applying pass B after
    pass A yields ``A.provenance.then(B.provenance)``, mapping B's output
    states directly to A's input states.
    """

    __slots__ = ("new_to_old",)

    def __init__(self, new_to_old: Sequence[StateId]) -> None:
        self.new_to_old: Tuple[StateId, ...] = tuple(new_to_old)

    @classmethod
    def identity(cls, state_count: int) -> "StateProvenance":
        return cls(range(state_count))

    def original_of(self, state: StateId) -> StateId:
        return self.new_to_old[state]

    def then(self, later: "StateProvenance") -> "StateProvenance":
        """The composition: *later*'s output states mapped through self."""
        return StateProvenance(
            self.new_to_old[mid] for mid in later.new_to_old
        )

    def __len__(self) -> int:
        return len(self.new_to_old)

    def __repr__(self) -> str:
        return "StateProvenance({} states)".format(len(self.new_to_old))


class PassResult(NamedTuple):
    """One applied pass: the rewritten LTS, its provenance, its stats."""

    lts: LTS
    provenance: StateProvenance
    stats: PassStats


class LtsPass:
    """Base class for semantic passes.

    Subclasses implement :meth:`rewrite`, returning the new LTS plus the
    new-to-old state map; the framework adds timing, stats, and provenance
    composition.  ``preserves`` names the strongest semantic model the
    rewrite is an equivalence for -- the plan refuses to apply a trace-only
    pass (``normal``) to a failures or failures-divergences check.
    """

    name: str = "pass"
    preserves: str = "FD"

    def rewrite(self, lts: LTS) -> Tuple[LTS, Tuple[StateId, ...]]:
        raise NotImplementedError

    def safe_for(self, model: str) -> bool:
        return _MODEL_RANK[self.preserves] >= _MODEL_RANK[model]

    def apply(self, lts: LTS) -> PassResult:
        started = time.perf_counter()
        rewritten, new_to_old = self.rewrite(lts)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        stats = PassStats(
            self.name,
            lts.state_count,
            lts.transition_count,
            rewritten.state_count,
            rewritten.transition_count,
            elapsed_ms,
        )
        return PassResult(rewritten, StateProvenance(new_to_old), stats)

    def __repr__(self) -> str:
        return "{}({!r})".format(type(self).__name__, self.name)


def apply_passes(
    lts: LTS, passes: Sequence[LtsPass], obs=None
) -> Tuple[LTS, StateProvenance, Tuple[PassStats, ...]]:
    """Run a pass sequence; the result's provenance maps back to *lts*.

    With an enabled tracer as *obs*, each pass runs inside a ``compress``
    span (the pass name as a tag, so all passes aggregate into the single
    ``compress`` profile stage) and the registry's ``compress.*`` counters
    record the cumulative state reduction.
    """
    provenance = StateProvenance.identity(lts.state_count)
    stats: List[PassStats] = []
    current = lts
    tracing = obs is not None and obs.enabled
    for lts_pass in passes:
        if tracing:
            with obs.span(
                "compress", compression=lts_pass.name, states_in=current.state_count
            ) as span:
                result = lts_pass.apply(current)
                span.set_tag("states_out", result.lts.state_count)
        else:
            result = lts_pass.apply(current)
        current = result.lts
        provenance = provenance.then(result.provenance)
        stats.append(result.stats)
    if tracing and passes:
        metrics = obs.metrics
        metrics.counter("compress.passes_applied").inc(len(stats))
        metrics.counter("compress.states_in").inc(lts.state_count)
        metrics.counter("compress.states_out").inc(current.state_count)
    return current, provenance, tuple(stats)


def bfs_renumber(
    lts: LTS, rep_of: Optional[Sequence[StateId]] = None
) -> Tuple[LTS, Tuple[StateId, ...]]:
    """Renumber states by BFS order from the root; drop unreachable states.

    Edge order within each state is preserved, so exploration order -- and
    with it counterexample tie-breaking -- matches the source automaton.
    With *rep_of*, states are first quotiented: ``rep_of[s]`` names the
    representative state of ``s``'s equivalence class, and the quotient
    keeps exactly the representative's transitions (targets mapped through
    ``rep_of``), merging duplicates in favour of the first occurrence.

    Returns the new LTS and the new-to-old map (each new state maps to the
    representative it was built from).
    """
    renumbered = LTS(lts.table)
    if lts.state_count == 0:
        renumbered.add_state(None)
        return renumbered, (0,)

    if rep_of is None:
        rep_of = range(lts.state_count)

    #: representative old id -> new id, assigned in BFS discovery order
    index: Dict[StateId, StateId] = {}
    new_to_old: List[StateId] = []

    def state_of(old: StateId) -> StateId:
        rep = rep_of[old]
        existing = index.get(rep)
        if existing is not None:
            return existing
        new = renumbered.add_state(lts.terms[rep])
        index[rep] = new
        new_to_old.append(rep)
        return new

    renumbered.initial = state_of(lts.initial)
    work: deque = deque([rep_of[lts.initial]])
    while work:
        rep = work.popleft()
        source = index[rep]
        seen_edges = set()
        events, targets, lo, hi = lts.successors_span(rep)
        for i in range(lo, hi):
            eid = events[i]
            target_rep = rep_of[targets[i]]
            discovered = target_rep in index
            new_target = state_of(targets[i])
            edge = (eid, new_target)
            if edge in seen_edges:
                continue
            seen_edges.add(edge)
            renumbered.add_transition_id(source, eid, new_target)
            if not discovered:
                work.append(target_rep)
    return renumbered, tuple(new_to_old)


# -- the registry -------------------------------------------------------------------

PASSES: Dict[str, LtsPass] = {}

#: the passes applied when a caller asks for ``default`` compression: safe
#: in every semantic model, cheap, and ordered so each pass feeds the next
#: (pruning first, tau structure next, the bisimulation quotient last)
DEFAULT_PASS_NAMES: Tuple[str, ...] = ("dead", "tau_loop", "diamond", "sbisim")


def register_pass(lts_pass: LtsPass) -> LtsPass:
    if lts_pass.name in PASSES:
        raise ValueError("pass {!r} registered twice".format(lts_pass.name))
    PASSES[lts_pass.name] = lts_pass
    return lts_pass


PassSpec = Union[None, str, Sequence[str], Sequence[LtsPass]]


def resolve_passes(spec: PassSpec) -> Tuple[LtsPass, ...]:
    """Resolve ``--compress=<spec>`` syntax into a pass sequence.

    Accepts ``"default"``, ``"none"`` (or ``""``/``None``), a comma-separated
    name list (``"tau_loop,sbisim"``), or a sequence of names/pass objects.
    """
    if spec is None:
        return ()
    if isinstance(spec, str):
        text = spec.strip()
        if text in ("", "none"):
            return ()
        if text == "default":
            names: Sequence[object] = DEFAULT_PASS_NAMES
        else:
            names = [part.strip() for part in text.split(",") if part.strip()]
    else:
        names = list(spec)
    resolved: List[LtsPass] = []
    for name in names:
        if isinstance(name, LtsPass):
            resolved.append(name)
            continue
        if name == "default":
            resolved.extend(PASSES[default] for default in DEFAULT_PASS_NAMES)
            continue
        try:
            resolved.append(PASSES[name])
        except KeyError:
            raise KeyError(
                "unknown pass {!r}; known: {}".format(
                    name, ", ".join(sorted(PASSES))
                )
            ) from None
    return tuple(resolved)


def passes_for_model(
    passes: Sequence[LtsPass], model: str
) -> Tuple[LtsPass, ...]:
    """The subsequence of *passes* that is an equivalence for *model*.

    ``model`` is ``"T"``, ``"F"`` or ``"FD"``; property checks (deadlock,
    divergence, determinism) require ``"FD"``.
    """
    if model not in _MODEL_RANK:
        raise ValueError("unknown semantic model {!r}".format(model))
    return tuple(p for p in passes if p.safe_for(model))
