"""Semantic LTS passes: FDR-style compressions with provenance.

The pass framework behind compress-before-compose (paper Sec. VII-A).  See
:mod:`repro.passes.base` for the :class:`LtsPass` protocol,
:class:`StateProvenance` and :class:`PassStats`;
:mod:`repro.passes.sbisim` for strong bisimulation minimisation; and
:mod:`repro.passes.reduce` / :mod:`repro.passes.normal` for the structural
and normalisation passes.  Importing this package registers every built-in
pass in :data:`repro.passes.PASSES`.
"""

from .base import (
    DEFAULT_PASS_NAMES,
    LtsPass,
    PASSES,
    PassResult,
    PassSpec,
    PassStats,
    StateProvenance,
    apply_passes,
    bfs_renumber,
    passes_for_model,
    register_pass,
    resolve_passes,
    terminated_states,
)
from .normal import NormalPass
from .reduce import DeadStatesPass, DiamondPass, TauLoopPass, tau_scc_of
from .sbisim import SbisimPass, bisimulation_classes, minimise, quotient

__all__ = [
    "DEFAULT_PASS_NAMES",
    "DeadStatesPass",
    "DiamondPass",
    "LtsPass",
    "NormalPass",
    "PASSES",
    "PassResult",
    "PassSpec",
    "PassStats",
    "SbisimPass",
    "StateProvenance",
    "TauLoopPass",
    "apply_passes",
    "bfs_renumber",
    "bisimulation_classes",
    "minimise",
    "passes_for_model",
    "quotient",
    "register_pass",
    "resolve_passes",
    "tau_scc_of",
    "terminated_states",
]
