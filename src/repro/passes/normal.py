"""Normalisation as a pass: tau-closure plus subset construction.

FDR's ``normal`` compression replaces a component with its normal form --
deterministic and tau-free, often far smaller on heavily nondeterministic
components.  Determinisation is only a *trace* equivalence (the subset
construction discards which acceptances belong to which branch), so this
pass declares ``preserves = "T"`` and the compilation plan applies it to
trace-refinement checks only.  It is deliberately not in the default pass
list; request it with ``--compress=normal,sbisim`` or a ``passes=`` spec.

Each normalised node corresponds to a *set* of source states; provenance
maps a node to the smallest member of that set.
"""

from __future__ import annotations

from typing import Tuple

from ..csp.lts import LTS, StateId
from .base import LtsPass, bfs_renumber, register_pass


class NormalPass(LtsPass):
    """``normal``: determinise by subset construction (trace-safe only)."""

    name = "normal"
    preserves = "T"

    def rewrite(self, lts: LTS) -> Tuple[LTS, Tuple[StateId, ...]]:
        # imported lazily: repro.fdr pulls in the engine, which imports this
        # package -- a module-level import would be circular
        from ..fdr.normalise import normalise

        spec = normalise(lts)
        determinised = spec.as_lts()
        for node, members in enumerate(spec.members):
            determinised.terms[node] = lts.terms[min(members)]
        renumbered, new_to_node = bfs_renumber(determinised)
        return renumbered, tuple(
            min(spec.members[node]) for node in new_to_node
        )


register_pass(NormalPass())
