"""Structural reduction passes: dead-state pruning, tau loops, diamonds.

These are the cheap passes that run before the bisimulation quotient in the
default pipeline.  Each is an equivalence in all three semantic models
(``preserves = "FD"``):

* ``dead`` -- drop states unreachable from the root (and renumber the rest
  in BFS order).  Composition and hiding routinely leave garbage states.
* ``tau_loop`` -- collapse each tau-SCC to a single state, like FDR's
  ``tau_loop_factor``: every state on a tau cycle is divergent, and in the
  divergence-strict FD model all of them are equivalent, while in T and F
  the members reach each other silently so their visible behaviour is one.
  A collapsed divergent component keeps a single tau self-loop so the
  divergence checker still sees the cycle.
* ``diamond`` -- inert-tau elimination: a state whose *only* transition is
  a single tau is indistinguishable from its successor in every model
  (no choice is resolved, no acceptance is recorded).  Chains of such
  states collapse to their endpoint.  This is the uncontroversial fragment
  of FDR's ``diamond`` compression; the full transformation also
  accelerates visible transitions through tau and is only a trace/failures
  congruence under side conditions we do not need.
"""

from __future__ import annotations

from typing import List, Tuple

from ..csp.events import TAU_ID
from ..csp.lts import LTS, StateId
from .base import LtsPass, bfs_renumber, register_pass, terminated_states


class DeadStatesPass(LtsPass):
    """``dead``: prune unreachable states, renumber in BFS order."""

    name = "dead"
    preserves = "FD"

    def rewrite(self, lts: LTS) -> Tuple[LTS, Tuple[StateId, ...]]:
        return bfs_renumber(lts)


def tau_scc_of(lts: LTS) -> List[int]:
    """Tarjan over tau transitions only: state -> tau-SCC id (iterative)."""
    count = lts.state_count
    unvisited = -1
    index_of = [unvisited] * count
    lowlink = [0] * count
    on_stack = [False] * count
    scc_of = [unvisited] * count
    stack: List[StateId] = []
    counter = 0
    scc_count = 0

    successors_span = lts.successors_span
    for root in range(count):
        if index_of[root] != unvisited:
            continue
        # (state, edge cursor) frames, unrolled to avoid recursion; the
        # cursor is an absolute index into the kernel's flat arrays
        # (-1 = first visit)
        work: List[Tuple[StateId, int]] = [(root, -1)]
        while work:
            state, position = work.pop()
            events, targets, lo, hi = successors_span(state)
            if position < 0:
                index_of[state] = lowlink[state] = counter
                counter += 1
                stack.append(state)
                on_stack[state] = True
                position = lo
            advanced = False
            while position < hi:
                eid = events[position]
                target = targets[position]
                position += 1
                if eid != TAU_ID:
                    continue
                if index_of[target] == unvisited:
                    work.append((state, position))
                    work.append((target, -1))
                    advanced = True
                    break
                if on_stack[target]:
                    lowlink[state] = min(lowlink[state], index_of[target])
            if advanced:
                continue
            if lowlink[state] == index_of[state]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc_of[member] = scc_count
                    if member == state:
                        break
                scc_count += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[state])
    return scc_of


class TauLoopPass(LtsPass):
    """``tau_loop``: collapse each tau-SCC to one state."""

    name = "tau_loop"
    preserves = "FD"

    def rewrite(self, lts: LTS) -> Tuple[LTS, Tuple[StateId, ...]]:
        if lts.state_count == 0:
            return bfs_renumber(lts)
        scc_of = tau_scc_of(lts)

        # smallest member represents its component (ids are BFS-ordered in
        # pass inputs, so this is the first-discovered member)
        representative: dict = {}
        for state in range(lts.state_count):
            scc = scc_of[state]
            if scc not in representative or state < representative[scc]:
                representative[scc] = state

        # the collapsed component needs the *union* of member transitions
        # (members differ; any of them is silently reachable from any other),
        # gathered in ascending member order so output order is stable
        collapsed = LTS(lts.table)
        state_of: dict = {}
        members: dict = {}
        for state in range(lts.state_count):
            members.setdefault(scc_of[state], []).append(state)
        for scc, group in members.items():
            state_of[scc] = collapsed.add_state(lts.terms[representative[scc]])
        collapsed.initial = state_of[scc_of[lts.initial]]
        provenance: List[StateId] = [0] * collapsed.state_count
        for scc, group in members.items():
            source = state_of[scc]
            provenance[source] = representative[scc]
            seen = set()
            for state in group:
                events, targets, lo, hi = lts.successors_span(state)
                for i in range(lo, hi):
                    eid = events[i]
                    target = targets[i]
                    if eid == TAU_ID and scc_of[target] == scc:
                        # an intra-component tau: the component is divergent,
                        # keep exactly one tau self-loop as its witness
                        edge = (TAU_ID, source)
                    else:
                        edge = (eid, state_of[scc_of[target]])
                    if edge in seen:
                        continue
                    seen.add(edge)
                    collapsed.add_transition_id(source, edge[0], edge[1])

        renumbered, new_to_mid = bfs_renumber(collapsed)
        return renumbered, tuple(provenance[mid] for mid in new_to_mid)


class DiamondPass(LtsPass):
    """``diamond``: merge single-tau states into their successors."""

    name = "diamond"
    preserves = "FD"

    def rewrite(self, lts: LTS) -> Tuple[LTS, Tuple[StateId, ...]]:
        count = lts.state_count
        if count == 0:
            return bfs_renumber(lts)
        terminated = terminated_states(lts)

        def is_inert(state: StateId) -> bool:
            # a tau into the terminated state is never inert: the source
            # still refuses tick, so merging it into the tick-target would
            # turn a stuck state into a terminated one
            events, targets, lo, hi = lts.successors_span(state)
            return (
                hi - lo == 1
                and events[lo] == TAU_ID
                and targets[lo] not in terminated
            )

        unresolved = -1
        rep_of = [unresolved] * count
        for start in range(count):
            if rep_of[start] != unresolved:
                continue
            chain: List[StateId] = []
            positions: dict = {}
            state = start
            while (
                rep_of[state] == unresolved
                and state not in positions
                and is_inert(state)
            ):
                positions[state] = len(chain)
                chain.append(state)
                _events, targets, lo, _hi = lts.successors_span(state)
                state = targets[lo]
            if rep_of[state] != unresolved:
                endpoint = rep_of[state]
            elif state in positions:
                # a pure tau cycle: every state on it is inert; collapse the
                # whole cycle onto its entry point, whose single tau edge
                # then resolves to itself -- a divergence-preserving loop
                endpoint = state
            else:
                endpoint = state
                rep_of[state] = state
            for member in chain:
                rep_of[member] = endpoint

        # quotient keeps the endpoint's transitions with resolved targets
        renumbered, new_to_old = bfs_renumber(
            lts, [rep_of[s] for s in range(count)]
        )
        return renumbered, new_to_old


register_pass(DeadStatesPass())
register_pass(TauLoopPass())
register_pass(DiamondPass())
