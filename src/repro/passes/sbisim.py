"""Strong bisimulation minimisation -- FDR's ``sbisim`` as a pass.

Partition refinement in the Kanellakis-Smolka style, with two fixes over
the naive implementation this migrated from (``repro.fdr.compress``):

* signatures are hash-consed per sweep -- each distinct move-set
  ``{(event, block)}`` is interned to a small integer once, so block
  splitting groups by int instead of re-hashing frozensets per comparison;
* a worklist of *touched* blocks: when a split moves states out of a block,
  only the blocks containing predecessors of the moved states can see their
  signatures change, so only those are re-examined on the next sweep.
  Stable regions of the LTS are never rescanned, which keeps minimisation
  from dominating compile time on Table-II-sized alphabets.

The partition is always coarser than bisimilarity (splitting by signature
under such a partition never separates bisimilar states), so the fixpoint
is the coarsest strong bisimulation.  Tau is treated like any other label:
strong, not weak, bisimulation, exactly FDR's ``sbisim`` -- an equivalence
in every CSP semantic model.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..csp.lts import LTS, StateId
from .base import LtsPass, bfs_renumber, register_pass, terminated_states

Signature = FrozenSet[Tuple[int, int]]


def bisimulation_classes(lts: LTS) -> List[FrozenSet[StateId]]:
    """The coarsest strong-bisimulation partition of the LTS states.

    Returned in deterministic order (sorted by smallest member).  Worst
    case O(m·n) like any signature-refinement scheme, but sweeps only ever
    revisit blocks whose member signatures may actually have changed.
    """
    count = lts.state_count
    if count == 0:
        return []

    # seed the partition with the terminated/ordinary split: tick-targets
    # are observationally distinct from stuck states even though both have
    # empty move sets, so they must start (and stay) in separate blocks
    terminated = terminated_states(lts)
    block_of: List[int] = [0] * count
    #: block id -> members, kept in ascending state order so splits are
    #: deterministic regardless of hash seeds
    members: Dict[int, List[StateId]] = {}
    initial_blocks = [
        [s for s in range(count) if s not in terminated],
        sorted(terminated),
    ]
    next_block = 0
    for group in initial_blocks:
        if not group:
            continue
        for state in group:
            block_of[state] = next_block
        members[next_block] = group
        next_block += 1

    successors_span = lts.successors_span
    predecessors: List[List[StateId]] = [[] for _ in range(count)]
    for state in range(count):
        _events, targets, lo, hi = successors_span(state)
        for i in range(lo, hi):
            predecessors[targets[i]].append(state)

    touched = set(members)
    while touched:
        #: hash-cons table for this sweep: signature -> small int
        sig_ids: Dict[Signature, int] = {}
        sweep = sorted(touched)
        touched = set()
        for block in sweep:
            states = members[block]
            if len(states) <= 1:
                continue
            parts: Dict[int, List[StateId]] = {}
            order: List[int] = []
            for state in states:
                events, targets, lo, hi = successors_span(state)
                signature = frozenset(
                    (events[i], block_of[targets[i]]) for i in range(lo, hi)
                )
                sig = sig_ids.setdefault(signature, len(sig_ids))
                part = parts.get(sig)
                if part is None:
                    parts[sig] = part = []
                    order.append(sig)
                part.append(state)
            if len(parts) == 1:
                continue
            # the first part keeps the old block id; the rest get fresh ids
            members[block] = parts[order[0]]
            moved: List[StateId] = []
            for sig in order[1:]:
                part = parts[sig]
                members[next_block] = part
                for state in part:
                    block_of[state] = next_block
                moved.extend(part)
                next_block += 1
            # only predecessors of moved states can see a signature change
            for state in moved:
                for pred in predecessors[state]:
                    touched.add(block_of[pred])
            touched.add(block)

    classes = [frozenset(states) for states in members.values()]
    classes.sort(key=min)
    return classes


def block_index(classes: List[FrozenSet[StateId]], count: int) -> List[int]:
    """Invert a class list into a state -> class-index array."""
    index = [0] * count
    for position, block in enumerate(classes):
        for state in block:
            index[state] = position
    return index


def minimise(lts: LTS) -> LTS:
    """Quotient the LTS by strong bisimulation.

    The result is strongly bisimilar to the input, hence equivalent in
    every CSP semantic model, with duplicate transitions merged and states
    renumbered in BFS order from the root (stable across runs).
    """
    minimised, _ = quotient(lts)
    return minimised


def quotient(lts: LTS) -> Tuple[LTS, Tuple[StateId, ...]]:
    """``minimise`` plus the new-to-old representative map."""
    if lts.state_count == 0:
        return bfs_renumber(lts)
    classes = bisimulation_classes(lts)
    rep_of = [0] * lts.state_count
    for block in classes:
        representative = min(block)
        for state in block:
            rep_of[state] = representative
    return bfs_renumber(lts, rep_of)


class SbisimPass(LtsPass):
    """``sbisim``: quotient by strong bisimulation (safe in T, F and FD)."""

    name = "sbisim"
    preserves = "FD"

    def rewrite(self, lts: LTS) -> Tuple[LTS, Tuple[StateId, ...]]:
        return quotient(lts)


register_pass(SbisimPass())
