"""repro -- security checking of automotive ECUs with formal CSP models.

A complete, from-scratch reproduction of

    Heneghan, Shaikh, Bryans, Cheah, Wooderson.
    "Enabling Security Checking of Automotive ECUs with Formal CSP Models."
    DSN-W 2019.

The package provides every stage of the paper's Fig. 1 toolchain:

* :mod:`repro.csp`        -- the CSP process algebra, trace semantics, LTSs
* :mod:`repro.engine`     -- the shared verification pipeline (interned
  alphabets, compilation cache, on-the-fly refinement)
* :mod:`repro.fdr`        -- the refinement checker (FDR substitute)
* :mod:`repro.cspm`       -- the machine-readable CSP dialect (parse/emit)
* :mod:`repro.capl`       -- CAPL: parser and bus-attached interpreter
* :mod:`repro.canbus`     -- the simulated CAN network (CANoe substitute)
* :mod:`repro.candb`      -- CAN databases (.dbc) and their CSPm export
* :mod:`repro.translator` -- the model extractor: CAPL -> CSPm
* :mod:`repro.security`   -- Dolev-Yao intruders, attack trees, properties
* :mod:`repro.testgen`    -- model-based test generation + conformance runs
* :mod:`repro.ota`        -- the X.1373 software-update case study

Quickstart::

    from repro.ota import run_workflow
    report = run_workflow(flawed=True)   # seed the integrity defect
    print(report.summary())              # SP02 fails with the insecure trace
"""

from . import canbus, candb, capl, csp, cspm, engine, fdr, ota, security, testgen, translator

__version__ = "1.0.0"

__all__ = [
    "canbus",
    "candb",
    "capl",
    "csp",
    "cspm",
    "engine",
    "fdr",
    "ota",
    "security",
    "testgen",
    "translator",
    "__version__",
]
