"""repro -- security checking of automotive ECUs with formal CSP models.

A complete, from-scratch reproduction of

    Heneghan, Shaikh, Bryans, Cheah, Wooderson.
    "Enabling Security Checking of Automotive ECUs with Formal CSP Models."
    DSN-W 2019.

The package provides every stage of the paper's Fig. 1 toolchain:

* :mod:`repro.csp`        -- the CSP process algebra, trace semantics, LTSs
* :mod:`repro.engine`     -- the shared verification pipeline (interned
  alphabets, compilation cache, on-the-fly refinement)
* :mod:`repro.fdr`        -- the refinement checker (FDR substitute)
* :mod:`repro.cspm`       -- the machine-readable CSP dialect (parse/emit)
* :mod:`repro.capl`       -- CAPL: parser and bus-attached interpreter
* :mod:`repro.canbus`     -- the simulated CAN network (CANoe substitute)
* :mod:`repro.candb`      -- CAN databases (.dbc) and their CSPm export
* :mod:`repro.translator` -- the model extractor: CAPL -> CSPm
* :mod:`repro.security`   -- Dolev-Yao intruders, attack trees, properties
* :mod:`repro.testgen`    -- model-based test generation + conformance runs
* :mod:`repro.ota`        -- the X.1373 software-update case study
* :mod:`repro.rv`         -- offline runtime verification of CAN logs
* :mod:`repro.server`     -- the ``cspserve`` daemon (warm workers, dedup)

Quickstart -- the :mod:`repro.api` facade is the supported entry point::

    from repro import api
    result = api.verify_requirement("R02")      # paper Table III
    result = api.check_refinement(spec, impl, model="T", env=env)
    result = api.check_deadlock(system, env=env)

or the whole case study at once::

    from repro.ota import run_workflow
    report = run_workflow(flawed=True)   # seed the integrity defect
    print(report.summary())              # SP02 fails with the insecure trace
"""

from . import (
    api,
    batch,
    canbus,
    candb,
    capl,
    csp,
    cspm,
    engine,
    fdr,
    obs,
    ota,
    rv,
    security,
    server,
    testgen,
    translator,
)
from .api import (
    API_VERSION,
    Verdict,
    check_deadlock,
    check_determinism,
    check_divergence,
    check_property,
    check_refinement,
    check_trace,
    execute_check,
    extract_model,
    server_client,
    verify_requirement,
    verify_requirements,
    verify_traces,
)

__version__ = "1.0.0"

__all__ = [
    "API_VERSION",
    "Verdict",
    "api",
    "batch",
    "canbus",
    "candb",
    "capl",
    "check_deadlock",
    "check_determinism",
    "check_divergence",
    "check_property",
    "check_refinement",
    "check_trace",
    "csp",
    "cspm",
    "engine",
    "execute_check",
    "extract_model",
    "fdr",
    "obs",
    "ota",
    "rv",
    "security",
    "server",
    "server_client",
    "testgen",
    "translator",
    "verify_requirement",
    "verify_requirements",
    "verify_traces",
    "__version__",
]
