"""repro.obs -- zero-dependency observability for the verification stack.

The paper's workflow (Fig. 1) feeds counterexample traces back to
designers; this subsystem feeds the *cost* of producing them back to the
toolchain: which pipeline stage (parse / plan / compress / normalise /
refine) a check spends its time in, how many states and transitions each
stage touched, and where the caches helped.

Three layers:

* :class:`Tracer` / :class:`Span` -- nested regions on a monotonic clock,
  plus a per-tracer :class:`Metrics` registry of counters, gauges and
  histograms.  The disabled flavour, :data:`NULL_TRACER`, is a shared
  singleton whose operations are no-ops over pre-allocated objects, so the
  instrumented hot path pays one attribute lookup when observability is
  off.
* JSONL export/import (:func:`export_jsonl` / :func:`load_jsonl`) with a
  complete schema validator (:mod:`repro.obs.schema`), so traces survive as
  CI artifacts and round-trip for offline analysis.
* :class:`Profile` (:mod:`repro.obs.profile`) -- per-stage wall-time
  breakdowns aggregated from a span tree by exclusive time, so stage sums
  always reconcile with end-to-end wall time.  Surfaced as
  ``CheckResult.profile`` and ``cspcheck --profile``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NULL_METRICS,
    NullMetrics,
    global_metrics,
)
from .profile import (
    OTHER_STAGE,
    Profile,
    STAGE_ORDER,
    aggregate_spans,
    merge_profiles,
    overall_profile,
    profile_of,
)
from .schema import SchemaError, validate_file, validate_lines
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceDump,
    Tracer,
    ensure_tracer,
    export_jsonl,
    load_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "OTHER_STAGE",
    "Profile",
    "STAGE_ORDER",
    "SchemaError",
    "Span",
    "TraceDump",
    "Tracer",
    "aggregate_spans",
    "ensure_tracer",
    "export_jsonl",
    "global_metrics",
    "load_jsonl",
    "merge_profiles",
    "overall_profile",
    "profile_of",
    "validate_file",
    "validate_lines",
]
