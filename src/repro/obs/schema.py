"""Schema validation for exported trace files (``--trace-out`` JSONL).

The trace format is deliberately tiny -- JSON Lines, one record per line,
four record shapes -- so this validator enumerates it completely:

* ``meta``      -- ``{"type": "meta", "version": int, "spans": int}``,
  exactly one, first;
* ``span``      -- ``{"type": "span", "id": int, "parent": int|null,
  "name": str, "start_ms": number, "end_ms": number|null, "tags": object}``;
* ``counter`` / ``gauge`` / ``histogram`` -- metric records as emitted by
  :meth:`repro.obs.metrics.Metrics.records`.

Structural rules checked beyond the field shapes: span ids are unique,
parents precede their children, ``end_ms >= start_ms`` for finished spans,
and the meta record's span count matches the file.

Usable as a module CLI (the CI job validates the uploaded artifact)::

    python -m repro.obs.schema trace.jsonl
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Sequence, Union

Number = (int, float)


class SchemaError(ValueError):
    """A trace file record violating the schema, with its line number."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__("line {}: {}".format(line_number, message))
        self.line_number = line_number


def _require(record: Dict[str, object], line: int, key: str, kinds, allow_none=False):
    if key not in record:
        raise SchemaError(line, "missing field {!r}".format(key))
    value = record[key]
    if value is None:
        if allow_none:
            return None
        raise SchemaError(line, "field {!r} must not be null".format(key))
    # bools are ints in Python; reject them where a number is expected
    if isinstance(value, bool) and kinds in (Number, int):
        raise SchemaError(line, "field {!r} must be a number".format(key))
    if not isinstance(value, kinds):
        raise SchemaError(
            line,
            "field {!r} has type {}, expected {}".format(
                key, type(value).__name__, kinds
            ),
        )
    return value


def _validate_span(record: Dict[str, object], line: int, seen_ids: Dict[int, int]):
    span_id = _require(record, line, "id", int)
    if span_id in seen_ids:
        raise SchemaError(
            line, "duplicate span id {} (first on line {})".format(span_id, seen_ids[span_id])
        )
    parent = _require(record, line, "parent", int, allow_none=True)
    if parent is not None and parent not in seen_ids:
        raise SchemaError(
            line, "span {} references unseen parent {}".format(span_id, parent)
        )
    _require(record, line, "name", str)
    start = _require(record, line, "start_ms", Number)
    end = _require(record, line, "end_ms", Number, allow_none=True)
    if end is not None and end < start:
        raise SchemaError(
            line, "span {} ends ({}) before it starts ({})".format(span_id, end, start)
        )
    tags = _require(record, line, "tags", dict)
    for key in tags:
        if not isinstance(key, str):
            raise SchemaError(line, "span tag keys must be strings")
    seen_ids[span_id] = line


def _validate_metric(record: Dict[str, object], line: int, kind: str) -> None:
    _require(record, line, "name", str)
    if kind == "counter":
        _require(record, line, "value", Number)
    elif kind == "gauge":
        _require(record, line, "value", Number)
        _require(record, line, "max", Number)
    else:  # histogram
        _require(record, line, "count", int)
        for key in ("total", "min", "max"):
            _require(record, line, key, Number)


def validate_lines(lines: Sequence[str]) -> Dict[str, int]:
    """Validate trace-file lines; returns record counts by type, or raises."""
    counts: Dict[str, int] = {"meta": 0, "span": 0, "counter": 0, "gauge": 0, "histogram": 0}
    seen_ids: Dict[int, int] = {}
    declared_spans: Optional[int] = None
    for line_number, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise SchemaError(line_number, "not valid JSON: {}".format(error))
        if not isinstance(record, dict):
            raise SchemaError(line_number, "record is not a JSON object")
        kind = record.get("type")
        if kind == "meta":
            if counts["meta"]:
                raise SchemaError(line_number, "second meta record")
            if sum(counts.values()):
                raise SchemaError(line_number, "meta record must come first")
            _require(record, line_number, "version", int)
            declared_spans = _require(record, line_number, "spans", int)
        elif kind == "span":
            _validate_span(record, line_number, seen_ids)
        elif kind in ("counter", "gauge", "histogram"):
            _validate_metric(record, line_number, kind)
        else:
            raise SchemaError(
                line_number, "unknown record type {!r}".format(kind)
            )
        counts[kind] += 1
    if not counts["meta"]:
        raise SchemaError(0, "no meta record")
    if declared_spans is not None and declared_spans != counts["span"]:
        raise SchemaError(
            0,
            "meta declares {} spans, file has {}".format(
                declared_spans, counts["span"]
            ),
        )
    return counts


def validate_file(path: str) -> Dict[str, int]:
    """Validate one trace file; returns record counts by type, or raises."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_lines(handle.readlines())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        sys.stderr.write("usage: python -m repro.obs.schema TRACE.jsonl ...\n")
        return 2
    status = 0
    for path in args:
        try:
            counts = validate_file(path)
        except (OSError, SchemaError) as error:
            sys.stderr.write("{}: INVALID: {}\n".format(path, error))
            status = 1
            continue
        sys.stdout.write(
            "{}: ok ({} spans, {} metric records)\n".format(
                path,
                counts["span"],
                counts["counter"] + counts["gauge"] + counts["histogram"],
            )
        )
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
