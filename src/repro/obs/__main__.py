"""``python -m repro.obs TRACE.jsonl ...`` -- validate exported trace files."""

from .schema import main

raise SystemExit(main())
