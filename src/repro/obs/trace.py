"""The tracer: nested spans on a monotonic clock, plus JSONL export.

A :class:`Tracer` records a tree of :class:`Span` objects -- one per
instrumented region, with monotonic start/end times, free-form tags and a
parent id -- and owns a :class:`~repro.obs.metrics.Metrics` registry for the
counts that have no natural span (states explored, cache hits, blowup).

The enabled/disabled split is the design centre: instrumented code holds a
tracer-shaped object unconditionally, and the *disabled* flavour
(:data:`NULL_TRACER`) is a process-wide singleton whose every operation is a
no-op over pre-allocated objects.  Hot loops guard per-iteration work with
one attribute lookup (``tracer.enabled``); per-call sites just open spans,
which on the null tracer neither allocate nor record.

Spans and metrics export to JSON Lines (one record per line, see
:mod:`repro.obs.schema` for the record shapes) with
:func:`export_jsonl` and load back with :func:`load_jsonl`, so a check's
cost breakdown can be shipped out of process and re-analysed.
"""

from __future__ import annotations

import json
import time
from typing import Dict, IO, Iterable, List, NamedTuple, Optional, Union

from .metrics import Metrics, NULL_METRICS

#: trace format version stamped into every export's meta record
TRACE_FORMAT_VERSION = 1

TagValue = Union[str, int, float, bool, None]


class Span:
    """One traced region: name, tags, monotonic start/end, parent link."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "tags")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        tags: Optional[Dict[str, TagValue]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.tags: Dict[str, TagValue] = tags if tags is not None else {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration_ms(self) -> float:
        """Wall time in milliseconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return (self.end - self.start) * 1000.0

    def set_tag(self, key: str, value: TagValue) -> None:
        self.tags[key] = value

    def __repr__(self) -> str:
        return "Span({!r}, id={}, parent={}, {:.3f} ms)".format(
            self.name, self.span_id, self.parent_id, self.duration_ms
        )


class _SpanHandle:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_tags", "_span")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, TagValue]) -> None:
        self._tracer = tracer
        self._name = name
        self._tags = tags
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._tags)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Records nested spans against one monotonic clock.

    Spans nest through an explicit stack: a span opened while another is
    active becomes its child.  The clock is injectable for deterministic
    tests; the epoch is taken at construction so exported timestamps are
    small relative offsets.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, metrics: Optional[Metrics] = None) -> None:
        self._clock = clock
        self.epoch = clock()
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self.metrics = metrics if metrics is not None else Metrics()

    def span(self, name: str, /, **tags: TagValue) -> _SpanHandle:
        """A context manager recording one region::

            with tracer.span("normalise", states=lts.state_count):
                ...
        """
        return _SpanHandle(self, name, tags)

    def _open(self, name: str, tags: Dict[str, TagValue]) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(name, self._next_id, parent, self._clock(), tags)
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Optional[Span]) -> None:
        if span is None or not self._stack:
            return
        # close intervening unclosed children too (exception unwinding)
        while self._stack:
            current = self._stack.pop()
            current.end = self._clock()
            if current is span:
                break

    @property
    def active_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def roots(self) -> List[Span]:
        """The top-level spans, in start order."""
        return [span for span in self.spans if span.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def __len__(self) -> int:
        return len(self.spans)


class _NullSpan(Span):
    """The span every null-tracer region yields; mutating it goes nowhere."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("<null>", 0, None, 0.0, None)
        self.tags = {}

    def set_tag(self, key: str, value: TagValue) -> None:
        pass

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: records nothing, allocates nothing per call.

    ``tracer.enabled`` is the one-attribute-lookup guard for per-iteration
    instrumentation; span() hands back the process-wide :data:`NULL_SPAN`
    (itself a no-op context manager) and ``metrics`` is the shared
    :data:`~repro.obs.metrics.NULL_METRICS` registry.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0, metrics=NULL_METRICS)

    def span(self, name: str, /, **tags: TagValue):
        return NULL_SPAN


NULL_TRACER = NullTracer()


def ensure_tracer(obs: Optional[Tracer]) -> Tracer:
    """Normalise an optional tracer argument to a concrete tracer object."""
    return obs if obs is not None else NULL_TRACER


# -- JSONL import/export -------------------------------------------------------


class TraceDump(NamedTuple):
    """A loaded trace file: meta header, spans, metric records."""

    meta: Dict[str, object]
    spans: List[Span]
    metrics: List[Dict[str, object]]


def span_record(span: Span, epoch: float) -> Dict[str, object]:
    """The JSONL record of one span, times in ms relative to *epoch*."""
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "start_ms": (span.start - epoch) * 1000.0,
        "end_ms": (span.end - epoch) * 1000.0 if span.end is not None else None,
        "tags": span.tags,
    }


def iter_records(tracer: Tracer) -> Iterable[Dict[str, object]]:
    """Every record of a trace export, meta first, spans in start order."""
    yield {
        "type": "meta",
        "version": TRACE_FORMAT_VERSION,
        "spans": len(tracer.spans),
    }
    for span in tracer.spans:
        yield span_record(span, tracer.epoch)
    for record in tracer.metrics.records():
        yield record


def export_jsonl(tracer: Tracer, target: Union[str, IO[str]]) -> int:
    """Write the trace as JSON Lines; returns the number of records."""
    count = 0

    def write_all(handle: IO[str]) -> None:
        nonlocal count
        for record in iter_records(tracer):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1

    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            write_all(handle)
    else:
        write_all(target)
    return count


def load_jsonl(source: Union[str, IO[str]]) -> TraceDump:
    """Load an exported trace back into spans + metric records."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    meta: Dict[str, object] = {}
    spans: List[Span] = []
    metrics: List[Dict[str, object]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "meta":
            meta = record
        elif kind == "span":
            span = Span(
                record["name"],
                record["id"],
                record["parent"],
                record["start_ms"] / 1000.0,
                dict(record.get("tags") or {}),
            )
            if record.get("end_ms") is not None:
                span.end = record["end_ms"] / 1000.0
            spans.append(span)
        else:
            metrics.append(record)
    return TraceDump(meta, spans, metrics)
