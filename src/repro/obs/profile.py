"""Per-stage cost profiles derived from a span tree.

A profile answers "where did the time go" for one check or one whole CLI
run: wall milliseconds per pipeline stage (parse / plan / compile /
compress / normalise / refine), summing consistently with the end-to-end
time.

The aggregation is by *exclusive* (self) time: each span contributes its
duration minus the durations of its direct children, bucketed under the
span's name.  Because every span's time is counted exactly once, the stage
totals -- including the ``other`` bucket collecting structural spans
(``run``/``check``/``case``) and untraced residue -- sum to the root span's
duration by construction, which is what lets benchmarks gate "stage sums
within 10% of wall time" without a race against measurement noise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .trace import Span, Tracer

#: canonical pipeline stage order for tables and JSON
STAGE_ORDER: Tuple[str, ...] = (
    "parse",
    "plan",
    "compile",
    "compress",
    "normalise",
    "refine",
)

#: spans that merely *contain* stages; their exclusive time is overhead
STRUCTURAL_SPANS = frozenset({"run", "check", "case"})

#: the bucket structural/unknown self time falls into
OTHER_STAGE = "other"


class Profile:
    """Wall-time breakdown of one traced region, per stage."""

    def __init__(
        self,
        total_ms: float,
        stages: Dict[str, float],
        counts: Dict[str, int],
        metrics: Optional[Dict[str, object]] = None,
        name: str = "profile",
    ) -> None:
        self.total_ms = total_ms
        self.stages = stages
        self.counts = counts
        self.metrics = metrics if metrics is not None else {}
        self.name = name

    def stage_ms(self, stage: str) -> float:
        return self.stages.get(stage, 0.0)

    def stage_sum(self) -> float:
        """Sum of every stage bucket; equals ``total_ms`` by construction."""
        return sum(self.stages.values())

    def ordered_stages(self) -> List[Tuple[str, float]]:
        """Stages in canonical order, then extras alphabetically, other last."""
        ordered: List[Tuple[str, float]] = []
        for stage in STAGE_ORDER:
            if stage in self.stages:
                ordered.append((stage, self.stages[stage]))
        extras = sorted(
            name
            for name in self.stages
            if name not in STAGE_ORDER and name != OTHER_STAGE
        )
        ordered.extend((name, self.stages[name]) for name in extras)
        if OTHER_STAGE in self.stages:
            ordered.append((OTHER_STAGE, self.stages[OTHER_STAGE]))
        return ordered

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "total_ms": round(self.total_ms, 3),
            "stages": {
                stage: round(ms, 3) for stage, ms in self.stages.items()
            },
            "spans": dict(self.counts),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "Profile":
        """Rebuild a profile from :meth:`as_dict` output.

        The inverse (up to rounding) of :meth:`as_dict`; batch workers ship
        their per-job profiles across the process boundary this way.
        """
        return cls(
            float(doc.get("total_ms", 0.0)),
            {stage: float(ms) for stage, ms in (doc.get("stages") or {}).items()},
            {stage: int(n) for stage, n in (doc.get("spans") or {}).items()},
            dict(doc.get("metrics") or {}),
            str(doc.get("name", "profile")),
        )

    def table(self) -> str:
        """The human-readable per-stage table behind ``--profile``."""
        total = self.total_ms or 1e-9
        lines = [
            "profile [{}]".format(self.name),
            "{:<12} {:>10} {:>7} {:>7}".format("stage", "ms", "%", "spans"),
            "-" * 38,
        ]
        for stage, ms in self.ordered_stages():
            lines.append(
                "{:<12} {:>10.3f} {:>6.1f}% {:>7}".format(
                    stage, ms, 100.0 * ms / total, self.counts.get(stage, 0)
                )
            )
        lines.append("-" * 38)
        lines.append(
            "{:<12} {:>10.3f} {:>6.1f}%".format("total", self.total_ms, 100.0)
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Profile({!r}, {:.3f} ms, {} stages)".format(
            self.name, self.total_ms, len(self.stages)
        )


def _subtree(spans: Sequence[Span], root: Span) -> List[Span]:
    """*root* plus every transitive child, from a flat span list."""
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    collected: List[Span] = []
    stack = [root]
    while stack:
        span = stack.pop()
        collected.append(span)
        stack.extend(children.get(span.span_id, ()))
    return collected


def aggregate_spans(
    spans: Sequence[Span],
    total_ms: Optional[float] = None,
    metrics: Optional[Dict[str, object]] = None,
    name: str = "profile",
) -> Profile:
    """Fold a span set into a per-stage profile by exclusive time.

    *total_ms* defaults to the summed duration of the set's root spans
    (spans whose parent is absent from the set).  Structural spans
    (``run``/``check``/``case``) and any untraced residue land in the
    ``other`` bucket, so ``stage_sum() == total_ms`` always holds.
    """
    ids = {span.span_id for span in spans}
    child_ms: Dict[int, float] = {}
    roots_ms = 0.0
    for span in spans:
        if span.parent_id in ids:
            child_ms[span.parent_id] = (
                child_ms.get(span.parent_id, 0.0) + span.duration_ms
            )
        else:
            roots_ms += span.duration_ms
    if total_ms is None:
        total_ms = roots_ms
    stages: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for span in spans:
        exclusive = span.duration_ms - child_ms.get(span.span_id, 0.0)
        stage = OTHER_STAGE if span.name in STRUCTURAL_SPANS else span.name
        stages[stage] = stages.get(stage, 0.0) + exclusive
        counts[stage] = counts.get(stage, 0) + 1
    # untraced residue: wall time of the region not covered by any span
    residue = total_ms - sum(stages.values())
    if abs(residue) > 1e-9:
        stages[OTHER_STAGE] = stages.get(OTHER_STAGE, 0.0) + residue
        counts.setdefault(OTHER_STAGE, 0)
    return Profile(total_ms, stages, counts, metrics, name)


def profile_of(tracer: Tracer, root: Span, name: Optional[str] = None) -> Profile:
    """The per-stage profile of one root span's subtree."""
    return aggregate_spans(
        _subtree(tracer.spans, root),
        total_ms=root.duration_ms,
        metrics=tracer.metrics.snapshot(),
        name=name if name is not None else str(root.tags.get("name", root.name)),
    )


def overall_profile(tracer: Tracer, name: str = "run") -> Profile:
    """One profile over everything the tracer recorded."""
    return aggregate_spans(
        tracer.spans, metrics=tracer.metrics.snapshot(), name=name
    )


def merge_profiles(profiles: Sequence[Profile], name: str = "batch") -> Profile:
    """Fold many profiles into one by summation.

    Stage milliseconds, span counts, and numeric metrics are summed;
    non-numeric metric values keep the first occurrence.  The merged total
    is the *sum of member totals* -- aggregate compute, not wall time -- so
    a 4-worker batch's merged profile can exceed its wall clock; that gap
    is the parallel speedup.  ``stage_sum() == total_ms`` still holds
    because it holds for each member.
    """
    total_ms = 0.0
    stages: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    metrics: Dict[str, object] = {}
    for profile in profiles:
        total_ms += profile.total_ms
        for stage, ms in profile.stages.items():
            stages[stage] = stages.get(stage, 0.0) + ms
        for stage, n in profile.counts.items():
            counts[stage] = counts.get(stage, 0) + n
        for key, value in profile.metrics.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                existing = metrics.get(key, 0)
                if isinstance(existing, (int, float)) and not isinstance(
                    existing, bool
                ):
                    metrics[key] = existing + value
                    continue
            metrics.setdefault(key, value)
    return Profile(total_ms, stages, counts, metrics, name)
