"""The metrics registry: counters, gauges and histograms.

Instrumented code records *what* happened (states explored, cache hits,
subset-construction blowup) through three primitive instrument kinds:

* :class:`Counter` -- a monotonically increasing total (``inc``),
* :class:`Gauge` -- a last-written value with a high-water mark (``set``),
* :class:`Histogram` -- a streaming summary of observations (``observe``),
  keeping count/total/min/max rather than the raw series.

A :class:`Metrics` object is a registry of named instruments; asking for a
name twice returns the same instrument, so call sites never coordinate.
Each :class:`~repro.obs.trace.Tracer` owns one registry, and
:func:`global_metrics` exposes a process-global registry for callers with no
natural tracer scope.

When observability is off, instrumented code holds a
:class:`NullMetrics` instead: every lookup returns the *identical* no-op
instrument (one shared object per kind, regardless of name), so the
disabled path allocates nothing and mutates nothing.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple, Union

Number = Union[int, float]


class Counter:
    """A named monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, delta: Number = 1) -> None:
        self.value += delta

    def as_record(self) -> Dict[str, object]:
        return {"type": "counter", "name": self.name, "value": self.value}

    def __repr__(self) -> str:
        return "Counter({!r}, {})".format(self.name, self.value)


class Gauge:
    """A named last-written value, remembering its high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.max_value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def set_max(self, value: Number) -> None:
        """Keep the high-water mark without overwriting a larger value."""
        if value > self.value:
            self.value = value
        if value > self.max_value:
            self.max_value = value

    def as_record(self) -> Dict[str, object]:
        return {
            "type": "gauge",
            "name": self.name,
            "value": self.value,
            "max": self.max_value,
        }

    def __repr__(self) -> str:
        return "Gauge({!r}, {})".format(self.name, self.value)


class Histogram:
    """A streaming summary of observed values (count/total/min/max)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Number = 0
        self.max: Number = 0

    def observe(self, value: Number) -> None:
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_record(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return "Histogram({!r}, n={}, mean={:.3f})".format(
            self.name, self.count, self.mean
        )


class Metrics:
    """A registry of named instruments; lookups create on first use."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def instruments(self) -> Iterator[Union[Counter, Gauge, Histogram]]:
        """Every registered instrument, in deterministic name order per kind."""
        for registry in (self._counters, self._gauges, self._histograms):
            for name in sorted(registry):
                yield registry[name]

    def snapshot(self) -> Dict[str, Number]:
        """A flat name -> value view (counters and gauges; histogram means)."""
        view: Dict[str, Number] = {}
        for name, counter in self._counters.items():
            view[name] = counter.value
        for name, gauge in self._gauges.items():
            view[name] = gauge.value
        for name, histogram in self._histograms.items():
            view[name] = histogram.mean
        return view

    def records(self) -> List[Dict[str, object]]:
        """JSONL-ready records for every instrument."""
        return [instrument.as_record() for instrument in self.instruments()]

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


# -- the disabled path ---------------------------------------------------------


class _NullCounter(Counter):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("<null>")

    def inc(self, delta: Number = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("<null>")

    def set(self, value: Number) -> None:
        pass

    def set_max(self, value: Number) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("<null>")

    def observe(self, value: Number) -> None:
        pass


#: the shared no-op instruments -- every NullMetrics lookup returns these
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullMetrics(Metrics):
    """The disabled registry: every name maps to one shared no-op instrument."""

    __slots__ = ()

    def counter(self, name: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return NULL_HISTOGRAM


NULL_METRICS = NullMetrics()

#: process-global registry for callers with no natural tracer scope
_GLOBAL_METRICS = Metrics()


def global_metrics() -> Metrics:
    """The process-wide metrics registry."""
    return _GLOBAL_METRICS
