"""CAPL-style timers (``msTimer`` / ``sTimer``).

A timer belongs to a node, is set with :meth:`Timer.set` and fires its
callback once when the delay elapses (CAPL timers are one-shot; programs
re-arm them inside the ``on timer`` handler for periodic behaviour).
"""

from __future__ import annotations

from typing import Callable, Optional

from .scheduler import ScheduledEvent, Scheduler


class Timer:
    """A one-shot timer bound to a scheduler."""

    def __init__(self, name: str, scheduler: Scheduler, unit_us: int = 1000) -> None:
        """*unit_us* is the tick size: 1000 for msTimer, 1_000_000 for sTimer."""
        self.name = name
        self._scheduler = scheduler
        self._unit_us = unit_us
        self._pending: Optional[ScheduledEvent] = None
        self._callback: Optional[Callable[["Timer"], None]] = None

    def on_expiry(self, callback: Callable[["Timer"], None]) -> None:
        """Install the expiry handler (the node's ``on timer`` procedure)."""
        self._callback = callback

    def set(self, duration: int) -> None:
        """(Re-)arm the timer for *duration* units (ms for msTimer)."""
        if duration < 0:
            raise ValueError("timer duration must be non-negative")
        self.cancel()
        self._pending = self._scheduler.after(duration * self._unit_us, self._fire)

    def cancel(self) -> None:
        """CAPL's ``cancelTimer``: disarm without firing."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def is_running(self) -> bool:
        return self._pending is not None and not self._pending.cancelled

    def time_to_elapse(self) -> int:
        """Remaining units until expiry (CAPL's ``timeToElapse``); -1 if idle."""
        if not self.is_running():
            return -1
        remaining_us = self._pending.time - self._scheduler.now
        return max(0, remaining_us // self._unit_us)

    def _fire(self) -> None:
        self._pending = None
        if self._callback is not None:
            self._callback(self)

    def __repr__(self) -> str:
        state = "running" if self.is_running() else "idle"
        return "Timer({!r}, {})".format(self.name, state)
