"""Simulated CAN bus network -- the CANoe substitute (paper Sec. IV-B).

A discrete-event simulation of a CAN segment: frames with identifier-based
arbitration, broadcast delivery, CAPL-style one-shot timers and a trace log
that converts to CSP traces for validating extracted models.
"""

from .frame import CanFrame, MAX_DLC, MAX_EXTENDED_ID, MAX_STANDARD_ID
from .scheduler import Action, ScheduledEvent, Scheduler
from .timers import Timer
from .tracelog import TraceEntry, TraceLog
from .bus import CanBus
from .node import CanNode, FunctionNode, ScriptedNode
from .gateway import GatewayNode, Route, forward_ids, forward_range

__all__ = [
    "Action",
    "CanBus",
    "CanFrame",
    "CanNode",
    "FunctionNode",
    "GatewayNode",
    "Route",
    "MAX_DLC",
    "MAX_EXTENDED_ID",
    "MAX_STANDARD_ID",
    "ScheduledEvent",
    "Scheduler",
    "ScriptedNode",
    "Timer",
    "TraceEntry",
    "TraceLog",
    "forward_ids",
    "forward_range",
]
