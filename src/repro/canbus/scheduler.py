"""Discrete-event scheduler driving the simulated network.

The CANoe substitute is a classic discrete-event simulation: every bus
transfer, timer expiry and node action is an event at a virtual timestamp
(microseconds).  The scheduler pops events in (time, sequence) order, so
same-time events run in scheduling order, which keeps runs deterministic --
a property the paper's Sec. II-B laments real concurrent systems lack, and
one that makes the extracted models directly comparable to simulation traces.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

Action = Callable[[], None]


class ScheduledEvent:
    """Handle for a scheduled action; allows cancellation."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: int, seq: int, action: Action) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Scheduler:
    """A monotonic virtual clock with an ordered pending-event queue."""

    def __init__(self) -> None:
        self._queue: List[ScheduledEvent] = []
        self._seq = 0
        self._now = 0

    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self._now

    def at(self, time: int, action: Action) -> ScheduledEvent:
        """Schedule *action* at absolute virtual time *time*."""
        if time < self._now:
            raise ValueError(
                "cannot schedule into the past ({} < {})".format(time, self._now)
            )
        event = ScheduledEvent(time, self._seq, action)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: int, action: Action) -> ScheduledEvent:
        """Schedule *action* after *delay* microseconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.at(self._now + delay, action)

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: int = 1_000_000) -> int:
        """Run events until the queue drains or virtual time passes *until*.

        Returns the number of events executed.  *max_events* guards against
        runaway self-rescheduling programs (e.g. a zero-period timer loop).
        """
        executed = 0
        while self._queue and executed < max_events:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            self.step()
            executed += 1
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return executed
