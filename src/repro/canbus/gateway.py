"""Gateways: bridging multiple CAN segments.

Modern in-vehicle networks are "increasingly complex, supporting distributed
concurrent processes" across several buses joined by gateway ECUs (paper
Sec. II-B); CANoe simulates such multi-bus topologies.  A
:class:`GatewayNode` participates in two (or more) segments and forwards
frames between them according to a routing table -- optionally remapping
identifiers, the way body/powertrain gateways isolate domains.

Security-wise the gateway is the classic pinch point: a compromised gateway
can drop, inject or rewrite traffic between domains, and a correct one is
the firewall that keeps an infotainment attacker away from powertrain
frames.  Both roles are expressible here (routing filters / rewrite hooks).
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from .bus import CanBus
from .frame import CanFrame
from .node import CanNode


class Route(NamedTuple):
    """One routing rule: forward matching frames to a target bus.

    *predicate* decides whether a frame is forwarded; *remap_id* optionally
    gives the identifier the frame carries on the target segment (gateways
    commonly translate between domain-specific ID ranges).
    """

    target: CanBus
    predicate: Callable[[CanFrame], bool]
    remap_id: Optional[Callable[[int], int]] = None


def forward_ids(*can_ids: int) -> Callable[[CanFrame], bool]:
    """A predicate forwarding exactly the given identifiers."""
    allowed = frozenset(can_ids)
    return lambda frame: frame.can_id in allowed


def forward_range(low: int, high: int) -> Callable[[CanFrame], bool]:
    """A predicate forwarding identifiers in ``[low, high]``."""
    return lambda frame: low <= frame.can_id <= high


class _GatewayPort(CanNode):
    """The gateway's presence on one segment."""

    def __init__(self, name: str, bus: CanBus, gateway: "GatewayNode") -> None:
        super().__init__(name, bus)
        self._gateway = gateway

    def on_message(self, frame: CanFrame) -> None:
        self._gateway._route(self.bus, frame)


class GatewayNode:
    """A multi-port gateway ECU joining CAN segments.

    Attach it to buses with :meth:`attach`; add forwarding rules with
    :meth:`add_route`.  Frames are forwarded once (no echo back to the
    segment they arrived on; a loop guard drops frames already in flight
    through this gateway, so cyclic topologies do not storm).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._ports: Dict[CanBus, _GatewayPort] = {}
        self._routes: Dict[CanBus, List[Route]] = {}
        self._forwarding = False
        #: every (source bus name, frame) this gateway forwarded, for tests
        self.forwarded: List[CanFrame] = []
        #: frames matching no route (visibility into the firewall behaviour)
        self.dropped: List[CanFrame] = []

    def attach(self, bus: CanBus) -> "GatewayNode":
        if bus in self._ports:
            raise ValueError("gateway already attached to {!r}".format(bus.name))
        port_name = "{}@{}".format(self.name, bus.name)
        self._ports[bus] = _GatewayPort(port_name, bus, self)
        self._routes.setdefault(bus, [])
        return self

    def add_route(
        self,
        source: CanBus,
        target: CanBus,
        predicate: Callable[[CanFrame], bool],
        remap_id: Optional[Callable[[int], int]] = None,
    ) -> "GatewayNode":
        """Forward frames arriving on *source* that satisfy *predicate*."""
        if source not in self._ports or target not in self._ports:
            raise ValueError("attach the gateway to both buses first")
        if source is target:
            raise ValueError("a route may not loop back to its source bus")
        self._routes[source].append(Route(target, predicate, remap_id))
        return self

    def _route(self, source: CanBus, frame: CanFrame) -> None:
        if self._forwarding:
            return  # loop guard: do not re-forward our own forwards
        matched = False
        for route in self._routes.get(source, []):
            if not route.predicate(frame):
                continue
            matched = True
            outgoing = frame
            if route.remap_id is not None:
                outgoing = CanFrame(
                    route.remap_id(frame.can_id),
                    frame.data,
                    frame.extended,
                    frame.name,
                    frame.remote,
                )
            self._forwarding = True
            try:
                self._ports[route.target].output(outgoing)
            finally:
                self._forwarding = False
            self.forwarded.append(outgoing)
        if not matched:
            self.dropped.append(frame)

    def port(self, bus: CanBus) -> CanNode:
        """The gateway's node object on *bus* (for bus-off scenarios etc.)."""
        return self._ports[bus]
