"""The simulated CAN bus with identifier-based arbitration.

Transmission requests from nodes queue at the bus.  Whenever the bus goes
idle the pending frame with the dominant (lowest) identifier wins
arbitration -- the defining media-access rule of CAN -- occupies the bus for
its wire time at the configured bitrate, is logged, and is then delivered to
every attached node except the transmitter.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING, Tuple

from .frame import CanFrame
from .scheduler import Scheduler
from .tracelog import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .node import CanNode


class CanBus:
    """A single CAN segment: nodes, arbitration, delivery and logging."""

    def __init__(
        self,
        scheduler: Scheduler,
        bitrate: int = 500_000,
        name: str = "CAN1",
    ) -> None:
        if bitrate <= 0:
            raise ValueError("bitrate must be positive")
        self.scheduler = scheduler
        self.bitrate = bitrate
        self.name = name
        self.log = TraceLog()
        self.nodes: List["CanNode"] = []
        self._pending: List[Tuple[int, "CanNode", CanFrame]] = []
        self._pending_seq = 0
        self._busy = False
        #: optional fault-injection hook: return False to drop a frame
        #: (used by attack scenarios to model jamming / selective drops)
        self.delivery_filter: Optional[Callable[["CanNode", CanFrame], bool]] = None

    # -- membership ---------------------------------------------------------------

    def attach(self, node: "CanNode") -> None:
        if node in self.nodes:
            raise ValueError("node {!r} already attached".format(node.name))
        self.nodes.append(node)

    def detach(self, node: "CanNode") -> None:
        self.nodes.remove(node)

    # -- transmission -----------------------------------------------------------------

    def frame_time_us(self, frame: CanFrame) -> int:
        """Wire occupancy of a frame at the configured bitrate, in microseconds."""
        return max(1, (frame.bit_length() * 1_000_000) // self.bitrate)

    def transmit(self, sender: "CanNode", frame: CanFrame) -> None:
        """Request transmission; the frame enters arbitration."""
        self._pending.append((self._pending_seq, sender, frame))
        self._pending_seq += 1
        if not self._busy:
            self._start_arbitration()

    def _start_arbitration(self) -> None:
        if self._busy or not self._pending:
            return
        # dominant (lowest) identifier wins; FIFO among equal identifiers
        winner = min(
            self._pending, key=lambda item: (item[2].arbitration_key(), item[0])
        )
        self._pending.remove(winner)
        _, sender, frame = winner
        self._busy = True
        self.scheduler.after(
            self.frame_time_us(frame), lambda: self._complete(sender, frame)
        )

    def _complete(self, sender: "CanNode", frame: CanFrame) -> None:
        self._busy = False
        dropped = False
        if self.delivery_filter is not None and not self.delivery_filter(sender, frame):
            dropped = True
        if not dropped:
            self.log.record(self.scheduler.now, sender.name, frame)
            for node in list(self.nodes):
                if node is not sender:
                    node.deliver(frame)
        self._start_arbitration()

    # -- error handling -----------------------------------------------------------------

    def inject_error_frame(self) -> None:
        """Broadcast an error frame: every node's error handler fires.

        Error frames are not data frames (they never reach the trace log's
        message stream); they model electrical faults or deliberate
        error-flag flooding -- the classic bus-off attack vector.
        """
        for node in list(self.nodes):
            node.on_error_frame()

    def force_bus_off(self, node: "CanNode") -> None:
        """Drive *node* into bus-off: it is detached and notified.

        Real CAN controllers go bus-off when their transmit error counter
        exceeds 255; here the transition is commanded directly (by a test or
        an attack scenario) since we do not simulate bit-level errors.
        """
        if node in self.nodes:
            self.detach(node)
            node.on_bus_off()

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> None:
        """Fire every node's start handler (CANoe's measurement start)."""
        for node in list(self.nodes):
            node.on_start()

    def run(self, until: Optional[int] = None, max_events: int = 1_000_000) -> int:
        """Start all nodes (if not yet started) and run the simulation."""
        return self.scheduler.run(until, max_events)

    def simulate(self, until: Optional[int] = None, max_events: int = 1_000_000) -> TraceLog:
        """Convenience: start nodes, run to completion, return the trace log."""
        self.start()
        self.run(until, max_events)
        return self.log
