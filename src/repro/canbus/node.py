"""Network nodes: the simulated ECUs attached to the bus.

:class:`CanNode` is the base class -- it owns timers, can transmit, and
receives every frame on the bus (CAN is a broadcast medium; filtering is the
node's business).  Two ready-made subclasses cover common test needs:
:class:`FunctionNode` builds a node from plain callables, and
:class:`ScriptedNode` replays a fixed transmit schedule (useful as a traffic
generator or as a simple attacker).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .bus import CanBus
from .frame import CanFrame
from .timers import Timer


class CanNode:
    """Base class for bus participants."""

    def __init__(self, name: str, bus: CanBus) -> None:
        self.name = name
        self.bus = bus
        self.timers: Dict[str, Timer] = {}
        self.received: List[CanFrame] = []
        bus.attach(self)

    # -- outbound -----------------------------------------------------------------

    def output(self, frame: CanFrame) -> None:
        """CAPL's ``output()``: hand a frame to the bus for arbitration."""
        self.bus.transmit(self, frame)

    # -- timers ---------------------------------------------------------------------

    def create_timer(self, name: str, unit_us: int = 1000) -> Timer:
        timer = Timer(name, self.bus.scheduler, unit_us)
        timer.on_expiry(self._on_timer)
        self.timers[name] = timer
        return timer

    def set_timer(self, name: str, duration: int) -> None:
        self.timers[name].set(duration)

    def cancel_timer(self, name: str) -> None:
        self.timers[name].cancel()

    # -- inbound ---------------------------------------------------------------------

    def deliver(self, frame: CanFrame) -> None:
        """Called by the bus on every broadcast frame from another node."""
        self.received.append(frame)
        self.on_message(frame)

    # -- overridable event handlers ------------------------------------------------------

    def on_start(self) -> None:
        """Measurement start (CAPL's ``on start``)."""

    def on_message(self, frame: CanFrame) -> None:
        """A frame arrived (CAPL's ``on message``)."""

    def on_timer(self, timer: Timer) -> None:
        """A timer elapsed (CAPL's ``on timer``)."""

    def on_error_frame(self) -> None:
        """An error frame was observed on the bus (CAPL's ``on errorFrame``)."""

    def on_bus_off(self) -> None:
        """This node's controller went bus-off (CAPL's ``on busOff``)."""

    def _on_timer(self, timer: Timer) -> None:
        self.on_timer(timer)

    def __repr__(self) -> str:
        return "{}({!r})".format(type(self).__name__, self.name)


class FunctionNode(CanNode):
    """A node assembled from plain callables -- handy in tests."""

    def __init__(
        self,
        name: str,
        bus: CanBus,
        on_start: Optional[Callable[["FunctionNode"], None]] = None,
        on_message: Optional[Callable[["FunctionNode", CanFrame], None]] = None,
        on_timer: Optional[Callable[["FunctionNode", Timer], None]] = None,
    ) -> None:
        super().__init__(name, bus)
        self._start_handler = on_start
        self._message_handler = on_message
        self._timer_handler = on_timer

    def on_start(self) -> None:
        if self._start_handler is not None:
            self._start_handler(self)

    def on_message(self, frame: CanFrame) -> None:
        if self._message_handler is not None:
            self._message_handler(self, frame)

    def on_timer(self, timer: Timer) -> None:
        if self._timer_handler is not None:
            self._timer_handler(self, timer)


class ScriptedNode(CanNode):
    """Replays a fixed schedule of (delay_us, frame) transmissions.

    The schedule is relative to measurement start.  Doubles as a blunt
    attacker model: an injection attack is just a scripted node sending
    frames it should not.
    """

    def __init__(
        self,
        name: str,
        bus: CanBus,
        schedule: Sequence[Tuple[int, CanFrame]] = (),
    ) -> None:
        super().__init__(name, bus)
        self.schedule = list(schedule)

    def on_start(self) -> None:
        for delay, frame in self.schedule:
            self.bus.scheduler.after(delay, self._transmit_later(frame))

    def _transmit_later(self, frame: CanFrame) -> Callable[[], None]:
        return lambda: self.output(frame)
