"""Simulation trace logging -- and the bridge from bus traces to CSP traces.

Every frame transfer is logged as a :class:`TraceEntry`.  The log renders in
a CANoe-trace-window style and, importantly for validation, converts into a
sequence of CSP events (``send.msgName`` / ``rec.msgName``) so simulation
runs can be replayed against the extracted CSP models -- closing the loop of
the paper's Fig. 1 workflow.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..csp.events import Event
from .frame import CanFrame


class TraceEntry:
    """One bus transfer: timestamp, transmitting node and the frame."""

    __slots__ = ("time", "sender", "frame")

    def __init__(self, time: int, sender: str, frame: CanFrame) -> None:
        self.time = time
        self.sender = sender
        self.frame = frame

    def to_doc(self) -> Dict[str, Any]:
        """The JSON-object form of one transfer (tracelog JSONL line)."""
        doc: Dict[str, Any] = {
            "t": self.time,
            "sender": self.sender,
            "id": self.frame.can_id,
            "data": list(self.frame.data),
        }
        if self.frame.name is not None:
            doc["name"] = self.frame.name
        if self.frame.extended:
            doc["extended"] = True
        if self.frame.remote:
            doc["remote"] = True
        return doc

    def __repr__(self) -> str:
        return "TraceEntry(t={}, {} -> {!r})".format(self.time, self.sender, self.frame)


class TraceLog:
    """An append-only log of bus transfers."""

    def __init__(self) -> None:
        self.entries: List[TraceEntry] = []

    def record(self, time: int, sender: str, frame: CanFrame) -> None:
        self.entries.append(TraceEntry(time, sender, frame))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def frames(self) -> List[CanFrame]:
        return [entry.frame for entry in self.entries]

    def names(self) -> List[str]:
        """Symbolic message names in transfer order (id in hex when unnamed)."""
        return [
            entry.frame.name or "0x{:X}".format(entry.frame.can_id)
            for entry in self.entries
        ]

    def render(self) -> str:
        """A CANoe-trace-window-style textual rendering."""
        lines = ["{:>10}  {:<12} {:<10} {}".format("time(us)", "node", "id", "data")]
        for entry in self.entries:
            payload = " ".join("{:02X}".format(b) for b in entry.frame.data)
            label = entry.frame.name or ""
            lines.append(
                "{:>10}  {:<12} 0x{:<8X} {}  {}".format(
                    entry.time, entry.sender, entry.frame.can_id, payload, label
                )
            )
        return "\n".join(lines)

    def to_jsonl(self) -> str:
        """The log as tracelog JSONL -- the canonical rv interchange format.

        One sorted-key JSON object per transfer (see
        :meth:`TraceEntry.to_doc`), newline-terminated; byte-deterministic
        for a given log.  :mod:`repro.rv.ingest` parses this format (and
        round-trips every field the CSP event mappings depend on).
        """
        return "".join(
            json.dumps(entry.to_doc(), sort_keys=True) + "\n"
            for entry in self.entries
        )

    def write_jsonl(self, path: str) -> None:
        """Write :meth:`to_jsonl` to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def to_csp_events(
        self,
        event_for: Optional[Callable[[TraceEntry], Optional[Event]]] = None,
    ) -> Tuple[Event, ...]:
        """Convert the log into a CSP trace.

        By default each transfer becomes the event ``<sender_channel>.<name>``
        where the channel is the *sender's* transmit channel name, matching
        the translator's convention (VMG transmits on ``send``, the ECU
        replies on ``rec``).  Pass *event_for* to customise; returning None
        skips an entry.
        """
        events: List[Event] = []
        for entry in self.entries:
            if event_for is not None:
                event = event_for(entry)
                if event is not None:
                    events.append(event)
                continue
            name = entry.frame.name or "0x{:X}".format(entry.frame.can_id)
            events.append(Event(entry.sender, (name,)))
        return tuple(events)
