"""CAN frames.

A CAN data frame carries an 11-bit (or 29-bit extended) identifier and up to
8 data bytes.  The identifier doubles as the arbitration priority: lower
numeric identifiers win the bus.  Frames here also carry an optional symbolic
*name* (the message name from a CANdb database), which is how the CAPL layer
and the model extractor refer to them.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

MAX_STANDARD_ID = 0x7FF
MAX_EXTENDED_ID = 0x1FFFFFFF
MAX_DLC = 8


class CanFrame:
    """An immutable CAN data frame."""

    __slots__ = ("can_id", "data", "extended", "name", "remote")

    def __init__(
        self,
        can_id: int,
        data: Sequence[int] = (),
        extended: bool = False,
        name: Optional[str] = None,
        remote: bool = False,
    ) -> None:
        limit = MAX_EXTENDED_ID if extended else MAX_STANDARD_ID
        if not 0 <= can_id <= limit:
            raise ValueError(
                "CAN id {:#x} out of range for {} frame".format(
                    can_id, "extended" if extended else "standard"
                )
            )
        payload = tuple(int(b) for b in data)
        if len(payload) > MAX_DLC:
            raise ValueError("CAN payload is at most {} bytes".format(MAX_DLC))
        for byte in payload:
            if not 0 <= byte <= 0xFF:
                raise ValueError("payload byte {} out of range".format(byte))
        object.__setattr__(self, "can_id", can_id)
        object.__setattr__(self, "data", payload)
        object.__setattr__(self, "extended", extended)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "remote", remote)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CanFrame is immutable")

    @property
    def dlc(self) -> int:
        """Data length code: the number of payload bytes."""
        return len(self.data)

    def byte(self, index: int) -> int:
        """Payload byte accessor mirroring CAPL's ``msg.byte(i)``; 0 when absent."""
        if 0 <= index < len(self.data):
            return self.data[index]
        return 0

    def with_byte(self, index: int, value: int) -> "CanFrame":
        """A copy with payload byte *index* set (payload grows if needed)."""
        if not 0 <= value <= 0xFF:
            raise ValueError("payload byte {} out of range".format(value))
        if not 0 <= index < MAX_DLC:
            raise ValueError("byte index {} out of range".format(index))
        padded = list(self.data) + [0] * (index + 1 - len(self.data))
        padded[index] = value
        return CanFrame(self.can_id, padded, self.extended, self.name, self.remote)

    def with_data(self, data: Iterable[int]) -> "CanFrame":
        return CanFrame(self.can_id, tuple(data), self.extended, self.name, self.remote)

    def arbitration_key(self) -> Tuple[int, int]:
        """Sort key for bus arbitration: standard beats extended on equal bits."""
        return (self.can_id, 1 if self.extended else 0)

    def bit_length(self) -> int:
        """Approximate frame length on the wire (for timing), in bits.

        Standard frame overhead is ~47 bits plus stuffing; we use the common
        worst-case-free approximation 47 + 8*dlc (64 + 8*dlc extended).
        """
        overhead = 67 if self.extended else 47
        return overhead + 8 * self.dlc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CanFrame):
            return NotImplemented
        return (
            self.can_id == other.can_id
            and self.data == other.data
            and self.extended == other.extended
            and self.remote == other.remote
        )

    def __hash__(self) -> int:
        return hash((self.can_id, self.data, self.extended, self.remote))

    def __repr__(self) -> str:
        label = self.name or "0x{:X}".format(self.can_id)
        payload = " ".join("{:02X}".format(b) for b in self.data)
        return "CanFrame({}, [{}])".format(label, payload)
