"""Refinement checker for CSP -- the FDR substitute (paper Sec. IV-D).

Implements specification normalisation, trace and stable-failures refinement
with shortest counterexamples, plus the standard deadlock / divergence /
determinism assertions, over the LTSs compiled by :mod:`repro.csp`.
"""

from .counterexample import (
    Counterexample,
    DeadlockCounterexample,
    DivergenceCounterexample,
    FailureCounterexample,
    NondeterminismCounterexample,
    TraceCounterexample,
)
from .compress import bisimulation_classes, compression_ratio, minimise
from .normalise import (
    NormalisedSpec,
    minimal_bitsets,
    minimal_sets,
    normalise,
    tau_cycle_states,
)
from .refine import (
    CheckResult,
    LazyImplementation,
    check_deadlock_free,
    check_deterministic,
    check_divergence_free,
    check_failures_refinement,
    check_failures_refinement_from,
    check_fd_refinement,
    check_trace_refinement,
    check_trace_refinement_from,
)
from .assertions import (
    Assertion,
    PropertyAssertion,
    RefinementAssertion,
    Session,
)

__all__ = [
    "Assertion",
    "CheckResult",
    "Counterexample",
    "DeadlockCounterexample",
    "DivergenceCounterexample",
    "FailureCounterexample",
    "LazyImplementation",
    "NondeterminismCounterexample",
    "NormalisedSpec",
    "PropertyAssertion",
    "RefinementAssertion",
    "Session",
    "TraceCounterexample",
    "bisimulation_classes",
    "check_deadlock_free",
    "check_deterministic",
    "check_divergence_free",
    "check_failures_refinement",
    "check_failures_refinement_from",
    "check_fd_refinement",
    "check_trace_refinement",
    "check_trace_refinement_from",
    "compression_ratio",
    "minimal_bitsets",
    "minimal_sets",
    "minimise",
    "normalise",
    "tau_cycle_states",
]
