"""Refinement checker for CSP -- the FDR substitute (paper Sec. IV-D).

Implements specification normalisation, trace and stable-failures refinement
with shortest counterexamples, plus the standard deadlock / divergence /
determinism assertions, over the LTSs compiled by :mod:`repro.csp`.
"""

from .counterexample import (
    Counterexample,
    DeadlockCounterexample,
    DivergenceCounterexample,
    FailureCounterexample,
    NondeterminismCounterexample,
    TraceCounterexample,
)
from .compress import bisimulation_classes, compression_ratio, minimise
from .normalise import (
    NormalisedSpec,
    minimal_bitsets,
    minimal_sets,
    normalise,
    tau_cycle_states,
)
from .refine import (
    CheckResult,
    LazyImplementation,
    check_deadlock_free,
    check_deterministic,
    check_divergence_free,
    check_failures_refinement,
    check_failures_refinement_from,
    check_fd_refinement,
    check_trace_refinement,
    check_trace_refinement_from,
)
from .assertions import (
    Assertion,
    fd_refinement,
    PropertyAssertion,
    RefinementAssertion,
    Session,
    deadlock_free,
    deterministic,
    divergence_free,
    failures_refinement,
    trace_refinement,
)

__all__ = [
    "Assertion",
    "CheckResult",
    "Counterexample",
    "DeadlockCounterexample",
    "DivergenceCounterexample",
    "FailureCounterexample",
    "LazyImplementation",
    "NondeterminismCounterexample",
    "NormalisedSpec",
    "PropertyAssertion",
    "RefinementAssertion",
    "Session",
    "TraceCounterexample",
    "bisimulation_classes",
    "check_deadlock_free",
    "check_deterministic",
    "check_divergence_free",
    "check_failures_refinement",
    "check_failures_refinement_from",
    "check_fd_refinement",
    "check_trace_refinement",
    "check_trace_refinement_from",
    "deadlock_free",
    "deterministic",
    "divergence_free",
    "failures_refinement",
    "fd_refinement",
    "compression_ratio",
    "minimal_bitsets",
    "minimal_sets",
    "minimise",
    "normalise",
    "tau_cycle_states",
    "trace_refinement",
]
