"""Specification normalisation (the first stage of an FDR-style check).

Refinement checking compares every behaviour of the implementation against
the specification.  To make that comparison a simple simulation, the
specification LTS is first *normalised*: tau transitions are closed away and
the result is made deterministic by the subset construction, exactly as FDR
pre-processes the left-hand side of a refinement assertion.

For the stable-failures model each normalised node additionally records the
*minimal acceptance sets* -- the minimal sets of events offered by the stable
states inside the node.  An implementation failure ``(s, X)`` is allowed iff
some minimal acceptance is contained in the events the implementation still
offers.

Internally the automaton is keyed on the interned event ids of the source
LTS's :class:`~repro.csp.events.AlphabetTable` and acceptances are int
bitsets; the Event-typed views (``afters``, ``acceptances``, ``after`` ...)
decode through the table, so existing callers see the same API as before.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..csp.events import AlphabetTable, Event, TAU_ID
from ..csp.lts import LTS, StateId

NodeId = int


class NormalisedSpec:
    """A deterministic, tau-free automaton with acceptance annotations."""

    def __init__(self, table: Optional[AlphabetTable] = None) -> None:
        self.initial: NodeId = 0
        self.table: AlphabetTable = table if table is not None else AlphabetTable()
        #: per-node transition function on interned visible-event ids
        self.afters_ids: List[Dict[int, NodeId]] = []
        #: per-node minimal acceptance bitsets (bit i = event with id i);
        #: empty tuple means the node has no stable states (the spec diverges
        #: there and refuses nothing stably)
        self.acceptance_bits: List[Tuple[int, ...]] = []
        #: the subset of original spec states each node represents
        self.members: List[FrozenSet[StateId]] = []
        #: True when the node contains a state on a tau cycle
        self.divergent: List[bool] = []

    @property
    def node_count(self) -> int:
        return len(self.afters_ids)

    # -- Event-typed views (the public API; decodes through the table) -------

    @property
    def afters(self) -> List[Dict[Event, NodeId]]:
        event_of = self.table.event_of
        return [
            {event_of(eid): node for eid, node in row.items()}
            for row in self.afters_ids
        ]

    @property
    def acceptances(self) -> List[Tuple[FrozenSet[Event], ...]]:
        decode = self.table.decode_bits
        return [
            tuple(decode(bits) for bits in row) for row in self.acceptance_bits
        ]

    def after(self, node: NodeId, event: Event) -> Optional[NodeId]:
        eid = self.table.id_of(event)
        if eid is None:
            return None
        return self.afters_ids[node].get(eid)

    def events(self, node: NodeId) -> FrozenSet[Event]:
        event_of = self.table.event_of
        return frozenset(event_of(eid) for eid in self.afters_ids[node])

    def allows_stable_refusal(self, node: NodeId, offered: FrozenSet[Event]) -> bool:
        """May the spec, at this node, stably offer no more than *offered*?

        True iff some minimal acceptance of the node is contained in
        *offered* -- i.e. the spec itself has a stable state that offers a
        subset of what the implementation offers, so the implementation's
        refusal is also a spec refusal.
        """
        return self.allows_stable_refusal_bits(
            node, self.table.encode_known(offered)
        )

    def allows_stable_refusal_bits(self, node: NodeId, offered_bits: int) -> bool:
        """Bitset form of :meth:`allows_stable_refusal` (the engine hot path)."""
        return any(
            bits & ~offered_bits == 0 for bits in self.acceptance_bits[node]
        )

    def as_lts(self) -> LTS:
        """View the normalised automaton as a (deterministic, tau-free) LTS.

        Shares this spec's alphabet table.  Used by the quickcheck oracle
        that checks normalisation is idempotent at the trace level:
        re-normalising ``as_lts()`` must not change the trace behaviour.
        """
        lts = LTS(self.table)
        for _ in range(self.node_count):
            lts.add_state()
        for node, row in enumerate(self.afters_ids):
            for eid, target in row.items():
                lts.add_transition_id(node, eid, target)
        lts.initial = self.initial
        return lts


def minimal_sets(sets: Set[FrozenSet[Event]]) -> Tuple[FrozenSet[Event], ...]:
    """Keep only the subset-minimal elements, in a deterministic order."""
    kept: List[FrozenSet[Event]] = []
    for candidate in sorted(sets, key=lambda s: (len(s), sorted(str(e) for e in s))):
        if not any(existing <= candidate for existing in kept):
            kept.append(candidate)
    return tuple(kept)


def minimal_bitsets(sets: Set[int], table: AlphabetTable) -> Tuple[int, ...]:
    """Bitset analogue of :func:`minimal_sets`, same deterministic order."""

    def sort_key(bits: int) -> Tuple[int, List[str]]:
        keys = []
        remaining = bits
        while remaining:
            low = remaining & -remaining
            keys.append(table.sort_key(low.bit_length() - 1))
            remaining ^= low
        return (len(keys), sorted(keys))

    kept: List[int] = []
    for candidate in sorted(sets, key=sort_key):
        if not any(existing & ~candidate == 0 for existing in kept):
            kept.append(candidate)
    return tuple(kept)


def tau_cycle_states(lts: LTS) -> FrozenSet[StateId]:
    """States lying on a cycle of tau transitions (divergent states).

    Uses Tarjan's SCC algorithm restricted to tau edges; a state diverges if
    its tau-SCC has more than one state or it has a tau self-loop.  Frames
    carry an absolute edge index into the kernel's flat arrays, so resuming
    a frame is pointer arithmetic instead of re-listing tau successors.
    """
    index_counter = [0]
    index: Dict[StateId, int] = {}
    lowlink: Dict[StateId, int] = {}
    on_stack: Set[StateId] = set()
    stack: List[StateId] = []
    divergent: Set[StateId] = set()
    successors_span = lts.successors_span

    # iterative Tarjan to avoid recursion limits on long tau chains; the
    # per-frame cursor is an edge index into the shared arrays (-1 = first
    # visit, before the frame's range is known)
    for root in lts.iter_states():
        if root in index:
            continue
        work: List[Tuple[StateId, int]] = [(root, -1)]
        while work:
            state, cursor = work[-1]
            events, targets, lo, hi = successors_span(state)
            if cursor < 0:
                index[state] = index_counter[0]
                lowlink[state] = index_counter[0]
                index_counter[0] += 1
                stack.append(state)
                on_stack.add(state)
                cursor = lo
            advanced = False
            while cursor < hi:
                if events[cursor] != TAU_ID:
                    cursor += 1
                    continue
                target = targets[cursor]
                cursor += 1
                if target not in index:
                    work[-1] = (state, cursor)
                    work.append((target, -1))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[state] = min(lowlink[state], index[target])
            if advanced:
                continue
            work.pop()
            if lowlink[state] == index[state]:
                component: List[StateId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == state:
                        break
                if len(component) > 1:
                    divergent.update(component)
                else:
                    only = component[0]
                    events, targets, lo, hi = successors_span(only)
                    if any(
                        events[i] == TAU_ID and targets[i] == only
                        for i in range(lo, hi)
                    ):
                        divergent.add(only)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[state])
    return frozenset(divergent)


def normalise(lts: LTS, obs=None) -> NormalisedSpec:
    """Normalise an LTS: tau-closure plus subset construction with acceptances.

    With an enabled tracer as *obs*, records the subset-construction blowup
    (``normalise.input_states`` vs ``normalise.nodes``) into its metrics.
    """
    table = lts.table
    spec = NormalisedSpec(table)
    divergent_states = tau_cycle_states(lts)
    node_index: Dict[FrozenSet[StateId], NodeId] = {}
    successors_span = lts.successors_span

    def node_of(members: FrozenSet[StateId]) -> NodeId:
        existing = node_index.get(members)
        if existing is not None:
            return existing
        node = len(spec.afters_ids)
        node_index[members] = node
        spec.afters_ids.append({})
        spec.members.append(members)
        spec.divergent.append(any(state in divergent_states for state in members))
        acceptance_sets: Set[int] = set()
        for state in members:
            events, _targets, lo, hi = successors_span(state)
            bits = 0
            for i in range(lo, hi):
                eid = events[i]
                if eid == TAU_ID:
                    # an unstable state contributes no acceptance
                    bits = -1
                    break
                bits |= 1 << eid
            if bits >= 0:
                acceptance_sets.add(bits)
        spec.acceptance_bits.append(minimal_bitsets(acceptance_sets, table))
        return node

    start = lts.tau_closure(frozenset([lts.initial]))
    spec.initial = node_of(start)
    work: deque = deque([start])
    expanded: Set[NodeId] = set()
    while work:
        members = work.popleft()
        node = node_index[members]
        if node in expanded:
            continue
        expanded.add(node)
        by_event: Dict[int, Set[StateId]] = {}
        for state in members:
            events, targets, lo, hi = successors_span(state)
            for i in range(lo, hi):
                eid = events[i]
                if eid == TAU_ID:
                    continue
                by_event.setdefault(eid, set()).add(targets[i])
        for eid, targets in sorted(
            by_event.items(), key=lambda kv: table.sort_key(kv[0])
        ):
            closure = lts.tau_closure(frozenset(targets))
            known = closure in node_index
            spec.afters_ids[node][eid] = node_of(closure)
            if not known:
                work.append(closure)
    if obs is not None and obs.enabled:
        metrics = obs.metrics
        metrics.counter("normalise.input_states").inc(lts.state_count)
        metrics.counter("normalise.nodes").inc(spec.node_count)
    return spec
