"""Specification normalisation (the first stage of an FDR-style check).

Refinement checking compares every behaviour of the implementation against
the specification.  To make that comparison a simple simulation, the
specification LTS is first *normalised*: tau transitions are closed away and
the result is made deterministic by the subset construction, exactly as FDR
pre-processes the left-hand side of a refinement assertion.

For the stable-failures model each normalised node additionally records the
*minimal acceptance sets* -- the minimal sets of events offered by the stable
states inside the node.  An implementation failure ``(s, X)`` is allowed iff
some minimal acceptance is contained in the events the implementation still
offers.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..csp.events import Event
from ..csp.lts import LTS, StateId

NodeId = int


class NormalisedSpec:
    """A deterministic, tau-free automaton with acceptance annotations."""

    def __init__(self) -> None:
        self.initial: NodeId = 0
        #: per-node transition function on visible events (tick included)
        self.afters: List[Dict[Event, NodeId]] = []
        #: per-node minimal acceptance sets; empty tuple means the node has no
        #: stable states (the spec diverges there and refuses nothing stably)
        self.acceptances: List[Tuple[FrozenSet[Event], ...]] = []
        #: the subset of original spec states each node represents
        self.members: List[FrozenSet[StateId]] = []
        #: True when the node contains a state on a tau cycle
        self.divergent: List[bool] = []

    @property
    def node_count(self) -> int:
        return len(self.afters)

    def after(self, node: NodeId, event: Event) -> Optional[NodeId]:
        return self.afters[node].get(event)

    def events(self, node: NodeId) -> FrozenSet[Event]:
        return frozenset(self.afters[node])

    def allows_stable_refusal(self, node: NodeId, offered: FrozenSet[Event]) -> bool:
        """May the spec, at this node, stably offer no more than *offered*?

        True iff some minimal acceptance of the node is contained in
        *offered* -- i.e. the spec itself has a stable state that offers a
        subset of what the implementation offers, so the implementation's
        refusal is also a spec refusal.
        """
        return any(acceptance <= offered for acceptance in self.acceptances[node])


def minimal_sets(sets: Set[FrozenSet[Event]]) -> Tuple[FrozenSet[Event], ...]:
    """Keep only the subset-minimal elements, in a deterministic order."""
    kept: List[FrozenSet[Event]] = []
    for candidate in sorted(sets, key=lambda s: (len(s), sorted(str(e) for e in s))):
        if not any(existing <= candidate for existing in kept):
            kept.append(candidate)
    return tuple(kept)


def tau_cycle_states(lts: LTS) -> FrozenSet[StateId]:
    """States lying on a cycle of tau transitions (divergent states).

    Uses Tarjan's SCC algorithm restricted to tau edges; a state diverges if
    its tau-SCC has more than one state or it has a tau self-loop.
    """
    index_counter = [0]
    index: Dict[StateId, int] = {}
    lowlink: Dict[StateId, int] = {}
    on_stack: Set[StateId] = set()
    stack: List[StateId] = []
    divergent: Set[StateId] = set()

    # iterative Tarjan to avoid recursion limits on long tau chains
    for root in lts.iter_states():
        if root in index:
            continue
        work: List[Tuple[StateId, int]] = [(root, 0)]
        while work:
            state, child_index = work[-1]
            if child_index == 0:
                index[state] = index_counter[0]
                lowlink[state] = index_counter[0]
                index_counter[0] += 1
                stack.append(state)
                on_stack.add(state)
            successors = lts.tau_successors(state)
            advanced = False
            while child_index < len(successors):
                target = successors[child_index]
                child_index += 1
                if target not in index:
                    work[-1] = (state, child_index)
                    work.append((target, 0))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[state] = min(lowlink[state], index[target])
            if advanced:
                continue
            work.pop()
            if lowlink[state] == index[state]:
                component: List[StateId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == state:
                        break
                if len(component) > 1:
                    divergent.update(component)
                else:
                    only = component[0]
                    if only in lts.tau_successors(only):
                        divergent.add(only)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[state])
    return frozenset(divergent)


def normalise(lts: LTS) -> NormalisedSpec:
    """Normalise an LTS: tau-closure plus subset construction with acceptances."""
    spec = NormalisedSpec()
    divergent_states = tau_cycle_states(lts)
    node_index: Dict[FrozenSet[StateId], NodeId] = {}

    def node_of(members: FrozenSet[StateId]) -> NodeId:
        existing = node_index.get(members)
        if existing is not None:
            return existing
        node = len(spec.afters)
        node_index[members] = node
        spec.afters.append({})
        spec.members.append(members)
        spec.divergent.append(any(state in divergent_states for state in members))
        acceptance_sets: Set[FrozenSet[Event]] = set()
        for state in members:
            if lts.is_stable(state):
                acceptance_sets.add(
                    frozenset(e for e, _ in lts.successors(state))
                )
        spec.acceptances.append(minimal_sets(acceptance_sets))
        return node

    start = lts.tau_closure(frozenset([lts.initial]))
    spec.initial = node_of(start)
    work: deque = deque([start])
    expanded: Set[NodeId] = set()
    while work:
        members = work.popleft()
        node = node_index[members]
        if node in expanded:
            continue
        expanded.add(node)
        by_event: Dict[Event, Set[StateId]] = {}
        for state in members:
            for event, target in lts.successors(state):
                if event.is_tau():
                    continue
                by_event.setdefault(event, set()).add(target)
        for event, targets in sorted(by_event.items(), key=lambda kv: str(kv[0])):
            closure = lts.tau_closure(frozenset(targets))
            known = closure in node_index
            spec.afters[node][event] = node_of(closure)
            if not known:
                work.append(closure)
    return spec
