"""FDR-style assertions over process terms.

FDR scripts end with ``assert`` statements; this module provides the same
surface over our process algebra.  An :class:`Assertion` pairs process terms
with a check; a :class:`Session` (the analogue of loading a script into FDR)
holds an environment of process equations plus a list of assertions and runs
them, producing a report of verdicts and counterexamples.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

from ..csp.lts import DEFAULT_STATE_LIMIT, LTS, compile_lts
from ..csp.process import Environment, Process
from .refine import (
    CheckResult,
    check_fd_refinement,
    check_deadlock_free,
    check_deterministic,
    check_divergence_free,
    check_failures_refinement,
    check_trace_refinement,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.pipeline import VerificationPipeline


def _make_pipeline(env: Environment, **kwargs) -> "VerificationPipeline":
    # deferred: repro.engine imports this package (fdr) for result types,
    # so a module-level import here would close an import cycle
    from ..engine.pipeline import VerificationPipeline

    return VerificationPipeline(env, **kwargs)


class Assertion:
    """Base class: subclasses know how to compile their terms and check."""

    def __init__(self, name: str) -> None:
        self.name = name

    def check(
        self,
        env: Environment,
        max_states: int = DEFAULT_STATE_LIMIT,
        pipeline: Optional[VerificationPipeline] = None,
    ) -> CheckResult:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "{}({!r})".format(type(self).__name__, self.name)


class RefinementAssertion(Assertion):
    """``assert Spec [T= Impl`` or ``assert Spec [F= Impl``."""

    def __init__(
        self,
        spec: Process,
        impl: Process,
        model: str = "T",
        name: Optional[str] = None,
    ) -> None:
        if model not in ("T", "F", "FD"):
            raise ValueError(
                "model must be 'T' (traces), 'F' (failures) or 'FD' "
                "(failures-divergences)"
            )
        label = name or "{!r} [{}= {!r}".format(spec, model, impl)
        super().__init__(label)
        self.spec = spec
        self.impl = impl
        self.model = model

    def check(
        self,
        env: Environment,
        max_states: int = DEFAULT_STATE_LIMIT,
        pipeline: Optional[VerificationPipeline] = None,
    ) -> CheckResult:
        pipe = pipeline or _make_pipeline(env, max_states=max_states)
        return pipe.refinement(
            self.spec, self.impl, self.model, self.name, max_states
        )


class PropertyAssertion(Assertion):
    """``assert P :[deadlock free]`` and friends."""

    _CHECKS: dict = {
        "deadlock free": check_deadlock_free,
        "divergence free": check_divergence_free,
        "deterministic": check_deterministic,
    }

    def __init__(self, process: Process, property_name: str, name: Optional[str] = None) -> None:
        if property_name not in self._CHECKS:
            raise ValueError(
                "unknown property {!r}; known: {}".format(
                    property_name, sorted(self._CHECKS)
                )
            )
        super().__init__(name or "{!r} :[{}]".format(process, property_name))
        self.process = process
        self.property_name = property_name

    def check(
        self,
        env: Environment,
        max_states: int = DEFAULT_STATE_LIMIT,
        pipeline: Optional[VerificationPipeline] = None,
    ) -> CheckResult:
        pipe = pipeline or _make_pipeline(env, max_states=max_states)
        return pipe.property_check(
            self.process, self.property_name, self.name, max_states
        )


class Session:
    """An FDR session: process equations plus assertions to discharge.

    The session holds one :class:`VerificationPipeline`, so every assertion
    it runs shares the interned alphabet and the compilation cache -- a spec
    (or component) appearing in several assertions compiles once.
    """

    def __init__(
        self,
        env: Optional[Environment] = None,
        *,
        passes: object = "default",
    ) -> None:
        self.env = env or Environment()
        self.assertions: List[Assertion] = []
        #: *passes* configures compress-before-compose for every assertion
        #: in the session: "default", "none", or a comma-separated pass list
        #: (see repro.passes.resolve_passes)
        self.pipeline = _make_pipeline(self.env, passes=passes)

    def define(self, name: str, body: Process) -> "Session":
        self.env.bind(name, body)
        return self

    def assert_refinement(
        self,
        spec: Process,
        impl: Process,
        model: str = "T",
        name: Optional[str] = None,
    ) -> "Session":
        self.assertions.append(RefinementAssertion(spec, impl, model, name))
        return self

    def assert_property(
        self, process: Process, property_name: str, name: Optional[str] = None
    ) -> "Session":
        self.assertions.append(PropertyAssertion(process, property_name, name))
        return self

    def run(self, max_states: int = DEFAULT_STATE_LIMIT) -> List[CheckResult]:
        """Check every assertion in order; never raises on a failed verdict."""
        return [
            assertion.check(self.env, max_states, pipeline=self.pipeline)
            for assertion in self.assertions
        ]

    def report(self, max_states: int = DEFAULT_STATE_LIMIT) -> str:
        """Run all assertions and format an FDR-like textual report."""
        results = self.run(max_states)
        lines = [result.summary() for result in results]
        passed = sum(1 for result in results if result.passed)
        lines.append("{}/{} assertions passed".format(passed, len(results)))
        return "\n".join(lines)

