"""The refinement engine -- product-automaton checks with counterexamples.

This is the working core of the FDR substitute.  A refinement assertion
``Spec [T= Impl`` is decided by simulating the implementation against the
normalised specification: breadth-first search over pairs
``(implementation state, specification node)``; any implementation event the
specification node cannot match is a violation, and the BFS parent pointers
reconstruct the shortest counterexample trace -- the "insecure trace" of the
paper's workflow.

The implementation side is anything exposing the small automaton protocol
(``initial``, ``successors_span``, ``is_stable``, ``table``): a fully
compiled :class:`~repro.csp.kernel.CompactLTS` (the eager path), a
:class:`LazyImplementation` (states unfold on demand from the operational
semantics so the search can exit on the first violation without
materialising the whole state space), or the on-the-fly
:class:`~repro.engine.product.ProductLTS` over compiled component kernels.
All three store their edges in shared flat ``array('q')`` pairs, and the
product search walks them by index -- no per-transition tuple allocation.

Supported checks:

* trace refinement ``[T=``  (the model the paper restricts itself to),
* stable-failures refinement ``[F=`` (extension),
* failures-divergences refinement ``[FD=``,
* deadlock freedom, divergence freedom, determinism.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from ..csp.events import AlphabetTable, Event, TAU_ID, TICK_ID
from ..csp.lts import DEFAULT_STATE_LIMIT, LTS, StateId, StateSpaceLimitExceeded
from ..csp.process import Environment, Process
from ..csp.semantics import transitions as sos_transitions
from ..obs.trace import NULL_TRACER, Tracer
from .counterexample import (
    Counterexample,
    DeadlockCounterexample,
    DivergenceCounterexample,
    FailureCounterexample,
    NondeterminismCounterexample,
    TraceCounterexample,
)
from .normalise import NodeId, NormalisedSpec, normalise, tau_cycle_states

Trace = Tuple[Event, ...]
Pair = Tuple[StateId, NodeId]

_MISSING = object()


class CheckResult:
    """Outcome of a single check: verdict, counterexample and search statistics."""

    def __init__(
        self,
        name: str,
        passed: bool,
        counterexample: Optional[Counterexample] = None,
        states_explored: int = 0,
        transitions_explored: int = 0,
        pass_stats: Tuple = (),
        profile=None,
    ) -> None:
        self.name = name
        self.passed = passed
        self.counterexample = counterexample
        self.states_explored = states_explored
        self.transitions_explored = transitions_explored
        #: per-component compression statistics
        #: (:class:`repro.passes.base.PassStats`) when the check ran through
        #: a compilation plan; empty for uncompressed checks
        self.pass_stats = pass_stats
        #: per-stage wall-time breakdown (:class:`repro.obs.Profile`) when the
        #: check ran under an enabled tracer; None otherwise
        self.profile = profile

    def __bool__(self) -> bool:
        return self.passed

    def summary(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED"
        line = "{}: {} ({} states, {} transitions explored)".format(
            self.name, verdict, self.states_explored, self.transitions_explored
        )
        if self.counterexample is not None:
            line += "\n  " + self.counterexample.describe()
        return line

    def pass_summary(self) -> str:
        """One line per applied compression pass (empty if none ran)."""
        return "\n".join(stat.summary() for stat in self.pass_stats)

    def __repr__(self) -> str:
        return "CheckResult({!r}, passed={})".format(self.name, self.passed)


class LazyImplementation:
    """On-the-fly implementation state space over the operational semantics.

    Exposes the same automaton protocol as a compiled
    :class:`~repro.csp.kernel.CompactLTS` (``initial`` / ``successors_span``
    / ``is_stable`` / ``table``) but expands each state's transitions only
    when the product search first asks for them, memoising terms exactly
    like the eager compiler -- so the reachable fragment it builds is
    state-for-state the prefix of the eager LTS the search actually touches,
    and verdicts and counterexamples come out identical.  Expanded edges are
    appended to two shared flat ``array('q')`` buffers with per-state
    ``(start, end)`` bounds, matching the kernel's CSR layout (states land
    in expansion rather than id order, which the span view hides).  Raises
    :class:`StateSpaceLimitExceeded` when expansion would pass *max_states*
    distinct terms, mirroring ``compile_lts``.
    """

    #: obs metric this implementation reports its expansion count under
    expansion_metric = "lazy.states_expanded"

    def __init__(
        self,
        process: Process,
        env: Optional[Environment] = None,
        table: Optional[AlphabetTable] = None,
        max_states: int = DEFAULT_STATE_LIMIT,
    ) -> None:
        self.env = env or Environment()
        self.table = table if table is not None else AlphabetTable()
        self.max_states = max_states
        self.initial: StateId = 0
        self._terms: List[Process] = [process]
        self._index: Dict[Process, StateId] = {process: 0}
        self._events: array = array("q")
        self._targets: array = array("q")
        self._bounds: List[Optional[Tuple[int, int]]] = [None]

    @property
    def state_count(self) -> int:
        """States discovered so far (grows as the search explores)."""
        return len(self._terms)

    def term_of(self, state: StateId) -> Process:
        return self._terms[state]

    def successors_span(self, state: StateId) -> Tuple[array, array, int, int]:
        """The state's edge range in the shared flat arrays (expands once)."""
        bounds = self._bounds[state]
        if bounds is None:
            bounds = self._expand(state)
        return self._events, self._targets, bounds[0], bounds[1]

    def _expand(self, state: StateId) -> Tuple[int, int]:
        intern = self.table.intern
        index = self._index
        terms = self._terms
        events, targets = self._events, self._targets
        start = len(events)
        for event, successor in sos_transitions(terms[state], self.env):
            target = index.get(successor)
            if target is None:
                if len(terms) >= self.max_states:
                    raise StateSpaceLimitExceeded(self.max_states)
                target = len(terms)
                index[successor] = target
                terms.append(successor)
                self._bounds.append(None)
            events.append(intern(event))
            targets.append(target)
        bounds = (start, len(events))
        self._bounds[state] = bounds
        return bounds

    def successors_ids(self, state: StateId) -> List[Tuple[int, StateId]]:
        events, targets, start, end = self.successors_span(state)
        return [(events[i], targets[i]) for i in range(start, end)]

    def successors(self, state: StateId) -> List[Tuple[Event, StateId]]:
        event_of = self.table.event_of
        return [(event_of(eid), t) for eid, t in self.successors_ids(state)]

    def is_stable(self, state: StateId) -> bool:
        events, _targets, start, end = self.successors_span(state)
        for i in range(start, end):
            if events[i] == TAU_ID:
                return False
        return True


#: Anything the product search can drive on the implementation side: a
#: compiled kernel, a lazy SOS expansion, or an on-the-fly product view.
Implementation = Union[LTS, LazyImplementation, "object"]


def _attach_impl_state(
    violation: Optional[Counterexample],
    impl: Implementation,
    state: Optional[StateId],
) -> Optional[Counterexample]:
    """Record the violating implementation term on the counterexample.

    Both implementation flavours can name the process term behind a state
    (``term_of`` on the lazy expansion, ``terms`` on a compiled LTS); the
    pipeline maps any compressed-component leaves inside that term back to
    original states (see :func:`repro.engine.plan.component_provenance`).
    """
    if violation is None or state is None:
        return violation
    term_of = getattr(impl, "term_of", None)
    if term_of is not None:
        violation.impl_term = term_of(state)
        return violation
    terms = getattr(impl, "terms", None)
    if terms is not None and state < len(terms):
        violation.impl_term = terms[state]
    return violation


def _emit_search_metrics(obs: Tracer, search: "_ProductSearch") -> None:
    """Record one finished product search into the tracer's metrics."""
    if not obs.enabled:
        return
    metrics = obs.metrics
    metrics.counter("refine.states_explored").inc(len(search.parents))
    metrics.counter("refine.transitions_explored").inc(
        search.transitions_explored
    )
    metrics.gauge("refine.peak_frontier").set_max(search.peak_frontier)
    metric = getattr(search.impl, "expansion_metric", None)
    if metric is not None:
        metrics.counter(metric).inc(search.impl.state_count)


class _ProductSearch:
    """BFS over (implementation state, spec node) pairs with trace rebuild.

    Works on interned ids throughout; when the implementation and the
    specification share one :class:`AlphabetTable` (the pipeline's normal
    case) no per-transition translation happens at all, otherwise ids are
    translated lazily through a memo.
    """

    def __init__(
        self,
        impl: Implementation,
        spec: NormalisedSpec,
        obs: Tracer = NULL_TRACER,
    ) -> None:
        self.impl = impl
        self.spec = spec
        self.shared_table = impl.table is spec.table
        self._translate: Dict[int, Optional[int]] = {
            TAU_ID: TAU_ID,
            TICK_ID: TICK_ID,
        }
        self.parents: Dict[Pair, Tuple[Optional[Pair], Optional[int]]] = {}
        self.transitions_explored = 0
        #: the product pair at which run() found its violation, if any --
        #: provenance threading reads the implementation state out of it
        self.violation_pair: Optional[Pair] = None
        #: largest BFS queue length seen; tracked only under an enabled
        #: tracer so the disabled search loop pays one local bool test
        self._track = obs.enabled
        self.peak_frontier = 0

    def _spec_id(self, eid: int) -> Optional[int]:
        """Translate an impl-table event id to the spec table (None = unknown)."""
        if self.shared_table:
            return eid
        cached = self._translate.get(eid, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        sid = self.spec.table.id_of(self.impl.table.event_of(eid))
        self._translate[eid] = sid
        return sid

    def offered_events(self, impl_state: StateId) -> FrozenSet[Event]:
        """The events an implementation state offers, decoded."""
        event_of = self.impl.table.event_of
        events, _targets, start, end = self.impl.successors_span(impl_state)
        return frozenset(event_of(events[i]) for i in range(start, end))

    def offered_spec_bits(self, impl_state: StateId) -> int:
        """The same offer as a bitset in the spec table's id space."""
        bits = 0
        events, _targets, start, end = self.impl.successors_span(impl_state)
        for i in range(start, end):
            sid = self._spec_id(events[i])
            if sid is not None:
                bits |= 1 << sid
        return bits

    def trace_to(self, pair: Pair) -> Trace:
        event_of = self.impl.table.event_of
        events: List[Event] = []
        cursor: Optional[Pair] = pair
        while cursor is not None:
            parent, eid = self.parents[cursor]
            if eid is not None and eid != TAU_ID:
                events.append(event_of(eid))
            cursor = parent
        events.reverse()
        return tuple(events)

    def run(self, on_pair=None, prune=None) -> Optional[Counterexample]:
        """Explore the product; return the first violation found (or None).

        *on_pair* is an optional callback ``(pair, trace_builder) -> Counterexample|None``
        used by the failures/determinism checks to impose extra per-pair
        conditions.  *prune* is an optional predicate: pairs it accepts are
        checked but not expanded (used by the FD check, where a divergent
        specification node permits every continuation).
        """
        afters_ids = self.spec.afters_ids
        event_of = self.impl.table.event_of
        successors_span = self.impl.successors_span
        parents = self.parents
        start: Pair = (self.impl.initial, self.spec.initial)
        parents[start] = (None, None)
        work: deque = deque([start])
        track = self._track
        peak = 1
        transitions = 0
        try:
            while work:
                pair = work.popleft()
                impl_state, node = pair
                if on_pair is not None:
                    violation = on_pair(pair, self.trace_to)
                    if violation is not None:
                        self.violation_pair = pair
                        return violation
                if prune is not None and prune(pair):
                    continue
                # walk the state's edge range in the impl's flat arrays --
                # the innermost loop of every refinement check
                events, targets, lo, hi = successors_span(impl_state)
                transitions += hi - lo
                for i in range(lo, hi):
                    eid = events[i]
                    if eid == TAU_ID:
                        next_pair: Pair = (targets[i], node)
                    else:
                        sid = self._spec_id(eid)
                        next_node = (
                            afters_ids[node].get(sid) if sid is not None else None
                        )
                        if next_node is None:
                            # count the edges scanned up to the violation,
                            # matching the per-edge counting this loop used
                            # before it went span-based
                            transitions -= hi - (i + 1)
                            self.violation_pair = pair
                            return TraceCounterexample(
                                self.trace_to(pair), event_of(eid)
                            )
                        next_pair = (targets[i], next_node)
                    if next_pair not in parents:
                        parents[next_pair] = (pair, eid)
                        work.append(next_pair)
                        if track and len(work) > peak:
                            peak = len(work)
            return None
        finally:
            self.transitions_explored += transitions
            if track:
                self.peak_frontier = peak


def check_trace_refinement_from(
    normalised: NormalisedSpec,
    impl: Implementation,
    name: str = "Spec [T= Impl",
    obs: Tracer = NULL_TRACER,
) -> CheckResult:
    """Decide ``Spec ⊑T Impl`` against an already-normalised specification."""
    search = _ProductSearch(impl, normalised, obs)
    violation = _attach_impl_state(
        search.run(),
        impl,
        search.violation_pair[0] if search.violation_pair else None,
    )
    _emit_search_metrics(obs, search)
    return CheckResult(
        name,
        violation is None,
        violation,
        states_explored=len(search.parents),
        transitions_explored=search.transitions_explored,
    )


def check_failures_refinement_from(
    normalised: NormalisedSpec,
    impl: Implementation,
    name: str = "Spec [F= Impl",
    obs: Tracer = NULL_TRACER,
) -> CheckResult:
    """Decide ``Spec ⊑F Impl`` against an already-normalised specification."""
    search = _ProductSearch(impl, normalised, obs)

    def stable_check(pair: Pair, trace_to) -> Optional[Counterexample]:
        impl_state, node = pair
        if not search.impl.is_stable(impl_state):
            return None
        if normalised.allows_stable_refusal_bits(
            node, search.offered_spec_bits(impl_state)
        ):
            return None
        offered = search.offered_events(impl_state)
        acceptances = normalised.acceptances[node]
        required = (
            frozenset().union(*acceptances) if acceptances else frozenset()
        )
        return FailureCounterexample(trace_to(pair), offered, required - offered)

    violation = _attach_impl_state(
        search.run(on_pair=stable_check),
        impl,
        search.violation_pair[0] if search.violation_pair else None,
    )
    _emit_search_metrics(obs, search)
    return CheckResult(
        name,
        violation is None,
        violation,
        states_explored=len(search.parents),
        transitions_explored=search.transitions_explored,
    )


def check_trace_refinement(spec: LTS, impl: LTS, name: str = "Spec [T= Impl") -> CheckResult:
    """Decide ``Spec ⊑T Impl`` (traces(Impl) ⊆ traces(Spec))."""
    return check_trace_refinement_from(normalise(spec), impl, name)


def check_failures_refinement(spec: LTS, impl: LTS, name: str = "Spec [F= Impl") -> CheckResult:
    """Decide ``Spec ⊑F Impl`` in the stable-failures model.

    Traces must refine, and every stable implementation state must offer a
    superset of some minimal acceptance of the matching specification node.
    """
    return check_failures_refinement_from(normalise(spec), impl, name)


def check_fd_refinement(
    spec: LTS,
    impl: LTS,
    name: str = "Spec [FD= Impl",
    obs: Tracer = NULL_TRACER,
) -> CheckResult:
    """Decide ``Spec ⊑FD Impl`` in the failures-divergences model.

    Beyond the stable-failures conditions, the implementation may only
    diverge where the specification itself diverges; where the spec node is
    divergent it behaves chaotically and permits everything (so the search
    prunes there, exactly as FDR does).  Divergence detection needs the full
    implementation tau graph, so this check always runs eagerly.
    """
    normalised = normalise(spec, obs=obs)
    impl_divergent = tau_cycle_states(impl)
    search = _ProductSearch(impl, normalised, obs)

    def fd_check(pair: Pair, trace_to) -> Optional[Counterexample]:
        impl_state, node = pair
        if normalised.divergent[node]:
            return None  # spec diverges here: chaotic, anything goes
        if impl_state in impl_divergent:
            return DivergenceCounterexample(trace_to(pair))
        if not search.impl.is_stable(impl_state):
            return None
        if normalised.allows_stable_refusal_bits(
            node, search.offered_spec_bits(impl_state)
        ):
            return None
        offered = search.offered_events(impl_state)
        acceptances = normalised.acceptances[node]
        required = (
            frozenset().union(*acceptances) if acceptances else frozenset()
        )
        return FailureCounterexample(trace_to(pair), offered, required - offered)

    violation = _attach_impl_state(
        search.run(
            on_pair=fd_check, prune=lambda pair: normalised.divergent[pair[1]]
        ),
        impl,
        search.violation_pair[0] if search.violation_pair else None,
    )
    _emit_search_metrics(obs, search)
    return CheckResult(
        name,
        violation is None,
        violation,
        states_explored=len(search.parents),
        transitions_explored=search.transitions_explored,
    )


def _bfs_with_parents(lts: LTS):
    """BFS over a single LTS yielding parent pointers for trace reconstruction."""
    parents: Dict[StateId, Tuple[Optional[StateId], Optional[int]]] = {
        lts.initial: (None, None)
    }
    order: List[StateId] = []
    work: deque = deque([lts.initial])
    while work:
        state = work.popleft()
        order.append(state)
        events, targets, lo, hi = lts.successors_span(state)
        for i in range(lo, hi):
            target = targets[i]
            if target not in parents:
                parents[target] = (state, events[i])
                work.append(target)
    return parents, order


def _trace_from_parents(parents, state: StateId, table: AlphabetTable) -> Trace:
    events: List[Event] = []
    cursor: Optional[StateId] = state
    while cursor is not None:
        parent, eid = parents[cursor]
        if eid is not None and eid != TAU_ID:
            events.append(table.event_of(eid))
        cursor = parent
    events.reverse()
    return tuple(events)


def _emit_walk_metrics(obs: Tracer, states: int, transitions: int) -> None:
    """Record a whole-LTS property walk into the tracer's metrics."""
    if not obs.enabled:
        return
    obs.metrics.counter("refine.states_explored").inc(states)
    obs.metrics.counter("refine.transitions_explored").inc(transitions)


def check_deadlock_free(
    lts: LTS, name: str = "deadlock free", obs: Tracer = NULL_TRACER
) -> CheckResult:
    """No reachable state refuses everything (termination does not count)."""
    parents, order = _bfs_with_parents(lts)
    transitions = 0
    for state in order:
        _events, _targets, lo, hi = lts.successors_span(state)
        transitions += hi - lo
        if hi > lo:
            continue
        trace = _trace_from_parents(parents, state, lts.table)
        # a state reached by tick is the successfully-terminated state, which
        # is not a deadlock
        if trace and trace[-1].is_tick():
            continue
        _emit_walk_metrics(obs, len(order), transitions)
        return CheckResult(
            name,
            False,
            _attach_impl_state(DeadlockCounterexample(trace), lts, state),
            states_explored=len(order),
            transitions_explored=transitions,
        )
    _emit_walk_metrics(obs, len(order), transitions)
    return CheckResult(name, True, None, len(order), transitions)


def check_divergence_free(
    lts: LTS, name: str = "divergence free", obs: Tracer = NULL_TRACER
) -> CheckResult:
    """No reachable cycle of tau transitions (no livelock)."""
    divergent = tau_cycle_states(lts)
    parents, order = _bfs_with_parents(lts)
    transitions = 0
    for state in order:
        _events, _targets, lo, hi = lts.successors_span(state)
        transitions += hi - lo
    _emit_walk_metrics(obs, len(order), transitions)
    for state in order:
        if state in divergent:
            return CheckResult(
                name,
                False,
                _attach_impl_state(
                    DivergenceCounterexample(
                        _trace_from_parents(parents, state, lts.table)
                    ),
                    lts,
                    state,
                ),
                states_explored=len(order),
                transitions_explored=transitions,
            )
    return CheckResult(name, True, None, len(order), transitions)


def check_deterministic(
    lts: LTS, name: str = "deterministic", obs: Tracer = NULL_TRACER
) -> CheckResult:
    """FDR's determinism check in the stable-failures sense.

    A process is nondeterministic iff after some trace an event is both
    possible (somewhere) and stably refusable (somewhere else).  We pair each
    implementation state against the normalised automaton of the *same*
    process; the normalised node knows every event possible after the trace.
    """
    normalised = normalise(lts, obs=obs)
    search = _ProductSearch(lts, normalised, obs)

    def stable_check(pair: Pair, trace_to) -> Optional[Counterexample]:
        impl_state, node = pair
        if not lts.is_stable(impl_state):
            return None
        offered = frozenset(event for event, _ in lts.successors(impl_state))
        for event in sorted(normalised.events(node), key=str):
            if event not in offered:
                return NondeterminismCounterexample(trace_to(pair), event)
        return None

    violation = _attach_impl_state(
        search.run(on_pair=stable_check),
        lts,
        search.violation_pair[0] if search.violation_pair else None,
    )
    _emit_search_metrics(obs, search)
    return CheckResult(
        name,
        violation is None,
        violation,
        states_explored=len(search.parents),
        transitions_explored=search.transitions_explored,
    )
