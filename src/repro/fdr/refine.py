"""The refinement engine -- product-automaton checks with counterexamples.

This is the working core of the FDR substitute.  A refinement assertion
``Spec [T= Impl`` is decided by simulating the implementation LTS against the
normalised specification: breadth-first search over pairs
``(implementation state, specification node)``; any implementation event the
specification node cannot match is a violation, and the BFS parent pointers
reconstruct the shortest counterexample trace -- the "insecure trace" of the
paper's workflow.

Supported checks:

* trace refinement ``[T=``  (the model the paper restricts itself to),
* stable-failures refinement ``[F=`` (extension),
* deadlock freedom, divergence freedom, determinism.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..csp.events import Event
from ..csp.lts import LTS, StateId
from .counterexample import (
    Counterexample,
    DeadlockCounterexample,
    DivergenceCounterexample,
    FailureCounterexample,
    NondeterminismCounterexample,
    TraceCounterexample,
)
from .normalise import NodeId, NormalisedSpec, normalise, tau_cycle_states

Trace = Tuple[Event, ...]
Pair = Tuple[StateId, NodeId]


class CheckResult:
    """Outcome of a single check: verdict, counterexample and search statistics."""

    def __init__(
        self,
        name: str,
        passed: bool,
        counterexample: Optional[Counterexample] = None,
        states_explored: int = 0,
        transitions_explored: int = 0,
    ) -> None:
        self.name = name
        self.passed = passed
        self.counterexample = counterexample
        self.states_explored = states_explored
        self.transitions_explored = transitions_explored

    def __bool__(self) -> bool:
        return self.passed

    def summary(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED"
        line = "{}: {} ({} states, {} transitions explored)".format(
            self.name, verdict, self.states_explored, self.transitions_explored
        )
        if self.counterexample is not None:
            line += "\n  " + self.counterexample.describe()
        return line

    def __repr__(self) -> str:
        return "CheckResult({!r}, passed={})".format(self.name, self.passed)


class _ProductSearch:
    """BFS over (implementation state, spec node) pairs with trace rebuild."""

    def __init__(self, impl: LTS, spec: NormalisedSpec) -> None:
        self.impl = impl
        self.spec = spec
        self.parents: Dict[Pair, Tuple[Optional[Pair], Optional[Event]]] = {}
        self.transitions_explored = 0

    def trace_to(self, pair: Pair) -> Trace:
        events: List[Event] = []
        cursor: Optional[Pair] = pair
        while cursor is not None:
            parent, event = self.parents[cursor]
            if event is not None and not event.is_tau():
                events.append(event)
            cursor = parent
        events.reverse()
        return tuple(events)

    def run(self, on_pair=None, prune=None) -> Optional[Counterexample]:
        """Explore the product; return the first violation found (or None).

        *on_pair* is an optional callback ``(pair, trace_builder) -> Counterexample|None``
        used by the failures/determinism checks to impose extra per-pair
        conditions.  *prune* is an optional predicate: pairs it accepts are
        checked but not expanded (used by the FD check, where a divergent
        specification node permits every continuation).
        """
        start: Pair = (self.impl.initial, self.spec.initial)
        self.parents[start] = (None, None)
        work: deque = deque([start])
        while work:
            pair = work.popleft()
            impl_state, node = pair
            if on_pair is not None:
                violation = on_pair(pair, self.trace_to)
                if violation is not None:
                    return violation
            if prune is not None and prune(pair):
                continue
            for event, target in self.impl.successors(impl_state):
                self.transitions_explored += 1
                if event.is_tau():
                    next_pair: Pair = (target, node)
                else:
                    next_node = self.spec.after(node, event)
                    if next_node is None:
                        return TraceCounterexample(self.trace_to(pair), event)
                    next_pair = (target, next_node)
                if next_pair not in self.parents:
                    self.parents[next_pair] = (pair, event)
                    work.append(next_pair)
        return None


def check_trace_refinement(spec: LTS, impl: LTS, name: str = "Spec [T= Impl") -> CheckResult:
    """Decide ``Spec ⊑T Impl`` (traces(Impl) ⊆ traces(Spec))."""
    normalised = normalise(spec)
    search = _ProductSearch(impl, normalised)
    violation = search.run()
    return CheckResult(
        name,
        violation is None,
        violation,
        states_explored=len(search.parents),
        transitions_explored=search.transitions_explored,
    )


def check_failures_refinement(spec: LTS, impl: LTS, name: str = "Spec [F= Impl") -> CheckResult:
    """Decide ``Spec ⊑F Impl`` in the stable-failures model.

    Traces must refine, and every stable implementation state must offer a
    superset of some minimal acceptance of the matching specification node.
    """
    normalised = normalise(spec)
    search = _ProductSearch(impl, normalised)

    def stable_check(pair: Pair, trace_to) -> Optional[Counterexample]:
        impl_state, node = pair
        if not search.impl.is_stable(impl_state):
            return None
        offered = frozenset(
            event for event, _ in search.impl.successors(impl_state)
        )
        if normalised.allows_stable_refusal(node, offered):
            return None
        required = frozenset().union(*normalised.acceptances[node]) if normalised.acceptances[node] else frozenset()
        return FailureCounterexample(trace_to(pair), offered, required - offered)

    violation = search.run(on_pair=stable_check)
    return CheckResult(
        name,
        violation is None,
        violation,
        states_explored=len(search.parents),
        transitions_explored=search.transitions_explored,
    )


def check_fd_refinement(spec: LTS, impl: LTS, name: str = "Spec [FD= Impl") -> CheckResult:
    """Decide ``Spec ⊑FD Impl`` in the failures-divergences model.

    Beyond the stable-failures conditions, the implementation may only
    diverge where the specification itself diverges; where the spec node is
    divergent it behaves chaotically and permits everything (so the search
    prunes there, exactly as FDR does).
    """
    normalised = normalise(spec)
    impl_divergent = tau_cycle_states(impl)
    search = _ProductSearch(impl, normalised)

    def fd_check(pair: Pair, trace_to) -> Optional[Counterexample]:
        impl_state, node = pair
        if normalised.divergent[node]:
            return None  # spec diverges here: chaotic, anything goes
        if impl_state in impl_divergent:
            return DivergenceCounterexample(trace_to(pair))
        if not search.impl.is_stable(impl_state):
            return None
        offered = frozenset(event for event, _ in search.impl.successors(impl_state))
        if normalised.allows_stable_refusal(node, offered):
            return None
        required = (
            frozenset().union(*normalised.acceptances[node])
            if normalised.acceptances[node]
            else frozenset()
        )
        return FailureCounterexample(trace_to(pair), offered, required - offered)

    violation = search.run(on_pair=fd_check, prune=lambda pair: normalised.divergent[pair[1]])
    return CheckResult(
        name,
        violation is None,
        violation,
        states_explored=len(search.parents),
        transitions_explored=search.transitions_explored,
    )


def _bfs_with_parents(lts: LTS):
    """BFS over a single LTS yielding parent pointers for trace reconstruction."""
    parents: Dict[StateId, Tuple[Optional[StateId], Optional[Event]]] = {
        lts.initial: (None, None)
    }
    order: List[StateId] = []
    work: deque = deque([lts.initial])
    while work:
        state = work.popleft()
        order.append(state)
        for event, target in lts.successors(state):
            if target not in parents:
                parents[target] = (state, event)
                work.append(target)
    return parents, order


def _trace_from_parents(parents, state: StateId) -> Trace:
    events: List[Event] = []
    cursor: Optional[StateId] = state
    while cursor is not None:
        parent, event = parents[cursor]
        if event is not None and not event.is_tau():
            events.append(event)
        cursor = parent
    events.reverse()
    return tuple(events)


def check_deadlock_free(lts: LTS, name: str = "deadlock free") -> CheckResult:
    """No reachable state refuses everything (termination does not count)."""
    parents, order = _bfs_with_parents(lts)
    transitions = 0
    for state in order:
        transitions += len(lts.successors(state))
        if lts.successors(state):
            continue
        trace = _trace_from_parents(parents, state)
        # a state reached by tick is the successfully-terminated state, which
        # is not a deadlock
        if trace and trace[-1].is_tick():
            continue
        return CheckResult(
            name,
            False,
            DeadlockCounterexample(trace),
            states_explored=len(order),
            transitions_explored=transitions,
        )
    return CheckResult(name, True, None, len(order), transitions)


def check_divergence_free(lts: LTS, name: str = "divergence free") -> CheckResult:
    """No reachable cycle of tau transitions (no livelock)."""
    divergent = tau_cycle_states(lts)
    parents, order = _bfs_with_parents(lts)
    transitions = sum(len(lts.successors(s)) for s in order)
    for state in order:
        if state in divergent:
            return CheckResult(
                name,
                False,
                DivergenceCounterexample(_trace_from_parents(parents, state)),
                states_explored=len(order),
                transitions_explored=transitions,
            )
    return CheckResult(name, True, None, len(order), transitions)


def check_deterministic(lts: LTS, name: str = "deterministic") -> CheckResult:
    """FDR's determinism check in the stable-failures sense.

    A process is nondeterministic iff after some trace an event is both
    possible (somewhere) and stably refusable (somewhere else).  We pair each
    implementation state against the normalised automaton of the *same*
    process; the normalised node knows every event possible after the trace.
    """
    normalised = normalise(lts)
    search = _ProductSearch(lts, normalised)

    def stable_check(pair: Pair, trace_to) -> Optional[Counterexample]:
        impl_state, node = pair
        if not lts.is_stable(impl_state):
            return None
        offered = frozenset(event for event, _ in lts.successors(impl_state))
        for event in sorted(normalised.events(node), key=str):
            if event not in offered:
                return NondeterminismCounterexample(trace_to(pair), event)
        return None

    violation = search.run(on_pair=stable_check)
    return CheckResult(
        name,
        violation is None,
        violation,
        states_explored=len(search.parents),
        transitions_explored=search.transitions_explored,
    )
