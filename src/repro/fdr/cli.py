"""``cspcheck`` -- command-line refinement checking of CSPm scripts.

The direct FDR-replacement workflow: load a ``.csp`` file, discharge every
``assert`` in it, print FDR-style verdicts with counterexample traces, and
exit non-zero if any assertion fails.

Usage::

    cspcheck model.csp                    # run the script's assertions
    cspcheck model.csp --max-states 1e6   # larger state budget
    cspcheck model.csp --quiet            # verdict summary only
    cspcheck model.csp --eager            # materialise impls (no on-the-fly)
    cspcheck model.csp --stats            # cache/alphabet/pass statistics
    cspcheck model.csp --compress=none    # disable compress-before-compose
    cspcheck model.csp --compress=tau_loop,sbisim   # explicit pass list
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..cspm.evaluator import load_file
from ..engine.pipeline import VerificationPipeline


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cspcheck",
        description="Check the assertions of a CSPm script (FDR-style)",
    )
    parser.add_argument("script", help="path to the .csp script")
    parser.add_argument(
        "--max-states",
        type=float,
        default=200_000,
        help="state budget per compiled process (default 200000)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the final summary line"
    )
    parser.add_argument(
        "--eager",
        action="store_true",
        help="fully compile implementations instead of on-the-fly expansion",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print pipeline statistics (cache hits, interned events) at the end",
    )
    parser.add_argument(
        "--compress",
        default="default",
        metavar="SPEC",
        help="component compression passes applied before composition: "
        "'default' (dead,tau_loop,diamond,sbisim), 'none', or a "
        "comma-separated pass list (e.g. 'tau_loop,sbisim,normal')",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    model = load_file(args.script)
    if not model.assertions:
        sys.stderr.write("warning: script declares no assertions\n")
        return 0
    try:
        pipeline = VerificationPipeline(
            model.env,
            max_states=int(args.max_states),
            on_the_fly=not args.eager,
            passes=args.compress,
        )
    except KeyError as error:
        sys.stderr.write("error: {}\n".format(error.args[0]))
        return 2
    results = model.check_assertions(
        max_states=int(args.max_states), pipeline=pipeline
    )
    failed = 0
    for result in results:
        if not result.passed:
            failed += 1
        if not args.quiet:
            sys.stdout.write(result.summary() + "\n")
    sys.stdout.write(
        "{}/{} assertions passed\n".format(len(results) - failed, len(results))
    )
    if args.stats:
        for key, value in sorted(pipeline.stats().items()):
            sys.stdout.write("stat {}: {}\n".format(key, value))
        for result in results:
            for stat in result.pass_stats:
                sys.stdout.write(
                    "compress [{}] {}\n".format(result.name, stat.summary())
                )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
