"""``cspcheck`` -- command-line refinement checking of CSPm scripts.

The direct FDR-replacement workflow: load a ``.csp`` file, discharge every
``assert`` in it, print FDR-style verdicts with counterexample traces, and
exit non-zero if any assertion fails.

Verdict lines go to stdout; every diagnostic (``--stats``, ``--profile``,
warnings) goes to stderr, so stdout stays machine-parseable.

Usage::

    cspcheck model.csp                    # run the script's assertions
    cspcheck model.csp --max-states 1e6   # larger state budget
    cspcheck model.csp --quiet            # verdict summary only
    cspcheck model.csp --eager            # materialise impls (no on-the-fly)
    cspcheck model.csp --stats            # cache/alphabet/pass statistics
    cspcheck model.csp --compress=none    # disable compress-before-compose
    cspcheck model.csp --compress=tau_loop,sbisim   # explicit pass list
    cspcheck model.csp --profile          # per-stage wall-time table
    cspcheck model.csp --trace-out=t.jsonl  # full span/metric trace
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..cli_common import (
    EXIT_OK,
    EXIT_USAGE,
    EXIT_VIOLATION,
    add_observability_args,
    add_result_cache_args,
    add_stats_arg,
    emit_stats,
    finish_observability,
    result_cache_dir_from_args,
    tracer_from_args,
)
from ..cspm.evaluator import load_file
from ..engine.pipeline import VerificationPipeline


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cspcheck",
        description="Check the assertions of a CSPm script (FDR-style)",
    )
    parser.add_argument("script", help="path to the .csp script")
    parser.add_argument(
        "--max-states",
        type=float,
        default=200_000,
        help="state budget per compiled process (default 200000)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the final summary line"
    )
    parser.add_argument(
        "--eager",
        action="store_true",
        help="fully compile implementations instead of on-the-fly expansion",
    )
    add_stats_arg(
        parser,
        "print pipeline statistics (cache hits, interned events) to stderr",
    )
    parser.add_argument(
        "--compress",
        default="default",
        metavar="SPEC",
        help="component compression passes applied before composition: "
        "'default' (dead,tau_loop,diamond,sbisim), 'none', or a "
        "comma-separated pass list (e.g. 'tau_loop,sbisim,normal')",
    )
    add_result_cache_args(parser, "assertion verdicts")
    add_observability_args(parser)
    return parser


class _StoredCounterexample:
    """Replays the stored FDR-style description of a memoised violation."""

    __slots__ = ("_description",)

    def __init__(self, description: str) -> None:
        self._description = description

    def describe(self) -> str:
        return self._description


def _assertion_doc(model, decl, max_states: int, passes: str):
    """The content-address of one ``assert`` line, or None if unkeyable.

    The document is the batch-manifest encoding of the assertion -- both
    process sides (with every reachable named binding), the semantic model
    or property, the pass configuration and the state budget -- so the key
    covers everything that can influence the canonical outcome.  A negated
    assertion adds a ``negated`` marker: its *flipped* verdict is what gets
    stored, and the plain flavour of the same check must not answer it.
    Assertions outside the corpus codec (or the manifest schema) return
    None and simply run fresh every time.
    """
    from ..batch.spec import CheckSpec, reachable_bindings

    try:
        left = model.eval_process(decl.left, {})
        if decl.kind in ("T", "F", "FD"):
            right = model.eval_process(decl.right, {})
            spec = CheckSpec.refinement(
                left,
                right,
                decl.kind,
                bindings=reachable_bindings(model.env, left, right),
                passes=passes,
                max_states=max_states,
            )
        else:
            spec = CheckSpec.property_check(
                left,
                decl.kind,
                bindings=reachable_bindings(model.env, left),
                passes=passes,
                max_states=max_states,
            )
        doc = spec.to_doc()
    except Exception:
        # includes CorpusEncodingError/ManifestError; an evaluation error
        # re-raises on the fresh path, where it is actually reported
        return None
    if decl.negated:
        doc["negated"] = True
    return doc


def _result_of_stored(stored) -> "CheckResult":
    """A displayable check result rebuilt from a memoised JobResult.

    ``summary()`` output is byte-identical to the fresh run's because every
    field it prints -- name, verdict, explored counts, the counterexample's
    ``describe()`` text -- is part of the stored canonical surface.
    """
    from .refine import CheckResult

    counterexample = None
    if stored.counterexample is not None:
        counterexample = _StoredCounterexample(
            stored.counterexample["description"]
        )
    return CheckResult(
        stored.name,
        stored.verdict == "PASS",
        counterexample,
        stored.states_explored,
        stored.transitions_explored,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    tracer = tracer_from_args(args)
    with tracer.span("run", tool="cspcheck", script=args.script):
        with tracer.span("parse", script=args.script):
            model = load_file(args.script)
        if not model.assertions:
            sys.stderr.write("warning: script declares no assertions\n")
            return EXIT_OK
        try:
            pipeline = VerificationPipeline(
                model.env,
                max_states=int(args.max_states),
                on_the_fly=not args.eager,
                passes=args.compress,
                obs=tracer,
            )
        except KeyError as error:
            sys.stderr.write("error: {}\n".format(error.args[0]))
            return EXIT_USAGE
        result_cache = _open_result_cache(args)
        results = []
        for decl in model.assertions:
            doc = None
            if result_cache is not None:
                doc = _assertion_doc(
                    model, decl, int(args.max_states), args.compress
                )
            if doc is not None:
                stored = result_cache.get(doc)
                if stored is not None:
                    results.append(_result_of_stored(stored))
                    continue
            result = model.check_assertion(
                decl, int(args.max_states), pipeline
            )
            results.append(result)
            if doc is not None:
                from ..batch.spec import JobResult

                result_cache.put(doc, JobResult.of_check_result(0, None, result))
    failed = 0
    for result in results:
        if not result.passed:
            failed += 1
        if not args.quiet:
            sys.stdout.write(result.summary() + "\n")
    sys.stdout.write(
        "{}/{} assertions passed\n".format(len(results) - failed, len(results))
    )
    if args.stats:
        emit_stats(sorted(pipeline.stats().items()))
        if result_cache is not None:
            emit_stats(sorted(result_cache.stats().items()))
        for result in results:
            for stat in result.pass_stats:
                sys.stderr.write(
                    "compress [{}] {}\n".format(result.name, stat.summary())
                )
    finish_observability(args, tracer)
    return EXIT_VIOLATION if failed else EXIT_OK


def _open_result_cache(args):
    from ..exec.runtime import open_result_cache

    return open_result_cache(result_cache_dir_from_args(args))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
