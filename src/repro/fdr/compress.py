"""State-space compression: strong bisimulation minimisation.

FDR ships compression functions (``sbisim``, ``normal`` ...) that shrink
component LTSs before composition -- the key to the scalability the paper
banks on (Sec. VII-A).  This module implements the workhorse: strong
bisimulation minimisation by partition refinement (Kanellakis-Smolka style),
treating tau like any other label (strong, not weak, bisimulation -- exactly
FDR's ``sbisim``).

``minimise`` returns a new LTS whose states are the bisimulation classes of
the input; every check in :mod:`repro.fdr.refine` gives identical verdicts
on the minimised system (validated by tests and an ablation benchmark).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..csp.events import Event
from ..csp.lts import LTS, StateId


def bisimulation_classes(lts: LTS) -> List[FrozenSet[StateId]]:
    """The coarsest strong-bisimulation partition of the LTS states.

    Iterative partition refinement: start with one block, split blocks until
    every pair of states in a block has the same labelled moves *into
    blocks*.  O(m·n) worst case, plenty for component-sized LTSs.
    """
    if lts.state_count == 0:
        return []
    block_of: List[int] = [0] * lts.state_count

    def signature(state: StateId) -> FrozenSet[Tuple[int, int]]:
        return frozenset(
            (eid, block_of[target]) for eid, target in lts.successors_ids(state)
        )

    changed = True
    block_count = 1
    while changed:
        changed = False
        signatures: Dict[Tuple[int, FrozenSet[Tuple[int, int]]], int] = {}
        new_block_of: List[int] = [0] * lts.state_count
        next_block = 0
        for state in lts.iter_states():
            key = (block_of[state], signature(state))
            existing = signatures.get(key)
            if existing is None:
                signatures[key] = next_block
                existing = next_block
                next_block += 1
            new_block_of[state] = existing
        if next_block != block_count:
            changed = True
            block_count = next_block
        block_of = new_block_of

    blocks: Dict[int, Set[StateId]] = {}
    for state in lts.iter_states():
        blocks.setdefault(block_of[state], set()).add(state)
    return [frozenset(blocks[index]) for index in sorted(blocks)]


def minimise(lts: LTS) -> LTS:
    """Quotient the LTS by strong bisimulation.

    The result is strongly bisimilar to the input, hence equivalent in every
    CSP semantic model (traces, failures, divergences), with duplicate
    transitions merged.
    """
    classes = bisimulation_classes(lts)
    class_index: Dict[StateId, int] = {}
    for index, members in enumerate(classes):
        for state in members:
            class_index[state] = index

    minimised = LTS(lts.table)  # classes share the source's id space
    for members in classes:
        representative = min(members)
        minimised.add_state(lts.terms[representative])
    minimised.initial = class_index[lts.initial]
    for index, members in enumerate(classes):
        representative = min(members)
        seen: Set[Tuple[int, int]] = set()
        for eid, target in lts.successors_ids(representative):
            edge = (eid, class_index[target])
            if edge not in seen:
                seen.add(edge)
                minimised.add_transition_id(index, eid, class_index[target])
    return minimised


def compression_ratio(original: LTS, minimised: LTS) -> float:
    """States(min)/states(orig) -- 1.0 means nothing was compressible."""
    if original.state_count == 0:
        return 1.0
    return minimised.state_count / original.state_count
