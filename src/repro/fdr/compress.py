"""State-space compression: strong bisimulation minimisation.

Compatibility facade.  The minimiser migrated to :mod:`repro.passes.sbisim`
where it runs as the ``sbisim`` pass inside the compilation plan
(compress-before-compose, paper Sec. VII-A); this module keeps the
historical ``fdr.compress`` API for direct callers.

Two behavioural upgrades came with the migration: partition refinement now
hash-conses signatures and only re-splits touched blocks (instead of
recomputing every state's signature each sweep), and ``minimise`` renumbers
the quotient in BFS order from the root, so its output -- and anything
cached on it -- is stable across runs.
"""

from __future__ import annotations

from ..csp.lts import LTS
from ..passes.sbisim import bisimulation_classes, minimise, quotient

__all__ = ["bisimulation_classes", "minimise", "quotient", "compression_ratio"]


def compression_ratio(original: LTS, minimised: LTS) -> float:
    """States(min)/states(orig) -- 1.0 means nothing was compressible."""
    if original.state_count == 0:
        return 1.0
    return minimised.state_count / original.state_count
