"""Counterexamples -- the 'insecure traces' the paper's workflow feeds back.

The workflow in the paper's Fig. 1 ends with counterexamples being "fed back
to software designers to review and rectify faults".  This module defines the
structured counterexample objects the checker produces and the FDR-style
textual rendering used by the examples and benchmarks.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..csp.events import Event
from ..csp.traces import format_trace

Trace = Tuple[Event, ...]


class Counterexample:
    """A behaviour of the implementation not permitted by the specification.

    Beyond the violating trace, the checker attaches *where* the violation
    happened: ``impl_term`` is the implementation state (as a process term)
    at which the search stopped, and when the check ran through a
    compilation plan, ``provenance`` maps every compressed component inside
    that state back to the original (pre-pass) component state -- so
    compressed checks stay as diagnosable as uncompressed ones.  Neither
    field changes :meth:`describe`, whose text is byte-identical with and
    without compression.
    """

    kind = "generic"

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        #: the implementation term at the violation, when the checker knows it
        self.impl_term = None
        #: tuple of :class:`repro.engine.plan.ComponentProvenance` entries
        #: for compressed components inside ``impl_term`` (empty otherwise)
        self.provenance: Tuple = ()

    def describe(self) -> str:
        raise NotImplementedError

    def provenance_summary(self) -> str:
        """Original-component locations of the violation, one per line."""
        return "\n".join(entry.describe() for entry in self.provenance)

    def __repr__(self) -> str:
        return "{}({})".format(type(self).__name__, format_trace(self.trace))


class TraceCounterexample(Counterexample):
    """The implementation performed a trace the specification forbids."""

    kind = "trace"

    def __init__(self, trace: Trace, forbidden: Event) -> None:
        super().__init__(trace)
        self.forbidden = forbidden

    @property
    def full_trace(self) -> Trace:
        """The complete violating trace (allowed prefix + forbidden event)."""
        return self.trace + (self.forbidden,)

    def describe(self) -> str:
        return (
            "trace violation: after {} the implementation performs {} "
            "which the specification does not allow".format(
                format_trace(self.trace), self.forbidden
            )
        )


class FailureCounterexample(Counterexample):
    """The implementation stably refuses a set the specification must offer."""

    kind = "failure"

    def __init__(self, trace: Trace, offered: FrozenSet[Event], refused: FrozenSet[Event]) -> None:
        super().__init__(trace)
        self.offered = offered
        self.refused = refused

    def describe(self) -> str:
        offered = ", ".join(sorted(str(e) for e in self.offered)) or "nothing"
        return (
            "failure violation: after {} the implementation stably offers "
            "only {{{}}}, refusing events the specification requires".format(
                format_trace(self.trace), offered
            )
        )


class DeadlockCounterexample(Counterexample):
    """A reachable state with no transitions (and not after termination)."""

    kind = "deadlock"

    def describe(self) -> str:
        return "deadlock reachable after {}".format(format_trace(self.trace))


class DivergenceCounterexample(Counterexample):
    """A reachable cycle of internal (tau) activity."""

    kind = "divergence"

    def describe(self) -> str:
        return "divergence (livelock) reachable after {}".format(format_trace(self.trace))


class NondeterminismCounterexample(Counterexample):
    """After a trace the process may both accept and refuse an event."""

    kind = "nondeterminism"

    def __init__(self, trace: Trace, ambiguous: Optional[Event]) -> None:
        super().__init__(trace)
        self.ambiguous = ambiguous

    def describe(self) -> str:
        if self.ambiguous is not None:
            return (
                "nondeterminism: after {} the event {} may be either "
                "accepted or refused".format(format_trace(self.trace), self.ambiguous)
            )
        return "nondeterminism detected after {}".format(format_trace(self.trace))
