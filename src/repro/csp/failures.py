"""Denotational stable-failures semantics (bounded).

The trace model (paper Sec. IV-A2) is validated by implementing its
equations independently of the operational semantics; this module does the
same for the *stable failures* model that backs the checker's ``[F=``
refinement.  A failure is a pair ``(s, X)``: after trace *s* the process can
stably refuse every event in *X*.

The standard equations (Roscoe, *Understanding Concurrent Systems*) are
implemented over an explicit finite alphabet, bounded by trace length, for
the recursion-free operators -- enough to cross-check the refinement engine
on randomly generated processes (see ``tests/fdr/test_failures_property.py``).

Refusal sets are subsets of ``Sigma ∪ {✓}``; with the small alphabets used
in testing the powerset stays tiny.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from .events import Alphabet, Event, TICK
from .lts import LTS
from .process import (
    Environment,
    ExternalChoice,
    GenParallel,
    Hiding,
    Interleave,
    InternalChoice,
    Omega,
    Prefix,
    Process,
    ProcessRef,
    SeqComp,
    Skip,
    Stop,
)
from .traces import (
    Trace,
    denotational_traces,
    is_terminated,
    merge_traces,
    strip_tick,
)

Failure = Tuple[Trace, FrozenSet[Event]]


def _powerset(events: Iterable[Event]) -> Tuple[FrozenSet[Event], ...]:
    items = list(events)
    return tuple(
        frozenset(subset)
        for size in range(len(items) + 1)
        for subset in combinations(items, size)
    )


def denotational_failures(
    process: Process,
    sigma: Alphabet,
    env: Optional[Environment] = None,
    max_length: int = 4,
) -> Set[Failure]:
    """Bounded stable failures of *process* over the alphabet *sigma*.

    Implements the textbook equations for the recursion-free fragment
    (recursion through ``ProcessRef`` is unfolded like in the trace
    semantics; guarded definitions terminate under the length bound).
    """
    env = env or Environment()
    sigma_events = list(sigma)
    sigma_tick = sigma_events + [TICK]
    refusals_all = _powerset(sigma_tick)
    refusals_sans_tick = tuple(r for r in refusals_all if TICK not in r)

    def close_down(failures: Set[Failure]) -> Set[Failure]:
        """Refusing X implies refusing every subset of X."""
        closed: Set[Failure] = set()
        for trace, refusal in failures:
            for subset in refusals_all:
                if subset <= refusal:
                    closed.add((trace, subset))
        return closed

    def go(term: Process, budget: int) -> Set[Failure]:
        if isinstance(term, (Stop, Omega)):
            return {((), refusal) for refusal in refusals_all}
        if isinstance(term, Skip):
            failures: Set[Failure] = {
                ((), refusal) for refusal in refusals_sans_tick
            }
            if budget >= 1:
                failures |= {((TICK,), refusal) for refusal in refusals_all}
            return failures
        if isinstance(term, Prefix):
            failures = {
                ((), refusal)
                for refusal in refusals_all
                if term.event not in refusal
            }
            if budget >= 1:
                for trace, refusal in go(term.continuation, budget - 1):
                    extended = (term.event,) + trace
                    if len(extended) <= budget:
                        failures.add((extended, refusal))
            return failures
        if isinstance(term, ExternalChoice):
            left = go(term.left, budget)
            right = go(term.right, budget)
            failures = set()
            # at <> both sides must refuse jointly
            left_empty = {refusal for trace, refusal in left if trace == ()}
            right_empty = {refusal for trace, refusal in right if trace == ()}
            failures |= {((), refusal) for refusal in left_empty & right_empty}
            # after the first event either side's failures apply
            failures |= {
                (trace, refusal)
                for trace, refusal in left | right
                if trace != ()
            }
            # NOTE: tick is treated as an ordinary resolving event (the same
            # convention as the operational semantics and the parallel
            # operator's sync-on-tick); Roscoe's special SKIP-in-choice rule
            # is deliberately not applied, so a choice offering termination
            # cannot stably refuse tick at <>
            return failures
        if isinstance(term, InternalChoice):
            return go(term.left, budget) | go(term.right, budget)
        if isinstance(term, SeqComp):
            first = go(term.first, budget)
            first_traces = denotational_traces(term.first, env, budget)
            failures = set()
            for trace, refusal in first:
                # unterminated behaviour of P1: refusal must also cover tick
                # (the tick is internalised, so it cannot be relied on)
                if not is_terminated(trace):
                    if (trace, refusal | {TICK}) in first:
                        failures.add((trace, refusal))
            for trace in first_traces:
                if is_terminated(trace):
                    stem = strip_tick(trace)
                    for tail, refusal in go(term.second, budget - len(stem)):
                        combined = stem + tail
                        if len(combined) <= budget:
                            failures.add((combined, refusal))
            return failures
        if isinstance(term, (GenParallel, Interleave)):
            sync = term.sync if isinstance(term, GenParallel) else Alphabet()
            left = go(term.left, budget)
            right = go(term.right, budget)
            failures = set()
            sync_tick = set(sync) | {TICK}
            for ltrace, lrefusal in left:
                for rtrace, rrefusal in right:
                    # free (non-sync) refusals must agree
                    if (lrefusal - sync_tick) != (rrefusal - sync_tick):
                        continue
                    refusal = lrefusal | rrefusal
                    for merged in merge_traces(ltrace, rtrace, sync):
                        if len(merged) > budget:
                            continue
                        # only complete merges of both traces carry the
                        # refusal information
                        if _is_complete_merge(merged, ltrace, rtrace, sync):
                            failures.add((merged, refusal))
            return failures
        if isinstance(term, Hiding):
            # failures(P \ A) = {(s\A, X) | (s, X ∪ A) ∈ failures(P)}:
            # a state of the hidden process is stable only if it refuses
            # every hidden event too
            hidden = frozenset(term.hidden)
            inner = go(term.process, budget + 2 * budget + 8)
            failures = set()
            for trace, refusal in inner:
                if hidden <= refusal:
                    visible = tuple(e for e in trace if e not in hidden)
                    if len(visible) <= budget:
                        # hidden events stay refusable after hiding (they can
                        # never be performed)
                        failures.add((visible, refusal))
            # hiding breaks downward closure (only refusals containing the
            # whole hidden set were kept); restore it before composing
            return close_down(failures)
        if isinstance(term, ProcessRef):
            return go(env.resolve(term.name), budget)
        raise TypeError(
            "denotational failures not defined for {!r}".format(
                type(term).__name__
            )
        )

    result = close_down(go(process, max_length))
    return {
        (trace, refusal) for trace, refusal in result if len(trace) <= max_length
    }


def _is_complete_merge(
    merged: Trace, left: Trace, right: Trace, sync: Alphabet
) -> bool:
    """True if *merged* consumes all of both traces (not a proper prefix)."""

    def in_sync(event: Event) -> bool:
        return event.is_tick() or event in sync

    free_left = sum(1 for e in left if not in_sync(e))
    free_right = sum(1 for e in right if not in_sync(e))
    sync_left = [e for e in left if in_sync(e)]
    sync_right = [e for e in right if in_sync(e)]
    if sync_left != sync_right:
        return False  # cannot complete at all
    expected = free_left + free_right + len(sync_left)
    return len(merged) == expected


def lts_failures(
    lts: LTS, sigma: Alphabet, max_length: int = 4
) -> Set[Failure]:
    """The stable failures the operational semantics exhibits, bounded.

    For every visible trace up to the bound: each *stable* state reachable
    after it contributes the refusals disjoint from its offer set.  Refusal
    sets are int bitsets over the LTS's interned event ids internally and
    only decoded to event sets at the end.
    """
    from .events import TAU_ID, TICK_ID

    table = lts.table
    sigma_ids = [table.intern(event) for event in sigma] + [TICK_ID]
    refusal_bits_all = tuple(
        sum(1 << sigma_ids[i] for i in positions)
        for size in range(len(sigma_ids) + 1)
        for positions in combinations(range(len(sigma_ids)), size)
    )
    failures_bits: Set[Tuple[Trace, int]] = set()

    start = lts.tau_closure(frozenset([lts.initial]))
    frontier = [((), start)]
    seen_traces = set()
    while frontier:
        next_frontier = []
        for trace, states in frontier:
            if trace in seen_traces:
                continue
            seen_traces.add(trace)
            for state in states:
                if not lts.is_stable(state):
                    continue
                offered = 0
                for eid, _t in lts.successors_ids(state):
                    offered |= 1 << eid
                for refusal in refusal_bits_all:
                    if not (refusal & offered):
                        failures_bits.add((trace, refusal))
            if len(trace) >= max_length:
                continue
            by_event = {}
            for state in states:
                for eid, target in lts.successors_ids(state):
                    if eid == TAU_ID:
                        continue
                    by_event.setdefault(eid, set()).add(target)
            for eid, targets in by_event.items():
                extended = trace + (table.event_of(eid),)
                if eid == TICK_ID:
                    # post-termination state: terminated, refuses everything
                    for refusal in refusal_bits_all:
                        failures_bits.add((extended, refusal))
                else:
                    next_frontier.append(
                        (extended, lts.tau_closure(frozenset(targets)))
                    )
        frontier = next_frontier
    decoded: Dict[int, FrozenSet[Event]] = {}
    failures: Set[Failure] = set()
    for trace, bits in failures_bits:
        refusal = decoded.get(bits)
        if refusal is None:
            refusal = table.decode_bits(bits)
            decoded[bits] = refusal
        failures.add((trace, refusal))
    return failures
