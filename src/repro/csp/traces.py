"""Denotational finite-trace semantics, exactly as defined in the paper.

Sec. IV-A2 of the paper gives recursive equations for ``traces(P)`` for each
operator.  This module implements those equations directly, so that the
operational semantics in :mod:`repro.csp.semantics` can be validated against
the paper's definitions (the test suite checks both give the same trace sets
on bounded models).

Because recursion makes trace sets infinite, all functions here are bounded
by a maximum trace length; they compute ``{ tr in traces(P) | #tr <= k }``,
which is sufficient for comparing against bounded LTS exploration.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set, Tuple

from .events import Alphabet, Event, TICK
from .process import (
    Environment,
    Interrupt,
    ExternalChoice,
    GenParallel,
    Hiding,
    Interleave,
    InternalChoice,
    Omega,
    Prefix,
    Process,
    ProcessRef,
    Renaming,
    SeqComp,
    Skip,
    Stop,
)

Trace = Tuple[Event, ...]

EMPTY: Trace = ()


def is_prefix(tr1: Trace, tr2: Trace) -> bool:
    """The paper's prefix order: ``tr1 <= tr2`` iff some tr' has tr1 ^ tr' = tr2."""
    return len(tr1) <= len(tr2) and tr2[: len(tr1)] == tr1


def prefix_closure(traces: Iterable[Trace]) -> Set[Trace]:
    """All prefixes of all given traces (trace sets are prefix-closed)."""
    closed: Set[Trace] = set()
    for trace in traces:
        for cut in range(len(trace) + 1):
            closed.add(trace[:cut])
    return closed


def hide_trace(trace: Trace, hidden: Alphabet) -> Trace:
    """The paper's ``tr \\ A`` hiding operator on a single trace."""
    return tuple(event for event in trace if event not in hidden)


def is_terminated(trace: Trace) -> bool:
    """True when the trace ends with tick."""
    return bool(trace) and trace[-1].is_tick()


def strip_tick(trace: Trace) -> Trace:
    return trace[:-1] if is_terminated(trace) else trace


def merge_traces(tr1: Trace, tr2: Trace, sync: Alphabet) -> Set[Trace]:
    """The paper's synchronised trace merge ``tr1 [|A|] tr2``.

    Events in ``A ∪ {✓}`` must occur in both traces simultaneously; all other
    events interleave.  Returns the set of merged traces (symmetric in its
    arguments).
    """

    def in_sync(event: Event) -> bool:
        return event.is_tick() or event in sync

    memo = {}

    def go(a: Trace, b: Trace) -> FrozenSet[Trace]:
        key = (a, b)
        cached = memo.get(key)
        if cached is not None:
            return cached
        results: Set[Trace] = set()
        if not a and not b:
            results.add(EMPTY)
        elif not a:
            # remaining events of b must all be free
            if all(not in_sync(event) for event in b):
                results.add(b)
            # a sync-event tail cannot proceed: contributes nothing (but
            # shorter merges are still produced by prefix closure upstream)
            head_free = []
            for event in b:
                if in_sync(event):
                    break
                head_free.append(event)
            results.add(tuple(head_free))
        elif not b:
            return go(b, a)
        else:
            x, rest_a = a[0], a[1:]
            y, rest_b = b[0], b[1:]
            if in_sync(x) and in_sync(y):
                if x == y:
                    for tail in go(rest_a, rest_b):
                        results.add((x,) + tail)
                # different sync events: stuck -- only the empty merge
                results.add(EMPTY)
            elif in_sync(x):
                for tail in go(a, rest_b):
                    results.add((y,) + tail)
                results.add(EMPTY)
            elif in_sync(y):
                for tail in go(rest_a, b):
                    results.add((x,) + tail)
                results.add(EMPTY)
            else:
                for tail in go(rest_a, b):
                    results.add((x,) + tail)
                for tail in go(a, rest_b):
                    results.add((y,) + tail)
        frozen = frozenset(results)
        memo[key] = frozen
        return frozen

    return prefix_closure(go(tr1, tr2))


def interleave_traces(tr1: Trace, tr2: Trace) -> Set[Trace]:
    """``tr1 ||| tr2`` -- the paper defines it as merge with an empty sync set."""
    return merge_traces(tr1, tr2, Alphabet())


def denotational_traces(
    process: Process,
    env: Optional[Environment] = None,
    max_length: int = 6,
) -> Set[Trace]:
    """Bounded trace set by the paper's denotational equations.

    Computes every trace of *process* of length at most *max_length*.
    Recursion through :class:`ProcessRef` is unfolded lazily; the length
    bound guarantees termination for guarded definitions.
    """
    env = env or Environment()

    def bounded(traces: Iterable[Trace]) -> Set[Trace]:
        return {tr for tr in traces if len(tr) <= max_length}

    def go(term: Process, budget: int) -> Set[Trace]:
        if budget < 0:
            return {EMPTY}
        if isinstance(term, (Stop, Omega)):
            return {EMPTY}
        if isinstance(term, Skip):
            return {EMPTY, (TICK,)} if budget >= 1 else {EMPTY}
        if isinstance(term, Prefix):
            results = {EMPTY}
            if budget >= 1:
                for tail in go(term.continuation, budget - 1):
                    results.add((term.event,) + tail)
            return results
        if isinstance(term, (ExternalChoice, InternalChoice)):
            # the paper: traces(P1 [] P2) = traces(P1) ∪ traces(P2); the
            # trace model cannot distinguish internal from external choice.
            return go(term.left, budget) | go(term.right, budget)
        if isinstance(term, SeqComp):
            first = go(term.first, budget)
            # the paper: traces(P1) ∩ Σ*  (unterminated traces of P1) ...
            results = {tr for tr in first if not is_terminated(tr)}
            for tr in first:
                if is_terminated(tr):
                    stem = strip_tick(tr)
                    remaining = budget - len(stem)
                    for tail in go(term.second, remaining):
                        if len(stem) + len(tail) <= budget:
                            results.add(stem + tail)
            return results
        if isinstance(term, (GenParallel, Interleave)):
            sync = term.sync if isinstance(term, GenParallel) else Alphabet()
            left = go(term.left, budget)
            right = go(term.right, budget)
            results: Set[Trace] = set()
            for tr1 in left:
                for tr2 in right:
                    for merged in merge_traces(tr1, tr2, sync):
                        if len(merged) <= budget:
                            results.add(merged)
            return results
        if isinstance(term, Interrupt):
            primary = go(term.primary, budget)
            results = set(primary)
            for stem in primary:
                if is_terminated(stem):
                    continue
                for tail in go(term.handler, budget - len(stem)):
                    if len(stem) + len(tail) <= budget:
                        results.add(stem + tail)
            return results
        if isinstance(term, Hiding):
            # hiding can shorten traces, so explore deeper underneath: a
            # hidden trace of length k may come from an unhidden trace of
            # any length.  We bound the *underlying* exploration by a fixed
            # expansion factor, which is exact when hidden cycles are absent.
            inner = go(term.process, budget + _hiding_slack(term, budget))
            return bounded({hide_trace(tr, term.hidden) for tr in inner})
        if isinstance(term, Renaming):
            inner = go(term.process, budget)
            return {
                tuple(
                    term.rename_event(event) if event.is_visible() else event
                    for event in trace
                )
                for trace in inner
            }
        if isinstance(term, ProcessRef):
            return go(env.resolve(term.name), budget)
        raise TypeError("unknown process term: {!r}".format(term))

    return bounded(go(process, max_length))


def _hiding_slack(term: Hiding, budget: int) -> int:
    """Extra exploration depth to account for events removed by hiding."""
    return max(2 * budget, 8)


def trace_refines(
    spec_traces: Set[Trace], impl_traces: Set[Trace]
) -> Tuple[bool, Optional[Trace]]:
    """The paper's trace refinement: ``Spec ⊑T Impl`` iff traces(Impl) ⊆ traces(Spec).

    Returns ``(holds, counterexample)`` where the counterexample is a shortest
    implementation trace missing from the specification.
    """
    violations = impl_traces - spec_traces
    if not violations:
        return True, None
    shortest = min(violations, key=lambda tr: (len(tr), tuple(str(e) for e in tr)))
    return False, shortest


def format_trace(trace: Trace) -> str:
    """Render a trace FDR-style: ``<send.reqSw, rec.rptSw>``."""
    return "<{}>".format(", ".join(str(event) for event in trace))
