"""The flat-array LTS kernel: CSR successor tables over ``array('q')``.

Every automaton the verification stack holds in memory is a
:class:`CompactLTS`: states are dense ints and the successor relation is
stored in compressed-sparse-row form --

* ``offsets`` -- ``state_count + 1`` int64s; state ``s``'s edges occupy the
  half-open range ``[offsets[s], offsets[s+1])``,
* ``events`` -- one interned event id per edge (``array('q')``),
* ``targets`` -- one target state per edge (``array('q')``),

with per-state edge order preserved exactly as inserted.  Insertion order is
load-bearing: BFS exploration order, counterexample tie-breaking and the
golden conformance pins all depend on it, so the kernel never sorts edges.

Construction happens through the same mutating API the old per-state
tuple-list representation offered (``add_state`` / ``add_transition`` /
``add_transition_id``); appends land in a per-state build buffer and the
first query packs it into the three flat arrays.  Mutating after a query
thaws the arrays back into the buffer, so the rare build-read-build pattern
(e.g. tests extending a queried automaton) still works; steady-state
consumers pay one ``is None`` check per query.

The engine's hot paths never materialise ``(event, target)`` tuples: they
call :meth:`CompactLTS.successors_span` and walk the shared arrays by index
(see ``fdr.refine``, ``fdr.normalise`` and the passes).  ``transition_count``
and ``alphabet()`` are cached -- both sit on stats/obs paths that used to
rescan every edge per call.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .events import AlphabetTable, Event, TAU_ID, TICK_ID
from .process import Process

StateId = int

#: (events, targets, start, end): the edge range of one state in the shared
#: flat arrays -- the kernel's zero-allocation successor view
Span = Tuple[array, array, int, int]


class CompactLTS:
    """A finite labelled transition system in flat-array (CSR) form."""

    __slots__ = (
        "initial",
        "table",
        "terms",
        "_offsets",
        "_events",
        "_targets",
        "_pending",
        "_alphabet",
    )

    def __init__(self, table: Optional[AlphabetTable] = None) -> None:
        self.initial: StateId = 0
        self.table: AlphabetTable = table if table is not None else AlphabetTable()
        #: optional mapping back to the process term each state came from
        self.terms: List[Optional[Process]] = []
        self._offsets: array = array("q", [0])
        self._events: array = array("q")
        self._targets: array = array("q")
        #: per-state edge buffers while building; None once packed
        self._pending: Optional[List[List[Tuple[int, StateId]]]] = []
        self._alphabet: Optional[FrozenSet[Event]] = None

    # -- construction --------------------------------------------------------

    def add_state(self, term: Optional[Process] = None) -> StateId:
        if self._pending is None:
            self._thaw()
        self._pending.append([])
        self.terms.append(term)
        return len(self.terms) - 1

    def add_transition(self, source: StateId, event: Event, target: StateId) -> None:
        self.add_transition_id(source, self.table.intern(event), target)

    def add_transition_id(self, source: StateId, eid: int, target: StateId) -> None:
        if self._pending is None:
            self._thaw()
        self._pending[source].append((eid, target))
        self._alphabet = None

    def _thaw(self) -> None:
        """Unpack the CSR arrays back into per-state build buffers."""
        offsets, events, targets = self._offsets, self._events, self._targets
        self._pending = [
            [
                (events[i], targets[i])
                for i in range(offsets[state], offsets[state + 1])
            ]
            for state in range(len(offsets) - 1)
        ]
        self._alphabet = None

    def _freeze(self) -> None:
        """Pack the build buffers into the three flat arrays."""
        pending = self._pending
        offsets = array("q", [0])
        events = array("q")
        targets = array("q")
        total = 0
        for edges in pending:
            total += len(edges)
            offsets.append(total)
            if edges:
                events.extend(eid for eid, _ in edges)
                targets.extend(target for _, target in edges)
        self._offsets, self._events, self._targets = offsets, events, targets
        self._pending = None

    # -- the kernel's raw views ----------------------------------------------

    def successors_span(self, state: StateId) -> Span:
        """State ``state``'s edge range in the shared flat arrays.

        The hot-path accessor: returns ``(events, targets, start, end)`` --
        no tuples are materialised, callers index the arrays directly.
        """
        if self._pending is not None:
            self._freeze()
        offsets = self._offsets
        return self._events, self._targets, offsets[state], offsets[state + 1]

    def csr_arrays(self) -> Tuple[array, array, array]:
        """The packed ``(offsets, events, targets)`` arrays (freezes first).

        The disk cache serialises these directly; treat them as read-only.
        """
        if self._pending is not None:
            self._freeze()
        return self._offsets, self._events, self._targets

    @classmethod
    def from_csr(
        cls,
        table: Optional[AlphabetTable],
        initial: StateId,
        offsets: array,
        events: array,
        targets: array,
    ) -> "CompactLTS":
        """Adopt already-packed CSR arrays (the warm disk-cache load path)."""
        state_count = len(offsets) - 1
        if state_count < 0:
            raise ValueError("offsets array must have at least one entry")
        if len(events) != len(targets) or (
            state_count >= 0 and offsets[-1] != len(events)
        ):
            raise ValueError("CSR arrays are inconsistent")
        lts = cls(table)
        lts.initial = initial
        lts.terms = [None] * state_count
        lts._offsets = offsets
        lts._events = events
        lts._targets = targets
        lts._pending = None
        return lts

    # -- queries -------------------------------------------------------------

    @property
    def state_count(self) -> int:
        return len(self.terms)

    @property
    def transition_count(self) -> int:
        """Total edge count -- O(1) once packed (cached by representation)."""
        pending = self._pending
        if pending is not None:
            return sum(len(edges) for edges in pending)
        return len(self._events)

    def successors(self, state: StateId) -> List[Tuple[Event, StateId]]:
        events, targets, start, end = self.successors_span(state)
        event_of = self.table.event_of
        return [
            (event_of(events[i]), targets[i]) for i in range(start, end)
        ]

    def successors_ids(self, state: StateId) -> List[Tuple[int, StateId]]:
        """The interned transitions as tuples (compatibility view).

        Engine loops should prefer :meth:`successors_span`, which does not
        allocate per edge.
        """
        events, targets, start, end = self.successors_span(state)
        return [(events[i], targets[i]) for i in range(start, end)]

    def visible_successors(self, state: StateId) -> List[Tuple[Event, StateId]]:
        """Transitions on events other than tau (tick included: it is observable)."""
        events, targets, start, end = self.successors_span(state)
        event_of = self.table.event_of
        return [
            (event_of(events[i]), targets[i])
            for i in range(start, end)
            if events[i] != TAU_ID
        ]

    def tau_successors(self, state: StateId) -> List[StateId]:
        events, targets, start, end = self.successors_span(state)
        return [targets[i] for i in range(start, end) if events[i] == TAU_ID]

    def initials(self, state: StateId) -> FrozenSet[Event]:
        events, _targets, start, end = self.successors_span(state)
        event_of = self.table.event_of
        return frozenset(event_of(events[i]) for i in range(start, end))

    def is_stable(self, state: StateId) -> bool:
        """A state is stable if it has no outgoing tau."""
        events, _targets, start, end = self.successors_span(state)
        for i in range(start, end):
            if events[i] == TAU_ID:
                return False
        return True

    def is_deadlocked(self, state: StateId) -> bool:
        """No transitions at all and not a post-termination state."""
        _events, _targets, start, end = self.successors_span(state)
        return start == end

    def tau_closure(self, states: FrozenSet[StateId]) -> FrozenSet[StateId]:
        """All states reachable from *states* by zero or more tau steps."""
        if self._pending is not None:
            self._freeze()
        offsets, events, targets = self._offsets, self._events, self._targets
        seen: Set[StateId] = set(states)
        work = deque(states)
        while work:
            state = work.popleft()
            for i in range(offsets[state], offsets[state + 1]):
                if events[i] == TAU_ID:
                    target = targets[i]
                    if target not in seen:
                        seen.add(target)
                        work.append(target)
        return frozenset(seen)

    def alphabet(self) -> FrozenSet[Event]:
        """Every visible event appearing on some transition (cached)."""
        cached = self._alphabet
        if cached is not None:
            return cached
        if self._pending is not None:
            self._freeze()
        ids: Set[int] = set(self._events)
        ids.discard(TAU_ID)
        ids.discard(TICK_ID)
        event_of = self.table.event_of
        result = frozenset(event_of(eid) for eid in ids)
        self._alphabet = result
        return result

    def events_after(self, states: FrozenSet[StateId]) -> FrozenSet[Event]:
        """Visible/tick events available from any of the given states."""
        ids: Set[int] = set()
        for state in states:
            events, _targets, start, end = self.successors_span(state)
            for i in range(start, end):
                if events[i] != TAU_ID:
                    ids.add(events[i])
        event_of = self.table.event_of
        return frozenset(event_of(eid) for eid in ids)

    def walk(self, trace: List[Event]) -> Optional[FrozenSet[StateId]]:
        """The set of states reachable by *trace* (with taus), or None if impossible."""
        current = self.tau_closure(frozenset([self.initial]))
        for event in trace:
            eid = self.table.id_of(event)
            if eid is None:
                return None
            step: Set[StateId] = set()
            for state in current:
                events, targets, start, end = self.successors_span(state)
                for i in range(start, end):
                    if events[i] == eid:
                        step.add(targets[i])
            if not step:
                return None
            current = self.tau_closure(frozenset(step))
        return current

    def iter_states(self) -> Iterator[StateId]:
        return iter(range(len(self.terms)))

    def to_dot(self, name: str = "lts") -> str:
        """Render the LTS in Graphviz dot format (FDR-style visualisation)."""
        lines = ["digraph {} {{".format(name), "  rankdir=LR;"]
        lines.append('  init [shape=point, label=""];')
        lines.append("  init -> s{};".format(self.initial))
        for state in self.iter_states():
            shape = "doublecircle" if self.is_deadlocked(state) else "circle"
            lines.append('  s{} [shape={}, label="{}"];'.format(state, shape, state))
        for state in self.iter_states():
            for event, target in self.successors(state):
                label = str(event)
                lines.append('  s{} -> s{} [label="{}"];'.format(state, target, label))
        lines.append("}")
        return "\n".join(lines)
