"""Structural operational semantics for CSP process terms.

:func:`transitions` computes the labelled transitions of a process term,
following the standard SOS rules for the operators in the paper's grammar
(Sec. IV-A2).  The rules implemented:

* ``Stop`` and ``Omega`` have no transitions.
* ``Skip`` performs tick and becomes ``Omega``.
* ``e -> P`` performs *e* and becomes *P*.
* External choice is resolved by the first visible (or tick) event; internal
  (tau) moves of a branch do not resolve it.
* Internal choice silently (tau) commits to either branch.
* ``P1 ; P2`` converts P1's tick into a tau move to P2.
* Generalised parallel synchronises on the sync set *and on tick* -- the
  paper's definition is synchronisation on ``A ∪ {✓}``; interleaving is
  the special case with an empty sync set.
* Hiding converts hidden visible events into tau.
* Renaming relabels visible events.
* A ``ProcessRef`` unwinds to its definition without introducing a tau,
  exactly as FDR compiles named equations; unguarded recursion (``P = P``)
  is detected and reported rather than looping forever.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from .events import Event, TAU, TICK
from .process import (
    CompiledProcess,
    Environment,
    Interrupt,
    ExternalChoice,
    GenParallel,
    Hiding,
    Interleave,
    InternalChoice,
    OMEGA,
    Omega,
    Prefix,
    Process,
    ProcessRef,
    Renaming,
    SeqComp,
    Skip,
    Stop,
)

Transition = Tuple[Event, Process]


class UnguardedRecursionError(RuntimeError):
    """Raised when a recursive definition has no event guard (e.g. ``P = P``)."""

    def __init__(self, name: str) -> None:
        super().__init__(
            "unguarded recursion through process {!r}: the definition reaches "
            "itself without performing any event".format(name)
        )
        self.name = name


def transitions(process: Process, env: Environment) -> List[Transition]:
    """All one-step transitions ``(event, successor)`` of *process*."""
    return _transitions(process, env, frozenset())


def initials(process: Process, env: Environment) -> FrozenSet[Event]:
    """The set of events the process can immediately perform (including tau/tick)."""
    return frozenset(event for event, _ in transitions(process, env))


def _transitions(
    process: Process, env: Environment, unwinding: FrozenSet[str]
) -> List[Transition]:
    if isinstance(process, (Stop, Omega)):
        return []

    if isinstance(process, CompiledProcess):
        # a pre-compiled component: replay its automaton's moves (the plan
        # memoises these lists per state, so this is a lookup, not a rebuild)
        return process.automaton.transitions_from(process.state)

    if isinstance(process, Skip):
        return [(TICK, OMEGA)]

    if isinstance(process, Prefix):
        return [(process.event, process.continuation)]

    if isinstance(process, ExternalChoice):
        result: List[Transition] = []
        for event, successor in _transitions(process.left, env, unwinding):
            if event.is_tau():
                result.append((TAU, ExternalChoice(successor, process.right)))
            else:
                result.append((event, successor))
        for event, successor in _transitions(process.right, env, unwinding):
            if event.is_tau():
                result.append((TAU, ExternalChoice(process.left, successor)))
            else:
                result.append((event, successor))
        return result

    if isinstance(process, InternalChoice):
        return [(TAU, process.left), (TAU, process.right)]

    if isinstance(process, SeqComp):
        result = []
        for event, successor in _transitions(process.first, env, unwinding):
            if event.is_tick():
                result.append((TAU, process.second))
            else:
                result.append((event, SeqComp(successor, process.second)))
        return result

    if isinstance(process, (GenParallel, Interleave)):
        if isinstance(process, GenParallel):
            sync = process.sync
            rebuild = lambda l, r: GenParallel(l, r, sync)  # noqa: E731
        else:
            sync = None  # empty sync set
            rebuild = Interleave
        left_moves = _transitions(process.left, env, unwinding)
        right_moves = _transitions(process.right, env, unwinding)
        result = []

        def must_sync(event: Event) -> bool:
            if event.is_tick():
                return True
            if event.is_tau():
                return False
            return sync is not None and event in sync

        for event, successor in left_moves:
            if not must_sync(event):
                result.append((event, rebuild(successor, process.right)))
        for event, successor in right_moves:
            if not must_sync(event):
                result.append((event, rebuild(process.left, successor)))
        for levent, lsucc in left_moves:
            if not must_sync(levent):
                continue
            for revent, rsucc in right_moves:
                if revent == levent:
                    result.append((levent, rebuild(lsucc, rsucc)))
        return result

    if isinstance(process, Interrupt):
        result = []
        for event, successor in _transitions(process.primary, env, unwinding):
            if event.is_tick():
                result.append((TICK, OMEGA))
            else:
                result.append((event, Interrupt(successor, process.handler)))
        for event, successor in _transitions(process.handler, env, unwinding):
            if event.is_tau():
                result.append((TAU, Interrupt(process.primary, successor)))
            elif event.is_tick():
                result.append((TICK, OMEGA))
            else:
                result.append((event, successor))
        return result

    if isinstance(process, Hiding):
        result = []
        for event, successor in _transitions(process.process, env, unwinding):
            rest = Hiding(successor, process.hidden)
            if event.is_visible() and event in process.hidden:
                result.append((TAU, rest))
            else:
                result.append((event, rest))
        return result

    if isinstance(process, Renaming):
        result = []
        for event, successor in _transitions(process.process, env, unwinding):
            renamed = process.rename_event(event) if event.is_visible() else event
            result.append((renamed, Renaming(successor, dict(process.mapping))))
        return result

    if isinstance(process, ProcessRef):
        if process.name in unwinding:
            raise UnguardedRecursionError(process.name)
        body = env.resolve(process.name)
        return _transitions(body, env, unwinding | {process.name})

    raise TypeError("unknown process term: {!r}".format(process))
