"""Algebraic laws of CSP, checkable on bounded trace sets.

The paper (Sec. IV-A1) stresses that CSP "has a sound mathematical basis,
thus enabling formal reasoning about system descriptions using algebraic
laws".  This module packages the standard trace-model laws as executable
checks: each law is a pair of process-term constructors whose bounded trace
sets must coincide.  The property-based test-suite instantiates these laws
over randomly generated processes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from .events import Alphabet
from .process import (
    Environment,
    Interrupt,
    ExternalChoice,
    GenParallel,
    Interleave,
    InternalChoice,
    Process,
    SeqComp,
    SKIP,
    STOP,
)
from .traces import Trace, denotational_traces

LawBody = Callable[..., Tuple[Process, Process]]


def traces_equal(
    left: Process,
    right: Process,
    env: Optional[Environment] = None,
    max_length: int = 5,
) -> bool:
    """Bounded trace equivalence: both sides have the same traces up to the bound."""
    return denotational_traces(left, env, max_length) == denotational_traces(
        right, env, max_length
    )


def law_choice_commutative(p: Process, q: Process) -> Tuple[Process, Process]:
    """P [] Q  =T  Q [] P"""
    return ExternalChoice(p, q), ExternalChoice(q, p)


def law_choice_associative(
    p: Process, q: Process, r: Process
) -> Tuple[Process, Process]:
    """(P [] Q) [] R  =T  P [] (Q [] R)"""
    return ExternalChoice(ExternalChoice(p, q), r), ExternalChoice(p, ExternalChoice(q, r))


def law_choice_idempotent(p: Process) -> Tuple[Process, Process]:
    """P [] P  =T  P"""
    return ExternalChoice(p, p), p


def law_choice_unit(p: Process) -> Tuple[Process, Process]:
    """P [] STOP  =T  P"""
    return ExternalChoice(p, STOP), p


def law_internal_external_trace_equal(p: Process, q: Process) -> Tuple[Process, Process]:
    """P |~| Q  =T  P [] Q  (the trace model cannot tell the choices apart)."""
    return InternalChoice(p, q), ExternalChoice(p, q)


def law_interleave_commutative(p: Process, q: Process) -> Tuple[Process, Process]:
    """P ||| Q  =T  Q ||| P"""
    return Interleave(p, q), Interleave(q, p)


def law_interleave_associative(
    p: Process, q: Process, r: Process
) -> Tuple[Process, Process]:
    """(P ||| Q) ||| R  =T  P ||| (Q ||| R)"""
    return Interleave(Interleave(p, q), r), Interleave(p, Interleave(q, r))


def law_parallel_commutative(
    p: Process, q: Process, sync: Alphabet
) -> Tuple[Process, Process]:
    """P [|A|] Q  =T  Q [|A|] P"""
    return GenParallel(p, q, sync), GenParallel(q, p, sync)


def law_parallel_stop(p: Process, sync: Alphabet) -> Tuple[Process, Process]:
    """If every event of P is in A, then P [|A|] STOP =T STOP."""
    return GenParallel(p, STOP, sync), STOP


def law_seq_skip_left_unit(p: Process) -> Tuple[Process, Process]:
    """SKIP ; P  =T  P"""
    return SeqComp(SKIP, p), p


def law_seq_associative(
    p: Process, q: Process, r: Process
) -> Tuple[Process, Process]:
    """(P ; Q) ; R  =T  P ; (Q ; R)"""
    return SeqComp(SeqComp(p, q), r), SeqComp(p, SeqComp(q, r))


def law_stop_seq(p: Process) -> Tuple[Process, Process]:
    """STOP ; P  =T  STOP (deadlock never terminates)."""
    return SeqComp(STOP, p), STOP


def law_interrupt_stop_unit(p: Process) -> Tuple[Process, Process]:
    r"""P /\ STOP  =T  P (a handler that can do nothing never takes over)."""
    return Interrupt(p, STOP), p


def law_stop_interrupt(q: Process) -> Tuple[Process, Process]:
    r"""STOP /\ Q  =T  Q (trace model: the handler is the only activity)."""
    return Interrupt(STOP, q), q


def law_interrupt_associative(
    p: Process, q: Process, r: Process
) -> Tuple[Process, Process]:
    r"""(P /\ Q) /\ R  =T  P /\ (Q /\ R)"""
    return Interrupt(Interrupt(p, q), r), Interrupt(p, Interrupt(q, r))


#: Operand signature per law: each character is one operand -- ``p`` a
#: process, ``A`` an alphabet.  The property-based oracles use this to
#: instantiate any registered law with generated operands; keep it in sync
#: with :data:`LAWS`.
LAW_OPERANDS: Dict[str, str] = {
    "choice-commutative": "pp",
    "choice-associative": "ppp",
    "choice-idempotent": "p",
    "choice-unit": "p",
    "internal-external-trace-equal": "pp",
    "interleave-commutative": "pp",
    "interleave-associative": "ppp",
    "parallel-commutative": "ppA",
    "seq-skip-left-unit": "p",
    "seq-associative": "ppp",
    "stop-seq": "p",
    "interrupt-stop-unit": "p",
    "stop-interrupt": "p",
    "interrupt-associative": "ppp",
}

#: A registry of the unary/binary/ternary laws, so the test-suite and the
#: documentation can enumerate them.
LAWS: Dict[str, LawBody] = {
    "choice-commutative": law_choice_commutative,
    "choice-associative": law_choice_associative,
    "choice-idempotent": law_choice_idempotent,
    "choice-unit": law_choice_unit,
    "internal-external-trace-equal": law_internal_external_trace_equal,
    "interleave-commutative": law_interleave_commutative,
    "interleave-associative": law_interleave_associative,
    "parallel-commutative": law_parallel_commutative,
    "seq-skip-left-unit": law_seq_skip_left_unit,
    "seq-associative": law_seq_associative,
    "stop-seq": law_stop_seq,
    "interrupt-stop-unit": law_interrupt_stop_unit,
    "stop-interrupt": law_stop_interrupt,
    "interrupt-associative": law_interrupt_associative,
}


def check_law(
    name: str,
    *operands,
    env: Optional[Environment] = None,
    max_length: int = 5,
) -> bool:
    """Instantiate a named law with the operands and check bounded trace equality."""
    law = LAWS[name]
    left, right = law(*operands)
    return traces_equal(left, right, env, max_length)
