"""Discrete (tock) time for CSP models -- the paper's Sec. VII-B extension.

The paper names two routes to timed analysis and calls the second "more
practical": "simply extending the alphabet of our models to include a
specific *tock* event".  This module provides that route:

* :data:`TOCK` -- the distinguished time-passing event,
* :func:`wait` -- delay for n tocks,
* :func:`timed_run` -- a RUN process in which time may also pass,
* :func:`timeout_process` -- the classic tock-CSP timeout operator,
* :func:`periodic` -- an event exactly every n tocks,
* :func:`deadline_spec` -- "response within n tocks of trigger",
* :func:`timer_to_tock_monitor` -- a *timed* monitor for the extractor's
  ``setTimer``/``timeout``/``cancelTimer`` events, so extracted models can
  be analysed with real durations,
* :func:`tockify_lts` -- make time passable in every state of a compiled
  LTS (maximal-progress-free idling).
"""

from __future__ import annotations

from typing import Optional

from .events import Alphabet, Event
from .lts import LTS
from .process import (
    Environment,
    ExternalChoice,
    Prefix,
    Process,
    ProcessRef,
    external_choice,
)

#: The distinguished time event.  One tock = one tick of the model's clock.
TOCK = Event("tock")

_counter = [0]


def _fresh(prefix: str) -> str:
    _counter[0] += 1
    return "{}_{}".format(prefix, _counter[0])


def wait(tocks: int, then: Process) -> Process:
    """``WAIT(n); P`` -- let exactly *tocks* time units pass, then behave as P."""
    if tocks < 0:
        raise ValueError("cannot wait a negative number of tocks")
    process = then
    for _ in range(tocks):
        process = Prefix(TOCK, process)
    return process


def timed_run(
    alphabet: Alphabet, env: Environment, name: Optional[str] = None
) -> ProcessRef:
    """``RUN(A ∪ {tock})`` -- anything may happen, and time may always pass."""
    label = name or _fresh("TRUN")
    branches = [Prefix(event, ProcessRef(label)) for event in alphabet]
    branches.append(Prefix(TOCK, ProcessRef(label)))
    env.bind(label, external_choice(*branches))
    return ProcessRef(label)


def timeout_process(
    process: Process,
    tocks: int,
    fallback: Process,
    env: Environment,
    name: Optional[str] = None,
) -> ProcessRef:
    """Tock-CSP timeout: offer *process* for *tocks* time units, then *fallback*.

    ``T(k) = process [] tock -> T(k-1)``; ``T(0) = fallback``.  *process*
    must not itself perform tock (it is the untimed alternative being
    offered).
    """
    if tocks < 1:
        raise ValueError("timeout needs at least one tock")
    label = name or _fresh("TIMEOUT")

    def state(remaining: int) -> str:
        return "{}_{}".format(label, remaining)

    env.bind(state(0), fallback)
    for remaining in range(1, tocks + 1):
        env.bind(
            state(remaining),
            ExternalChoice(process, Prefix(TOCK, ProcessRef(state(remaining - 1)))),
        )
    env.bind(label, ProcessRef(state(tocks)))
    return ProcessRef(label)


def periodic(
    event: Event, period: int, env: Environment, name: Optional[str] = None
) -> ProcessRef:
    """*event* exactly every *period* tocks, forever (a cyclic task)."""
    if period < 1:
        raise ValueError("period must be at least one tock")
    label = name or _fresh("PERIODIC")
    env.bind(label, Prefix(event, wait(period, ProcessRef(label))))
    return ProcessRef(label)


def deadline_spec(
    trigger: Event,
    response: Event,
    deadline: int,
    alphabet: Alphabet,
    env: Environment,
    name: Optional[str] = None,
) -> ProcessRef:
    """Specification: after *trigger*, *response* occurs within *deadline* tocks.

    Outside a trigger window everything (and time) is free.  Inside the
    window, other events remain free but at most *deadline* tocks may pass
    before the response; the spec refuses the (deadline+1)-th tock, so any
    implementation that lets more time pass fails the trace refinement.
    """
    if deadline < 0:
        raise ValueError("deadline must be non-negative")
    label = name or _fresh("DEADLINE")
    others = (alphabet - Alphabet.of(trigger)) - Alphabet.of(response)

    def waiting(budget: int) -> str:
        return "{}_W{}".format(label, budget)

    idle_branches = [Prefix(event, ProcessRef(label)) for event in others]
    idle_branches.append(Prefix(TOCK, ProcessRef(label)))
    idle_branches.append(Prefix(response, ProcessRef(label)))  # unsolicited ok
    idle_branches.append(Prefix(trigger, ProcessRef(waiting(deadline))))
    env.bind(label, external_choice(*idle_branches))

    for budget in range(deadline + 1):
        branches = [Prefix(event, ProcessRef(waiting(budget))) for event in others]
        branches.append(Prefix(response, ProcessRef(label)))
        if budget > 0:
            branches.append(Prefix(TOCK, ProcessRef(waiting(budget - 1))))
        env.bind(waiting(budget), external_choice(*branches))
    return ProcessRef(label)


def timer_to_tock_monitor(
    timer_name: str,
    duration_tocks: int,
    env: Environment,
    timer_channel: str = "timeout",
    set_channel: str = "setTimer",
    cancel_channel: str = "cancelTimer",
    name: Optional[str] = None,
) -> ProcessRef:
    """A timed monitor for one extracted timer.

    The model extractor surfaces CAPL timers as ``setTimer.t`` /
    ``timeout.t`` / ``cancelTimer.t`` events; this monitor adds real time:
    once set, the timer fires *exactly* after ``duration_tocks`` tocks
    (unless cancelled or re-armed).  Compose it (synchronising on the timer
    events and tock) with the extracted node model to analyse deadlines.
    """
    if duration_tocks < 1:
        raise ValueError("timer duration must be at least one tock")
    label = name or _fresh("TTIMER_{}".format(timer_name))
    set_event = Event(set_channel, (timer_name,))
    fire_event = Event(timer_channel, (timer_name,))
    cancel_event = Event(cancel_channel, (timer_name,))

    def armed(remaining: int) -> str:
        return "{}_A{}".format(label, remaining)

    # idle: time passes freely; setting arms the countdown
    env.bind(
        label,
        external_choice(
            Prefix(TOCK, ProcessRef(label)),
            Prefix(set_event, ProcessRef(armed(duration_tocks))),
            Prefix(cancel_event, ProcessRef(label)),
        ),
    )
    for remaining in range(duration_tocks + 1):
        branches = [
            Prefix(cancel_event, ProcessRef(label)),
            Prefix(set_event, ProcessRef(armed(duration_tocks))),
        ]
        if remaining > 0:
            branches.append(Prefix(TOCK, ProcessRef(armed(remaining - 1))))
        else:
            branches.append(Prefix(fire_event, ProcessRef(label)))
        env.bind(armed(remaining), external_choice(*branches))
    return ProcessRef(label)


def tockify_lts(lts: LTS) -> LTS:
    """Add a tock self-loop to every state that does not already offer tock.

    The blunt 'time may always pass' conversion of an untimed LTS, useful
    for composing untimed components with timed specifications.
    """
    timed = LTS()
    for state in lts.iter_states():
        timed.add_state(lts.terms[state])
    timed.initial = lts.initial
    for state in lts.iter_states():
        has_tock = False
        for event, target in lts.successors(state):
            timed.add_transition(state, event, target)
            if event == TOCK:
                has_tock = True
        if not has_tock:
            timed.add_transition(state, TOCK, state)
    return timed
