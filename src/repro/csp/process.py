"""The CSP process AST.

Implements exactly the syntax of the paper (Sec. IV-A2):

    P ::= Stop | e -> P | P1 [] P2 | P1 ; P2 | P1 [|A|] P2 | P1 ||| P2

plus the standard extensions the paper's toolchain relies on: ``Skip``
(successful termination, needed for sequential composition to be useful),
internal choice (Table I lists it), hiding (used in the paper's trace
semantics), renaming, and named recursion (the paper's ``SP_02`` and the
generated ECU models are recursive processes).

Processes are immutable and hash structurally so that the LTS builder can
deduplicate states.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .events import Alphabet, Channel, Event, Value


def _canonical(item: object) -> str:
    """A canonical string for one `_key()` component (Processes excluded)."""
    if isinstance(item, Process):
        return "#" + item.fingerprint()
    if isinstance(item, Event):
        return "e" + repr((item.channel, item.fields))
    if isinstance(item, Alphabet):
        return "A{" + ",".join(
            sorted(repr((e.channel, e.fields)) for e in item.events)
        ) + "}"
    if isinstance(item, tuple):
        return "(" + ",".join(_canonical(part) for part in item) + ")"
    return type(item).__name__ + ":" + repr(item)


class _InternedMeta(type):
    """Hash-consing for process terms: equal terms become the same object.

    Constructing a term structurally equal to a live one returns the existing
    object.  Construction pays one table lookup; in exchange, the state memos
    of the compiler and the on-the-fly refinement expander dedup fresh terms
    by pointer comparison instead of walking whole subtrees.  Entries are
    dropped when the canonical term is garbage collected.
    """

    _table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __call__(cls, *args, **kwargs):
        term = super().__call__(*args, **kwargs)
        # key by (class, structural key), not by the term itself: a
        # WeakValueDictionary holds keys strongly, so a term keyed by itself
        # would never be collected
        key = (cls, term._key())
        canonical = _InternedMeta._table.get(key)
        if canonical is not None:
            return canonical
        _InternedMeta._table[key] = term
        return term


class Process(metaclass=_InternedMeta):
    """Base class for all process terms."""

    __slots__ = ("_hash", "_fingerprint", "__weakref__")

    # -- combinator sugar ---------------------------------------------------

    def then(self, other: "Process") -> "Process":
        """Sequential composition ``self ; other``."""
        return SeqComp(self, other)

    def choice(self, other: "Process") -> "Process":
        """External choice ``self [] other``."""
        return ExternalChoice(self, other)

    def internal_choice(self, other: "Process") -> "Process":
        """Internal (nondeterministic) choice ``self |~| other``."""
        return InternalChoice(self, other)

    def par(self, other: "Process", sync: Alphabet) -> "Process":
        """Generalised parallel ``self [| sync |] other``."""
        return GenParallel(self, other, sync)

    def interleave(self, other: "Process") -> "Process":
        """Interleaving ``self ||| other``."""
        return Interleave(self, other)

    def hide(self, hidden: Alphabet) -> "Process":
        """Hiding ``self \\ hidden``."""
        return Hiding(self, hidden)

    def rename(self, mapping: Mapping[Event, Event]) -> "Process":
        """Relational renaming ``self [[ a <- b ]]``."""
        return Renaming(self, mapping)

    # -- structural equality -------------------------------------------------

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            # shared subterms are common (SOS successors reuse the original
            # branch objects), so the identity fast path turns most deep
            # structural comparisons into pointer checks
            return True
        if not isinstance(other, Process):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash((type(self).__name__, self._key()))
            object.__setattr__(self, "_hash", value)
            return value

    def fingerprint(self) -> str:
        """A structural fingerprint (hex digest) of this term.

        Equal terms have equal fingerprints, and the digest depends only on
        the term's structure -- not on object identity or interpreter hash
        randomisation -- so it can key compilation caches across checks.
        Computed iteratively (deep prefix chains exceed the recursion limit)
        and cached on the node.
        """
        try:
            return self._fingerprint
        except AttributeError:
            pass
        stack = [self]
        while stack:
            term = stack[-1]
            if getattr(term, "_fingerprint", None) is not None:
                stack.pop()
                continue
            pending = [
                item
                for item in term._key()
                if isinstance(item, Process)
                and getattr(item, "_fingerprint", None) is None
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            digest = hashlib.sha256(type(term).__name__.encode("utf-8"))
            for item in term._key():
                digest.update(b"\x1f")
                digest.update(_canonical(item).encode("utf-8"))
            object.__setattr__(term, "_fingerprint", digest.hexdigest())
        return self._fingerprint


class Stop(Process):
    """The deadlocked process: engages in no event."""

    __slots__ = ()

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "STOP"


class Skip(Process):
    """Successful termination: performs tick then becomes Omega."""

    __slots__ = ()

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "SKIP"


class Omega(Process):
    """The state after termination: no transitions at all.

    Internal -- produced by the operational semantics when ``Skip`` performs
    its tick; users never write it directly.
    """

    __slots__ = ()

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "Ω"


class Prefix(Process):
    """The prefix ``e -> P``: willing only to do *e*, then behave as *P*."""

    __slots__ = ("event", "continuation")

    def __init__(self, event: Event, continuation: Process) -> None:
        if event.is_tau() or event.is_tick():
            raise ValueError("cannot prefix with a reserved event")
        object.__setattr__(self, "event", event)
        object.__setattr__(self, "continuation", continuation)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    def _key(self) -> tuple:
        return (self.event, self.continuation)

    def __repr__(self) -> str:
        return "{} -> {!r}".format(self.event, self.continuation)


class ExternalChoice(Process):
    """``P1 [] P2``: the environment resolves the choice by the first visible event."""

    __slots__ = ("left", "right")

    def __init__(self, left: Process, right: Process) -> None:
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ExternalChoice is immutable")

    def _key(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return "({!r} [] {!r})".format(self.left, self.right)


class InternalChoice(Process):
    """``P1 |~| P2``: the process itself nondeterministically picks a branch."""

    __slots__ = ("left", "right")

    def __init__(self, left: Process, right: Process) -> None:
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("InternalChoice is immutable")

    def _key(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return "({!r} |~| {!r})".format(self.left, self.right)


class SeqComp(Process):
    """``P1 ; P2``: behave as P1 until it terminates, then as P2."""

    __slots__ = ("first", "second")

    def __init__(self, first: Process, second: Process) -> None:
        object.__setattr__(self, "first", first)
        object.__setattr__(self, "second", second)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SeqComp is immutable")

    def _key(self) -> tuple:
        return (self.first, self.second)

    def __repr__(self) -> str:
        return "({!r} ; {!r})".format(self.first, self.second)


class GenParallel(Process):
    """``P1 [|A|] P2``: synchronise on events in A (and tick), interleave the rest."""

    __slots__ = ("left", "right", "sync")

    def __init__(self, left: Process, right: Process, sync: Alphabet) -> None:
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "sync", sync)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("GenParallel is immutable")

    def _key(self) -> tuple:
        return (self.left, self.right, self.sync)

    def __repr__(self) -> str:
        return "({!r} [|{!r}|] {!r})".format(self.left, self.sync, self.right)


class Interleave(Process):
    """``P1 ||| P2``: fully independent execution, synchronising only on tick."""

    __slots__ = ("left", "right")

    def __init__(self, left: Process, right: Process) -> None:
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Interleave is immutable")

    def _key(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return "({!r} ||| {!r})".format(self.left, self.right)


class Interrupt(Process):
    """``P /\\ Q``: behave as P, but Q may take over at any moment.

    The standard CSP interrupt operator -- the natural model of an attacker
    (or a higher-priority task) seizing control of a component.  P's
    successful termination ends the whole process; any visible event of Q
    resolves the interrupt in Q's favour.
    """

    __slots__ = ("primary", "handler")

    def __init__(self, primary: Process, handler: Process) -> None:
        object.__setattr__(self, "primary", primary)
        object.__setattr__(self, "handler", handler)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Interrupt is immutable")

    def _key(self) -> tuple:
        return (self.primary, self.handler)

    def __repr__(self) -> str:
        return "({!r} /\\ {!r})".format(self.primary, self.handler)


class Hiding(Process):
    """``P \\ A``: events in A become internal (tau)."""

    __slots__ = ("process", "hidden")

    def __init__(self, process: Process, hidden: Alphabet) -> None:
        object.__setattr__(self, "process", process)
        object.__setattr__(self, "hidden", hidden)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Hiding is immutable")

    def _key(self) -> tuple:
        return (self.process, self.hidden)

    def __repr__(self) -> str:
        return "({!r} \\ {!r})".format(self.process, self.hidden)


class Renaming(Process):
    """``P [[ a <- b ]]``: relabel the visible events of P."""

    __slots__ = ("process", "mapping")

    def __init__(self, process: Process, mapping: Mapping[Event, Event]) -> None:
        frozen = tuple(sorted(mapping.items(), key=lambda kv: (str(kv[0]), str(kv[1]))))
        for source, target in frozen:
            if not source.is_visible() or not target.is_visible():
                raise ValueError("renaming may only relabel visible events")
        object.__setattr__(self, "process", process)
        object.__setattr__(self, "mapping", frozen)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Renaming is immutable")

    def rename_event(self, event: Event) -> Event:
        for source, target in self.mapping:
            if source == event:
                return target
        return event

    def _key(self) -> tuple:
        return (self.process, self.mapping)

    def __repr__(self) -> str:
        pairs = ", ".join("{} <- {}".format(t, s) for s, t in self.mapping)
        return "({!r}[[{}]])".format(self.process, pairs)


class ProcessRef(Process):
    """A named reference, resolved against an :class:`Environment`.

    Recursion in CSP is written with named equations, e.g. the paper's

        SP02 = send.reqSw -> rec.rptSw -> SP02
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("process reference name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ProcessRef is immutable")

    def _key(self) -> tuple:
        return (self.name,)

    def __repr__(self) -> str:
        return self.name


class CompiledProcess(Process):
    """A state of an already-compiled (and usually compressed) automaton.

    The compilation plan replaces component subterms of a composition with
    these leaves, so the SOS explores the *minimised* component state
    machines instead of re-deriving the originals -- compress-before-
    compose.  ``automaton`` is any object with a stable ``token`` string
    (identifying the compiled artefact) and ``transitions_from(state)``
    returning ``[(Event, Process)]``; the concrete handle lives in
    :mod:`repro.engine.plan`, keeping this module free of engine imports.
    """

    __slots__ = ("automaton", "state")

    def __init__(self, automaton: object, state: int) -> None:
        object.__setattr__(self, "automaton", automaton)
        object.__setattr__(self, "state", state)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CompiledProcess is immutable")

    def _key(self) -> tuple:
        return (self.automaton.token, self.state)

    def __repr__(self) -> str:
        label = getattr(self.automaton, "label", None) or "compiled"
        return "{}@{}".format(label, self.state)


class Environment:
    """A set of named process equations: ``name = body``.

    Looking up an unbound name raises :class:`KeyError` with the available
    names, which keeps diagnostics readable when generated models reference a
    missing definition.
    """

    def __init__(self, bindings: Optional[Mapping[str, Process]] = None) -> None:
        self._bindings: Dict[str, Process] = dict(bindings or {})

    def bind(self, name: str, body: Process) -> "Environment":
        """Add (or replace) a definition; returns self for chaining."""
        self._bindings[name] = body
        return self

    def resolve(self, name: str) -> Process:
        try:
            return self._bindings[name]
        except KeyError:
            raise KeyError(
                "undefined process {!r}; defined: {}".format(
                    name, sorted(self._bindings) or "(none)"
                )
            ) from None

    def names(self) -> Sequence[str]:
        return sorted(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def copy(self) -> "Environment":
        return Environment(self._bindings)

    def merged(self, other: "Environment") -> "Environment":
        """A new environment with *other*'s bindings layered on top."""
        merged = dict(self._bindings)
        merged.update(other._bindings)
        return Environment(merged)

    def __repr__(self) -> str:
        return "Environment({})".format(", ".join(self.names()))


#: Shared singletons -- Stop/Skip/Omega carry no data.
STOP = Stop()
SKIP = Skip()
OMEGA = Omega()


def prefix(event: Event, continuation: Process) -> Prefix:
    """``event -> continuation``."""
    return Prefix(event, continuation)


def sequence(*steps: Event, then: Process = STOP) -> Process:
    """Chain events into nested prefixes: ``sequence(a, b, then=P)`` is ``a -> b -> P``."""
    result = then
    for step in reversed(steps):
        result = Prefix(step, result)
    return result


def external_choice(*processes: Process) -> Process:
    """N-ary external choice, right-associated; empty choice is STOP."""
    if not processes:
        return STOP
    result = processes[-1]
    for process in reversed(processes[:-1]):
        result = ExternalChoice(process, result)
    return result


def internal_choice(*processes: Process) -> Process:
    """N-ary internal choice, right-associated."""
    if not processes:
        raise ValueError("internal choice needs at least one branch")
    result = processes[-1]
    for process in reversed(processes[:-1]):
        result = InternalChoice(process, result)
    return result


def interleave_all(*processes: Process) -> Process:
    """N-ary interleaving; empty interleaving is SKIP (unit of |||)."""
    if not processes:
        return SKIP
    result = processes[-1]
    for process in reversed(processes[:-1]):
        result = Interleave(process, result)
    return result


def input_choice(
    channel: Channel,
    continuation: Callable[..., Process],
    where: Optional[Callable[..., bool]] = None,
) -> Process:
    """The CSPm input prefix ``channel?x -> continuation(x)``.

    Expands to an external choice over the channel's finite domain, which is
    exactly FDR's treatment of input prefixes.  *where* optionally filters the
    accepted field tuples (CSPm's ``channel?x:Set`` restriction).
    """
    branches = []
    for event in channel.events():
        if where is not None and not where(*event.fields):
            continue
        branches.append(Prefix(event, continuation(*event.fields)))
    if not branches:
        return STOP
    return external_choice(*branches)


def ref(name: str) -> ProcessRef:
    """Reference a named process equation."""
    return ProcessRef(name)
