"""Events, channels and alphabets for the CSP process algebra.

The paper (Sec. IV-A2) works with a set of events ``Sigma`` plus the special
termination event (tick).  Channel communications such as ``send.reqSw`` are
compound events: a channel name followed by zero or more data values.  This
module provides:

* :class:`Event` -- an immutable, hashable event value.
* :data:`TICK` / :data:`TAU` -- the special termination and internal events.
* :class:`Channel` -- a typed channel that manufactures events and can
  enumerate the finite set of events it carries.
* :class:`Alphabet` -- a finite set of events with set-algebra helpers, used
  as the synchronisation set of generalised parallel composition.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

Value = Union[str, int, bool, Tuple["Value", ...]]

_TICK_NAME = "✓"  # the paper's checkmark
_TAU_NAME = "τ"


def _format_value(value: Value) -> str:
    """Render a single event field the way CSPm prints it."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, tuple):
        return "(" + ", ".join(_format_value(v) for v in value) + ")"
    return str(value)


class Event:
    """An immutable CSP event.

    An event is a channel name plus a (possibly empty) tuple of field values.
    Plain events such as ``tick_tock`` are events whose field tuple is empty.
    Events compare and hash structurally, so they can be stored in the
    alphabets and transition tables used by the refinement checker.
    """

    __slots__ = ("_channel", "_fields", "_hash")

    def __init__(self, channel: str, fields: Sequence[Value] = ()) -> None:
        if not channel:
            raise ValueError("event channel name must be non-empty")
        self._channel = channel
        self._fields = tuple(fields)
        self._hash = hash((self._channel, self._fields))

    @property
    def channel(self) -> str:
        """The channel (or bare event) name."""
        return self._channel

    @property
    def fields(self) -> Tuple[Value, ...]:
        """The data fields carried on the channel."""
        return self._fields

    def is_tick(self) -> bool:
        """True for the distinguished termination event."""
        return self._channel == _TICK_NAME

    def is_tau(self) -> bool:
        """True for the internal (invisible) event."""
        return self._channel == _TAU_NAME

    def is_visible(self) -> bool:
        """True for ordinary events drawn from Sigma (not tick, not tau)."""
        return not self.is_tick() and not self.is_tau()

    def dot(self, *fields: Value) -> "Event":
        """Extend this event with more fields: ``send.dot('reqSw')``."""
        return Event(self._channel, self._fields + tuple(fields))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._channel == other._channel and self._fields == other._fields

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Event({!r})".format(str(self))

    def __str__(self) -> str:
        if not self._fields:
            return self._channel
        parts = ".".join(_format_value(f) for f in self._fields)
        return "{}.{}".format(self._channel, parts)


#: The distinguished successful-termination event (the paper's checkmark).
TICK = Event(_TICK_NAME)

#: The internal, invisible event produced by hiding and internal choice.
TAU = Event(_TAU_NAME)


class Channel:
    """A typed CSP channel declaration.

    Mirrors the CSPm declaration ``channel send, rec : msgs`` from the paper's
    Sec. V-B.  A channel knows the finite domain of each of its fields, so the
    full set of events it can carry is enumerable -- which is what makes the
    models finite-state and checkable.
    """

    def __init__(self, name: str, *field_domains: Sequence[Value]) -> None:
        if not name:
            raise ValueError("channel name must be non-empty")
        if name in (_TICK_NAME, _TAU_NAME):
            raise ValueError("channel name collides with a reserved event")
        self.name = name
        self.field_domains: Tuple[Tuple[Value, ...], ...] = tuple(
            tuple(domain) for domain in field_domains
        )
        for index, domain in enumerate(self.field_domains):
            if not domain:
                raise ValueError(
                    "field {} of channel {!r} has an empty domain".format(index, name)
                )

    @property
    def arity(self) -> int:
        """Number of data fields the channel carries."""
        return len(self.field_domains)

    def __call__(self, *fields: Value) -> Event:
        """Build the event ``name.f1.f2...`` after validating the fields."""
        if len(fields) != self.arity:
            raise ValueError(
                "channel {!r} carries {} field(s), got {}".format(
                    self.name, self.arity, len(fields)
                )
            )
        for index, (field, domain) in enumerate(zip(fields, self.field_domains)):
            if field not in domain:
                raise ValueError(
                    "value {!r} not in domain of field {} of channel {!r}".format(
                        field, index, self.name
                    )
                )
        return Event(self.name, fields)

    def event(self, *fields: Value) -> Event:
        """Alias of :meth:`__call__` for readability at call sites."""
        return self(*fields)

    def events(self) -> Iterator[Event]:
        """Enumerate every event this channel can carry (the channel's extensions)."""
        def expand(prefix: Tuple[Value, ...], remaining: int) -> Iterator[Event]:
            if remaining == len(self.field_domains):
                yield Event(self.name, prefix)
                return
            for value in self.field_domains[remaining]:
                yield from expand(prefix + (value,), remaining + 1)

        yield from expand((), 0)

    def alphabet(self) -> "Alphabet":
        """The set of all events on this channel as an :class:`Alphabet`."""
        return Alphabet(self.events())

    def matches(self, event: Event) -> bool:
        """True if *event* is carried by this channel."""
        return event.channel == self.name

    def __repr__(self) -> str:
        return "Channel({!r}, arity={})".format(self.name, self.arity)


class Alphabet:
    """A finite set of events, used as a synchronisation or hiding set."""

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event] = ()) -> None:
        frozen = frozenset(events)
        for event in frozen:
            if not isinstance(event, Event):
                raise TypeError("alphabet members must be Event, got {!r}".format(event))
            if event.is_tau():
                raise ValueError("tau may not appear in an alphabet")
        self._events = frozen

    @classmethod
    def of(cls, *events: Event) -> "Alphabet":
        """Convenience constructor: ``Alphabet.of(a, b, c)``."""
        return cls(events)

    @classmethod
    def from_channels(cls, *channels: Channel) -> "Alphabet":
        """The union of the extensions of several channels."""
        collected = []
        for channel in channels:
            collected.extend(channel.events())
        return cls(collected)

    @property
    def events(self) -> frozenset:
        return self._events

    def union(self, other: "Alphabet") -> "Alphabet":
        return Alphabet(self._events | other._events)

    def intersection(self, other: "Alphabet") -> "Alphabet":
        return Alphabet(self._events & other._events)

    def difference(self, other: "Alphabet") -> "Alphabet":
        return Alphabet(self._events - other._events)

    def __or__(self, other: "Alphabet") -> "Alphabet":
        return self.union(other)

    def __and__(self, other: "Alphabet") -> "Alphabet":
        return self.intersection(other)

    def __sub__(self, other: "Alphabet") -> "Alphabet":
        return self.difference(other)

    def __contains__(self, event: Event) -> bool:
        return event in self._events

    def __iter__(self) -> Iterator[Event]:
        return iter(sorted(self._events, key=str))

    def __len__(self) -> int:
        return len(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        return "Alphabet({{{}}})".format(", ".join(str(e) for e in self))


#: Dense ids reserved by every :class:`AlphabetTable`.
TAU_ID = 0
TICK_ID = 1


class AlphabetTable:
    """Interns events to dense integer ids for the verification engine.

    A table is shared by every automaton of one verification pipeline, so a
    transition label is a single small int: comparable with ``==``, usable
    as a list index, and packable into refusal-set bitsets (bit *i* of a
    bitset stands for the event with id *i*).  Tau and tick always get ids
    0 and 1; visible events are numbered in interning order.  The table
    renders ids back to :class:`Event` at API boundaries (counterexamples,
    trace reports), so callers never see the ids unless they ask.
    """

    __slots__ = ("_ids", "_events", "_sort_keys")

    def __init__(self) -> None:
        self._ids = {TAU: TAU_ID, TICK: TICK_ID}
        self._events = [TAU, TICK]
        self._sort_keys = [str(TAU), str(TICK)]

    def __len__(self) -> int:
        return len(self._events)

    def intern(self, event: Event) -> int:
        """The id of *event*, allocating the next dense id on first sight."""
        eid = self._ids.get(event)
        if eid is None:
            eid = len(self._events)
            self._ids[event] = eid
            self._events.append(event)
            self._sort_keys.append(str(event))
        return eid

    def id_of(self, event: Event) -> Optional[int]:
        """The id of *event* if already interned, else ``None`` (no allocation)."""
        return self._ids.get(event)

    def event_of(self, eid: int) -> Event:
        """Render an id back to its event."""
        return self._events[eid]

    def sort_key(self, eid: int) -> str:
        """The event's display string -- the deterministic ordering key."""
        return self._sort_keys[eid]

    def events(self) -> Tuple[Event, ...]:
        """Every interned event, in id order (tau and tick first)."""
        return tuple(self._events)

    # -- bitset helpers ------------------------------------------------------

    def encode_set(self, events: Iterable[Event]) -> int:
        """Pack a set of events into an int bitset, interning as needed."""
        bits = 0
        for event in events:
            bits |= 1 << self.intern(event)
        return bits

    def encode_known(self, events: Iterable[Event]) -> int:
        """Pack only the already-interned members of *events* into a bitset."""
        bits = 0
        for event in events:
            eid = self._ids.get(event)
            if eid is not None:
                bits |= 1 << eid
        return bits

    def decode_bits(self, bits: int) -> frozenset:
        """Unpack a bitset into the frozenset of events it stands for."""
        events = []
        while bits:
            low = bits & -bits
            events.append(self._events[low.bit_length() - 1])
            bits ^= low
        return frozenset(events)


def event(name: str, *fields: Value) -> Event:
    """Build an event directly: ``event('send', 'reqSw')`` is ``send.reqSw``."""
    return Event(name, fields)


def parse_event(text: str, domains: Optional[dict] = None) -> Event:
    """Parse a dotted event string such as ``"send.reqSw.1"``.

    Numeric fields become ints, ``true``/``false`` become bools, everything
    else stays a string.  *domains* optionally maps channel name -> Channel
    for validation.
    """
    parts = text.split(".")
    name = parts[0]
    fields = []
    for raw in parts[1:]:
        if raw == "true":
            fields.append(True)
        elif raw == "false":
            fields.append(False)
        else:
            try:
                fields.append(int(raw))
            except ValueError:
                fields.append(raw)
    if domains is not None and name in domains:
        return domains[name](*fields)
    return Event(name, tuple(fields))
