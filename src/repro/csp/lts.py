"""Explicit-state labelled transition systems compiled from process terms.

This is the bridge between the process algebra and the refinement checker:
a process term plus an environment of equations compiles, by exhaustive
exploration of the operational semantics, into a finite LTS with integer
states.  The compiler deduplicates structurally equal process terms, so
recursive definitions close back on themselves and the LTS is finite whenever
the process is finite-state.

The in-memory representation is the flat-array kernel of
:mod:`repro.csp.kernel`: :data:`LTS` *is* :class:`~repro.csp.kernel.
CompactLTS`, a CSR successor table over ``array('q')``.  The compiler below
builds the arrays directly -- BFS expands states in id order, so each
state's edge range lands contiguously and the offsets array falls out of the
walk for free.

Transition labels are stored as dense integer ids drawn from an
:class:`~repro.csp.events.AlphabetTable` (tau is id 0, tick id 1), so the
normaliser and refinement checker work on ints; the public ``successors`` /
``initials`` / ``walk`` API still speaks :class:`Event`, decoding through the
table at the boundary.  Pass a shared table to :func:`compile_lts` to give
several automata one id space -- the verification pipeline does exactly that.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from .events import AlphabetTable, TAU_ID, TICK_ID, Event
from .kernel import CompactLTS, StateId
from .process import Environment, Process
from .semantics import transitions as sos_transitions

#: The one in-memory automaton form.  The name ``LTS`` is kept for the
#: whole stack (and for history); the representation is the flat kernel.
LTS = CompactLTS


class StateSpaceLimitExceeded(RuntimeError):
    """Raised when exploration exceeds the configured state budget."""

    def __init__(self, limit: int) -> None:
        super().__init__(
            "state space exceeds the limit of {} states; the model may be "
            "infinite-state or the limit too small".format(limit)
        )
        self.limit = limit


DEFAULT_STATE_LIMIT = 200_000


def compile_lts(
    process: Process,
    env: Optional[Environment] = None,
    max_states: int = DEFAULT_STATE_LIMIT,
    table: Optional[AlphabetTable] = None,
) -> LTS:
    """Compile a process term into a finite LTS by exhaustive exploration.

    Structurally equal terms are merged into one state, which ties recursive
    definitions back into cycles.  Raises :class:`StateSpaceLimitExceeded` if
    more than *max_states* distinct terms are reached.  A shared *table* puts
    the result in an existing id space (one table per pipeline).

    States are numbered in BFS discovery order and each state is expanded
    exactly once, in id order -- so the kernel's CSR arrays are appended to
    directly, one contiguous edge range per state.
    """
    env = env or Environment()
    table = table if table is not None else AlphabetTable()
    intern = table.intern
    index: Dict[Process, StateId] = {}
    terms: List[Process] = []

    offsets = array("q", [0])
    events = array("q")
    targets = array("q")

    def state_of(term: Process) -> StateId:
        existing = index.get(term)
        if existing is not None:
            return existing
        if len(index) >= max_states:
            raise StateSpaceLimitExceeded(max_states)
        state = len(terms)
        index[term] = state
        terms.append(term)
        return state

    state_of(process)
    work: deque = deque([process])
    while work:
        term = work.popleft()
        for event, successor in sos_transitions(term, env):
            known = successor in index
            target = state_of(successor)
            events.append(intern(event))
            targets.append(target)
            if not known:
                work.append(successor)
        offsets.append(len(events))

    lts = CompactLTS.from_csr(table, 0, offsets, events, targets)
    lts.terms = terms
    return lts


def reachable_visible_traces(
    lts: LTS, max_length: int
) -> Set[Tuple[Event, ...]]:
    """All visible traces (tick included) of length <= max_length.

    Used by tests to compare the operational semantics against the paper's
    denotational trace definitions.  Exponential in *max_length* -- only for
    small models.
    """
    results: Set[Tuple[Event, ...]] = {()}
    start = lts.tau_closure(frozenset([lts.initial]))
    frontier: List[Tuple[Tuple[Event, ...], frozenset]] = [((), start)]
    event_of = lts.table.event_of
    for _ in range(max_length):
        next_frontier: List[Tuple[Tuple[Event, ...], frozenset]] = []
        for trace, states in frontier:
            by_event: Dict[int, Set[StateId]] = {}
            for state in states:
                for eid, target in lts.successors_ids(state):
                    if eid == TAU_ID:
                        continue
                    by_event.setdefault(eid, set()).add(target)
            for eid, targets in by_event.items():
                extended = trace + (event_of(eid),)
                if extended not in results:
                    results.add(extended)
                    if eid != TICK_ID:
                        closure = lts.tau_closure(frozenset(targets))
                        next_frontier.append((extended, closure))
        frontier = next_frontier
        if not frontier:
            break
    return results
