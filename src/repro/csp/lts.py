"""Explicit-state labelled transition systems compiled from process terms.

This is the bridge between the process algebra and the refinement checker:
a process term plus an environment of equations compiles, by exhaustive
exploration of the operational semantics, into a finite LTS with integer
states.  The compiler deduplicates structurally equal process terms, so
recursive definitions close back on themselves and the LTS is finite whenever
the process is finite-state.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .events import Event, TAU, TICK
from .process import Environment, Process
from .semantics import transitions as sos_transitions

StateId = int


class StateSpaceLimitExceeded(RuntimeError):
    """Raised when exploration exceeds the configured state budget."""

    def __init__(self, limit: int) -> None:
        super().__init__(
            "state space exceeds the limit of {} states; the model may be "
            "infinite-state or the limit too small".format(limit)
        )
        self.limit = limit


class LTS:
    """A finite labelled transition system with a single initial state."""

    def __init__(self) -> None:
        self.initial: StateId = 0
        self._succ: List[List[Tuple[Event, StateId]]] = []
        #: optional mapping back to the process term each state came from
        self.terms: List[Optional[Process]] = []

    # -- construction --------------------------------------------------------

    def add_state(self, term: Optional[Process] = None) -> StateId:
        self._succ.append([])
        self.terms.append(term)
        return len(self._succ) - 1

    def add_transition(self, source: StateId, event: Event, target: StateId) -> None:
        self._succ[source].append((event, target))

    # -- queries ---------------------------------------------------------------

    @property
    def state_count(self) -> int:
        return len(self._succ)

    @property
    def transition_count(self) -> int:
        return sum(len(edges) for edges in self._succ)

    def successors(self, state: StateId) -> List[Tuple[Event, StateId]]:
        return self._succ[state]

    def visible_successors(self, state: StateId) -> List[Tuple[Event, StateId]]:
        """Transitions on events other than tau (tick included: it is observable)."""
        return [(e, t) for e, t in self._succ[state] if not e.is_tau()]

    def tau_successors(self, state: StateId) -> List[StateId]:
        return [t for e, t in self._succ[state] if e.is_tau()]

    def initials(self, state: StateId) -> FrozenSet[Event]:
        return frozenset(e for e, _ in self._succ[state])

    def is_stable(self, state: StateId) -> bool:
        """A state is stable if it has no outgoing tau."""
        return not any(e.is_tau() for e, _ in self._succ[state])

    def is_deadlocked(self, state: StateId) -> bool:
        """No transitions at all and not a post-termination state."""
        return not self._succ[state]

    def tau_closure(self, states: FrozenSet[StateId]) -> FrozenSet[StateId]:
        """All states reachable from *states* by zero or more tau steps."""
        seen: Set[StateId] = set(states)
        work = deque(states)
        while work:
            state = work.popleft()
            for target in self.tau_successors(state):
                if target not in seen:
                    seen.add(target)
                    work.append(target)
        return frozenset(seen)

    def alphabet(self) -> FrozenSet[Event]:
        """Every visible event appearing on some transition."""
        events: Set[Event] = set()
        for edges in self._succ:
            for event, _ in edges:
                if event.is_visible():
                    events.add(event)
        return frozenset(events)

    def events_after(self, states: FrozenSet[StateId]) -> FrozenSet[Event]:
        """Visible/tick events available from any of the given states."""
        events: Set[Event] = set()
        for state in states:
            for event, _ in self._succ[state]:
                if not event.is_tau():
                    events.add(event)
        return frozenset(events)

    def walk(self, trace: List[Event]) -> Optional[FrozenSet[StateId]]:
        """The set of states reachable by *trace* (with taus), or None if impossible."""
        current = self.tau_closure(frozenset([self.initial]))
        for event in trace:
            step: Set[StateId] = set()
            for state in current:
                for edge_event, target in self._succ[state]:
                    if edge_event == event:
                        step.add(target)
            if not step:
                return None
            current = self.tau_closure(frozenset(step))
        return current

    def iter_states(self) -> Iterator[StateId]:
        return iter(range(len(self._succ)))

    def to_dot(self, name: str = "lts") -> str:
        """Render the LTS in Graphviz dot format (FDR-style visualisation)."""
        lines = ["digraph {} {{".format(name), "  rankdir=LR;"]
        lines.append('  init [shape=point, label=""];')
        lines.append("  init -> s{};".format(self.initial))
        for state in self.iter_states():
            shape = "doublecircle" if self.is_deadlocked(state) else "circle"
            lines.append('  s{} [shape={}, label="{}"];'.format(state, shape, state))
        for state in self.iter_states():
            for event, target in self._succ[state]:
                label = str(event)
                lines.append('  s{} -> s{} [label="{}"];'.format(state, target, label))
        lines.append("}")
        return "\n".join(lines)


DEFAULT_STATE_LIMIT = 200_000


def compile_lts(
    process: Process,
    env: Optional[Environment] = None,
    max_states: int = DEFAULT_STATE_LIMIT,
) -> LTS:
    """Compile a process term into a finite LTS by exhaustive exploration.

    Structurally equal terms are merged into one state, which ties recursive
    definitions back into cycles.  Raises :class:`StateSpaceLimitExceeded` if
    more than *max_states* distinct terms are reached.
    """
    env = env or Environment()
    lts = LTS()
    index: Dict[Process, StateId] = {}

    def state_of(term: Process) -> StateId:
        existing = index.get(term)
        if existing is not None:
            return existing
        if len(index) >= max_states:
            raise StateSpaceLimitExceeded(max_states)
        state = lts.add_state(term)
        index[term] = state
        return state

    root = state_of(process)
    lts.initial = root
    work: deque = deque([process])
    expanded: Set[StateId] = set()
    while work:
        term = work.popleft()
        source = index[term]
        if source in expanded:
            continue
        expanded.add(source)
        for event, successor in sos_transitions(term, env):
            known = successor in index
            target = state_of(successor)
            lts.add_transition(source, event, target)
            if not known:
                work.append(successor)
    return lts


def reachable_visible_traces(
    lts: LTS, max_length: int
) -> Set[Tuple[Event, ...]]:
    """All visible traces (tick included) of length <= max_length.

    Used by tests to compare the operational semantics against the paper's
    denotational trace definitions.  Exponential in *max_length* -- only for
    small models.
    """
    results: Set[Tuple[Event, ...]] = {()}
    start = lts.tau_closure(frozenset([lts.initial]))
    frontier: List[Tuple[Tuple[Event, ...], FrozenSet[StateId]]] = [((), start)]
    for _ in range(max_length):
        next_frontier: List[Tuple[Tuple[Event, ...], FrozenSet[StateId]]] = []
        for trace, states in frontier:
            by_event: Dict[Event, Set[StateId]] = {}
            for state in states:
                for event, target in lts.successors(state):
                    if event.is_tau():
                        continue
                    by_event.setdefault(event, set()).add(target)
            for event, targets in by_event.items():
                extended = trace + (event,)
                if extended not in results:
                    results.add(extended)
                    if not event.is_tick():
                        closure = lts.tau_closure(frozenset(targets))
                        next_frontier.append((extended, closure))
        frontier = next_frontier
        if not frontier:
            break
    return results
