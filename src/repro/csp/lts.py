"""Explicit-state labelled transition systems compiled from process terms.

This is the bridge between the process algebra and the refinement checker:
a process term plus an environment of equations compiles, by exhaustive
exploration of the operational semantics, into a finite LTS with integer
states.  The compiler deduplicates structurally equal process terms, so
recursive definitions close back on themselves and the LTS is finite whenever
the process is finite-state.

Transition labels are stored as dense integer ids drawn from an
:class:`~repro.csp.events.AlphabetTable` (tau is id 0, tick id 1), so the
normaliser and refinement checker work on ints; the public ``successors`` /
``initials`` / ``walk`` API still speaks :class:`Event`, decoding through the
table at the boundary.  Pass a shared table to :func:`compile_lts` to give
several automata one id space -- the verification pipeline does exactly that.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .events import AlphabetTable, Event, TAU, TAU_ID, TICK, TICK_ID
from .process import Environment, Process
from .semantics import transitions as sos_transitions

StateId = int


class StateSpaceLimitExceeded(RuntimeError):
    """Raised when exploration exceeds the configured state budget."""

    def __init__(self, limit: int) -> None:
        super().__init__(
            "state space exceeds the limit of {} states; the model may be "
            "infinite-state or the limit too small".format(limit)
        )
        self.limit = limit


class LTS:
    """A finite labelled transition system with a single initial state."""

    def __init__(self, table: Optional[AlphabetTable] = None) -> None:
        self.initial: StateId = 0
        self.table: AlphabetTable = table if table is not None else AlphabetTable()
        self._succ: List[List[Tuple[int, StateId]]] = []
        #: optional mapping back to the process term each state came from
        self.terms: List[Optional[Process]] = []

    # -- construction --------------------------------------------------------

    def add_state(self, term: Optional[Process] = None) -> StateId:
        self._succ.append([])
        self.terms.append(term)
        return len(self._succ) - 1

    def add_transition(self, source: StateId, event: Event, target: StateId) -> None:
        self._succ[source].append((self.table.intern(event), target))

    def add_transition_id(self, source: StateId, eid: int, target: StateId) -> None:
        self._succ[source].append((eid, target))

    # -- queries ---------------------------------------------------------------

    @property
    def state_count(self) -> int:
        return len(self._succ)

    @property
    def transition_count(self) -> int:
        return sum(len(edges) for edges in self._succ)

    def successors(self, state: StateId) -> List[Tuple[Event, StateId]]:
        event_of = self.table.event_of
        return [(event_of(eid), t) for eid, t in self._succ[state]]

    def successors_ids(self, state: StateId) -> List[Tuple[int, StateId]]:
        """The raw interned transitions -- the engine's hot-path view."""
        return self._succ[state]

    def visible_successors(self, state: StateId) -> List[Tuple[Event, StateId]]:
        """Transitions on events other than tau (tick included: it is observable)."""
        event_of = self.table.event_of
        return [
            (event_of(eid), t) for eid, t in self._succ[state] if eid != TAU_ID
        ]

    def tau_successors(self, state: StateId) -> List[StateId]:
        return [t for eid, t in self._succ[state] if eid == TAU_ID]

    def initials(self, state: StateId) -> FrozenSet[Event]:
        event_of = self.table.event_of
        return frozenset(event_of(eid) for eid, _ in self._succ[state])

    def is_stable(self, state: StateId) -> bool:
        """A state is stable if it has no outgoing tau."""
        return not any(eid == TAU_ID for eid, _ in self._succ[state])

    def is_deadlocked(self, state: StateId) -> bool:
        """No transitions at all and not a post-termination state."""
        return not self._succ[state]

    def tau_closure(self, states: FrozenSet[StateId]) -> FrozenSet[StateId]:
        """All states reachable from *states* by zero or more tau steps."""
        seen: Set[StateId] = set(states)
        work = deque(states)
        while work:
            state = work.popleft()
            for eid, target in self._succ[state]:
                if eid == TAU_ID and target not in seen:
                    seen.add(target)
                    work.append(target)
        return frozenset(seen)

    def alphabet(self) -> FrozenSet[Event]:
        """Every visible event appearing on some transition."""
        ids: Set[int] = set()
        for edges in self._succ:
            for eid, _ in edges:
                ids.add(eid)
        ids.discard(TAU_ID)
        ids.discard(TICK_ID)
        event_of = self.table.event_of
        return frozenset(event_of(eid) for eid in ids)

    def events_after(self, states: FrozenSet[StateId]) -> FrozenSet[Event]:
        """Visible/tick events available from any of the given states."""
        ids: Set[int] = set()
        for state in states:
            for eid, _ in self._succ[state]:
                if eid != TAU_ID:
                    ids.add(eid)
        event_of = self.table.event_of
        return frozenset(event_of(eid) for eid in ids)

    def walk(self, trace: List[Event]) -> Optional[FrozenSet[StateId]]:
        """The set of states reachable by *trace* (with taus), or None if impossible."""
        current = self.tau_closure(frozenset([self.initial]))
        for event in trace:
            eid = self.table.id_of(event)
            if eid is None:
                return None
            step: Set[StateId] = set()
            for state in current:
                for edge_id, target in self._succ[state]:
                    if edge_id == eid:
                        step.add(target)
            if not step:
                return None
            current = self.tau_closure(frozenset(step))
        return current

    def iter_states(self) -> Iterator[StateId]:
        return iter(range(len(self._succ)))

    def to_dot(self, name: str = "lts") -> str:
        """Render the LTS in Graphviz dot format (FDR-style visualisation)."""
        lines = ["digraph {} {{".format(name), "  rankdir=LR;"]
        lines.append('  init [shape=point, label=""];')
        lines.append("  init -> s{};".format(self.initial))
        for state in self.iter_states():
            shape = "doublecircle" if self.is_deadlocked(state) else "circle"
            lines.append('  s{} [shape={}, label="{}"];'.format(state, shape, state))
        for state in self.iter_states():
            for event, target in self.successors(state):
                label = str(event)
                lines.append('  s{} -> s{} [label="{}"];'.format(state, target, label))
        lines.append("}")
        return "\n".join(lines)


DEFAULT_STATE_LIMIT = 200_000


def compile_lts(
    process: Process,
    env: Optional[Environment] = None,
    max_states: int = DEFAULT_STATE_LIMIT,
    table: Optional[AlphabetTable] = None,
) -> LTS:
    """Compile a process term into a finite LTS by exhaustive exploration.

    Structurally equal terms are merged into one state, which ties recursive
    definitions back into cycles.  Raises :class:`StateSpaceLimitExceeded` if
    more than *max_states* distinct terms are reached.  A shared *table* puts
    the result in an existing id space (one table per pipeline).
    """
    env = env or Environment()
    lts = LTS(table)
    intern = lts.table.intern
    index: Dict[Process, StateId] = {}

    def state_of(term: Process) -> StateId:
        existing = index.get(term)
        if existing is not None:
            return existing
        if len(index) >= max_states:
            raise StateSpaceLimitExceeded(max_states)
        state = lts.add_state(term)
        index[term] = state
        return state

    root = state_of(process)
    lts.initial = root
    work: deque = deque([process])
    expanded: Set[StateId] = set()
    while work:
        term = work.popleft()
        source = index[term]
        if source in expanded:
            continue
        expanded.add(source)
        for event, successor in sos_transitions(term, env):
            known = successor in index
            target = state_of(successor)
            lts.add_transition_id(source, intern(event), target)
            if not known:
                work.append(successor)
    return lts


def reachable_visible_traces(
    lts: LTS, max_length: int
) -> Set[Tuple[Event, ...]]:
    """All visible traces (tick included) of length <= max_length.

    Used by tests to compare the operational semantics against the paper's
    denotational trace definitions.  Exponential in *max_length* -- only for
    small models.
    """
    results: Set[Tuple[Event, ...]] = {()}
    start = lts.tau_closure(frozenset([lts.initial]))
    frontier: List[Tuple[Tuple[Event, ...], FrozenSet[StateId]]] = [((), start)]
    event_of = lts.table.event_of
    for _ in range(max_length):
        next_frontier: List[Tuple[Tuple[Event, ...], FrozenSet[StateId]]] = []
        for trace, states in frontier:
            by_event: Dict[int, Set[StateId]] = {}
            for state in states:
                for eid, target in lts.successors_ids(state):
                    if eid == TAU_ID:
                        continue
                    by_event.setdefault(eid, set()).add(target)
            for eid, targets in by_event.items():
                extended = trace + (event_of(eid),)
                if extended not in results:
                    results.add(extended)
                    if eid != TICK_ID:
                        closure = lts.tau_closure(frozenset(targets))
                        next_frontier.append((extended, closure))
        frontier = next_frontier
        if not frontier:
            break
    return results
