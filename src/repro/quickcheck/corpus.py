"""Corpus files: shrunk failures persisted for replay and regression.

A corpus file records one oracle input -- normally the shrunk form of a
failure a campaign found -- together with the oracle that judged it and the
seeds that produced it.  Two consumers:

* ``cspfuzz --corpus DIR`` writes one file per shrunk failure, and
  ``cspfuzz --replay PATH`` re-runs them (the CI smoke job uploads the
  directory as an artifact on failure);
* ``tests/corpus/`` pins inputs that once exposed real bugs; the tier-1
  suite replays every file through its recorded oracle and each must stay
  green forever.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from .oracles import ORACLES
from .serialise import decode_value, encode_value

FORMAT_VERSION = 1


class CorpusCase:
    """One parsed corpus file."""

    def __init__(
        self,
        oracle: str,
        value: Any,
        seed: Optional[int] = None,
        message: str = "",
        path: Optional[str] = None,
    ) -> None:
        self.oracle = oracle
        self.value = value
        self.seed = seed
        self.message = message
        self.path = path

    def replay(self) -> Optional[str]:
        """Re-run the recorded oracle; the violation message, or None."""
        try:
            oracle = ORACLES[self.oracle]
        except KeyError:
            return "corpus file {} names unknown oracle {!r}".format(
                self.path, self.oracle
            )
        return oracle.violation(self.value)

    def __repr__(self) -> str:
        return "CorpusCase(oracle={!r}, path={!r})".format(self.oracle, self.path)


def case_document(
    oracle: str, value: Any, seed: Optional[int] = None, message: str = ""
) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "oracle": oracle,
        "seed": seed,
        "message": message,
        "input": encode_value(value),
    }


def write_case(
    directory: str,
    oracle: str,
    value: Any,
    seed: Optional[int] = None,
    message: str = "",
    stem: Optional[str] = None,
) -> str:
    """Write one corpus file; returns its path."""
    os.makedirs(directory, exist_ok=True)
    name = "{}.json".format(stem or "{}-{}".format(oracle, seed))
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(case_document(oracle, value, seed, message), handle, indent=2)
        handle.write("\n")
    return path


def write_failure(directory: str, failure) -> str:
    """Persist a :class:`~repro.quickcheck.runner.FuzzFailure`'s shrunk input."""
    return write_case(
        directory,
        failure.oracle,
        failure.shrunk,
        seed=failure.case_seed,
        message=failure.message,
    )


def load_case(path: str) -> CorpusCase:
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(
            "corpus file {} has unsupported format {!r}".format(
                path, doc.get("format")
            )
        )
    return CorpusCase(
        doc["oracle"],
        decode_value(doc["input"]),
        seed=doc.get("seed"),
        message=doc.get("message", ""),
        path=path,
    )


def corpus_files(directory: str) -> List[str]:
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )


def replay_file(path: str) -> Tuple[bool, str]:
    """Replay one corpus file: (still green, message)."""
    case = load_case(path)
    message = case.replay()
    if message is None:
        return True, "ok"
    return False, message


def replay_directory(directory: str) -> List[Tuple[str, bool, str]]:
    """Replay every corpus file in *directory*: (path, green, message) rows."""
    return [
        (path,) + replay_file(path) for path in corpus_files(directory)
    ]
