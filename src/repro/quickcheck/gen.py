"""Composable random generators for the differential fuzzer.

Every generator is a :class:`Gen` -- a pure function from an explicit
``random.Random`` to a value.  Nothing here touches global randomness: the
campaign runner and the pytest helper derive one ``random.Random(seed)`` per
test case, so every generated input is reproducible from its seed alone
(hand the seed back via ``REPRO_SEED`` or ``cspfuzz --seed``).

On top of the generic combinators (``sampled_from``, ``one_of``, ``lists``,
``bind`` ...) this module provides the domain generators the oracles share:

* :func:`process_terms` -- random closed CSP process terms over a fixed
  event set, exercising every operator of the paper's grammar (Sec. IV-A2)
  plus the extensions (hiding, interleaving, interrupt);
* :func:`sub_alphabets` -- random synchronisation / hiding sets;
* :func:`capl_programs` -- random reactive CAPL handler programs (the
  Fig.-2-style ECU sources the model extractor translates);
* :func:`stimuli_for` -- random request sequences for a generated program.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..csp.events import Alphabet, Event, event
from ..csp.process import (
    ExternalChoice,
    GenParallel,
    Hiding,
    Interleave,
    Interrupt,
    InternalChoice,
    Prefix,
    Process,
    SKIP,
    STOP,
    SeqComp,
)

T = TypeVar("T")
U = TypeVar("U")


class Gen:
    """A random generator: a function ``random.Random -> value``."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[random.Random], T]) -> None:
        self._fn = fn

    def __call__(self, rng: random.Random) -> T:
        return self._fn(rng)

    def map(self, fn: Callable[[T], U]) -> "Gen":
        """Apply *fn* to every generated value."""
        return Gen(lambda rng: fn(self._fn(rng)))

    def bind(self, fn: Callable[[T], "Gen"]) -> "Gen":
        """Feed the generated value into *fn* to pick the next generator.

        The monadic combinator -- used when one part of an input depends on
        another (e.g. stimuli drawn from the handlers a generated CAPL
        program actually declares).
        """
        return Gen(lambda rng: fn(self._fn(rng))(rng))

    @staticmethod
    def constant(value: T) -> "Gen":
        return Gen(lambda rng: value)


def sampled_from(options: Sequence[T]) -> Gen:
    """Pick one element uniformly."""
    pool = list(options)
    if not pool:
        raise ValueError("sampled_from needs a non-empty sequence")
    return Gen(lambda rng: pool[rng.randrange(len(pool))])


def integers(low: int, high: int) -> Gen:
    """A uniform integer in ``[low, high]`` inclusive."""
    return Gen(lambda rng: rng.randint(low, high))


def booleans(probability: float = 0.5) -> Gen:
    return Gen(lambda rng: rng.random() < probability)


def one_of(*gens: Gen) -> Gen:
    """Pick one of the generators uniformly, then run it."""
    pool = list(gens)
    return Gen(lambda rng: pool[rng.randrange(len(pool))](rng))


def frequency(weighted: Sequence[Tuple[int, Gen]]) -> Gen:
    """Pick a generator with probability proportional to its weight."""
    gens = [g for _, g in weighted]
    weights = [w for w, _ in weighted]

    def draw(rng: random.Random):
        return rng.choices(gens, weights=weights, k=1)[0](rng)

    return Gen(draw)


def lists(element: Gen, min_size: int = 0, max_size: int = 4) -> Gen:
    def draw(rng: random.Random) -> List:
        size = rng.randint(min_size, max_size)
        return [element(rng) for _ in range(size)]

    return Gen(draw)


def tuples(*gens: Gen) -> Gen:
    pool = list(gens)
    return Gen(lambda rng: tuple(g(rng) for g in pool))


def subsets(options: Sequence[T]) -> Gen:
    """A random (possibly empty) subset, preserving the input order."""
    pool = list(options)
    return Gen(lambda rng: [item for item in pool if rng.random() < 0.5])


# -- domain generators: CSP process terms -------------------------------------------

#: The default closed event set the process-term oracles fuzz over.  Three
#: events are enough to distinguish every operator pair while keeping the
#: bounded trace sets small.
DEFAULT_EVENTS: Tuple[Event, ...] = (event("a"), event("b"), event("c"))


def sub_alphabets(events: Sequence[Event] = DEFAULT_EVENTS) -> Gen:
    """A random synchronisation / hiding set drawn from *events*."""
    return subsets(events).map(Alphabet)


def process_terms(
    events: Sequence[Event] = DEFAULT_EVENTS,
    max_depth: int = 3,
    with_hiding: bool = True,
    with_interrupt: bool = True,
) -> Gen:
    """A random closed process term (no recursion) of bounded depth.

    Leaves are ``STOP`` / ``SKIP``; inner nodes draw from every operator of
    the paper's grammar.  Depth is bounded so the compiled state spaces stay
    tiny and the denotational trace sets enumerable.  ``with_interrupt=False``
    restricts to the operators the denotational failures equations cover.
    """
    pool = list(events)
    alphabet_gen = sub_alphabets(pool)
    operators = ["prefix", "extchoice", "intchoice", "seq", "interleave", "parallel"]
    if with_interrupt:
        operators.append("interrupt")
    if with_hiding:
        operators.append("hide")

    def draw(rng: random.Random, depth: int) -> Process:
        if depth <= 0 or rng.random() < 0.25:
            return SKIP if rng.random() < 0.5 else STOP
        kind = operators[rng.randrange(len(operators))]
        if kind == "prefix":
            return Prefix(pool[rng.randrange(len(pool))], draw(rng, depth - 1))
        if kind == "extchoice":
            return ExternalChoice(draw(rng, depth - 1), draw(rng, depth - 1))
        if kind == "intchoice":
            return InternalChoice(draw(rng, depth - 1), draw(rng, depth - 1))
        if kind == "seq":
            return SeqComp(draw(rng, depth - 1), draw(rng, depth - 1))
        if kind == "interleave":
            return Interleave(draw(rng, depth - 1), draw(rng, depth - 1))
        if kind == "interrupt":
            return Interrupt(draw(rng, depth - 1), draw(rng, depth - 1))
        if kind == "parallel":
            return GenParallel(
                draw(rng, depth - 1), draw(rng, depth - 1), alphabet_gen(rng)
            )
        return Hiding(draw(rng, depth - 1), alphabet_gen(rng))

    return Gen(lambda rng: draw(rng, max_depth))


def process_pairs(
    events: Sequence[Event] = DEFAULT_EVENTS, max_depth: int = 3
) -> Gen:
    return tuples(
        process_terms(events, max_depth), process_terms(events, max_depth)
    )


# -- domain generators: CAPL reactive programs --------------------------------------

#: Requests the generated ECU programs may handle and responses they may
#: transmit.  Kept tiny: two of each is enough to exhibit every extraction
#: rule (multi-output arbitration included) while the models stay small.
CAPL_REQUESTS: Tuple[str, ...] = ("reqA", "reqB")
CAPL_RESPONSES: Tuple[str, ...] = ("rspX", "rspY")


class CaplProgram:
    """A structured random CAPL program: handlers over statement trees.

    Statements are plain nested tuples so the generic shrinker and the JSON
    corpus serialiser can walk them:

    * ``("output", response)`` -- transmit a prepared message object;
    * ``("assign", n)`` -- ``state = state + n;``
    * ``("noop",)`` -- ``dummy = dummy + 1;``
    * ``("if", threshold, body)`` -- ``if (state > threshold) { body }``
    * ``("ifelse", then_body, else_body)`` -- parity-guarded branch;
    * ``("for", count, body)`` -- a bounded counting loop.

    ``render()`` produces the concrete CAPL source the parser, interpreter
    and model extractor all consume.
    """

    __slots__ = ("handlers",)

    def __init__(self, handlers: Sequence[Tuple[str, tuple]]) -> None:
        self.handlers = tuple(
            (selector, tuple(statements)) for selector, statements in handlers
        )

    # -- rendering -----------------------------------------------------------

    def handled(self) -> Tuple[str, ...]:
        return tuple(selector for selector, _ in self.handlers)

    def render(self) -> str:
        lines = ["variables {"]
        for response in CAPL_RESPONSES:
            lines.append("  message {} msg_{};".format(response, response))
        lines.append("  int state = 0;")
        lines.append("  int dummy = 0;")
        for depth in range(3):
            lines.append("  int i{} = 0;".format(depth))
        lines.append("}")
        for selector, statements in self.handlers:
            body = " ".join(
                self._render_statement(s, depth=0) for s in statements
            )
            lines.append("on message {} {{ {} }}".format(selector, body))
        return "\n".join(lines)

    def _render_statement(self, statement: tuple, depth: int) -> str:
        tag = statement[0]
        if tag == "output":
            return "output(msg_{});".format(statement[1])
        if tag == "assign":
            return "state = state + {};".format(statement[1])
        if tag == "noop":
            return "dummy = dummy + 1;"
        if tag == "if":
            body = " ".join(
                self._render_statement(s, depth + 1) for s in statement[2]
            )
            return "if (state > {}) {{ {} }}".format(statement[1], body)
        if tag == "ifelse":
            then_body = " ".join(
                self._render_statement(s, depth + 1) for s in statement[1]
            )
            else_body = " ".join(
                self._render_statement(s, depth + 1) for s in statement[2]
            )
            return "if (state % 2 == 0) {{ {} }} else {{ {} }}".format(
                then_body, else_body
            )
        if tag == "for":
            body = " ".join(
                self._render_statement(s, depth + 1) for s in statement[2]
            )
            # one loop variable per nesting depth: sharing an index across
            # nested loops produces genuinely non-terminating programs
            var = "i{}".format(min(depth, 2))
            return "for ({0} = 0; {0} < {1}; {0}++) {{ {2} }}".format(
                var, statement[1], body
            )
        raise ValueError("unknown CAPL statement tag {!r}".format(tag))

    # -- shrinking protocol (see repro.quickcheck.shrink) ---------------------

    def shrink_candidates(self):
        handlers = self.handlers
        # drop a whole handler (but keep at least one)
        if len(handlers) > 1:
            for index in range(len(handlers)):
                yield CaplProgram(handlers[:index] + handlers[index + 1 :])
        # shrink within one handler
        for index, (selector, statements) in enumerate(handlers):
            for smaller in _shrink_statements(statements):
                replaced = (
                    handlers[:index]
                    + ((selector, smaller),)
                    + handlers[index + 1 :]
                )
                yield CaplProgram(replaced)

    # -- structural equality (pinned shrinker-output tests rely on it) -------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CaplProgram):
            return NotImplemented
        return self.handlers == other.handlers

    def __hash__(self) -> int:
        return hash(self.handlers)

    def __repr__(self) -> str:
        return "CaplProgram({!r})".format(list(self.handlers))


def _shrink_statements(statements: tuple):
    """Smaller statement tuples: drop one, unwrap one, or shrink one in place."""
    for index, statement in enumerate(statements):
        yield statements[:index] + statements[index + 1 :]
        for action, replacement in _shrink_statement(statement):
            if action == "splice":
                # a compound statement's body hoisted into its place
                yield statements[:index] + replacement + statements[index + 1 :]
            else:
                yield (
                    statements[:index]
                    + (replacement,)
                    + statements[index + 1 :]
                )


def _shrink_statement(statement: tuple):
    """Yield ``("splice", stmts)`` or ``("one", stmt)`` replacement actions."""
    tag = statement[0]
    if tag == "output":
        return
    if tag in ("assign", "noop"):
        if tag == "assign" and statement[1] > 0:
            yield ("one", ("assign", 0))
        return
    if tag == "if":
        yield ("splice", statement[2])  # hoist the guarded body
        if statement[1] > 0:
            yield ("one", ("if", 0, statement[2]))
        for smaller in _shrink_statements(statement[2]):
            yield ("one", ("if", statement[1], smaller))
        return
    if tag == "ifelse":
        yield ("splice", statement[1])
        yield ("splice", statement[2])
        for smaller in _shrink_statements(statement[1]):
            yield ("one", ("ifelse", smaller, statement[2]))
        for smaller in _shrink_statements(statement[2]):
            yield ("one", ("ifelse", statement[1], smaller))
        return
    if tag == "for":
        yield ("splice", statement[2])
        if statement[1] > 0:
            yield ("one", ("for", statement[1] - 1, statement[2]))
        for smaller in _shrink_statements(statement[2]):
            yield ("one", ("for", statement[1], smaller))


def capl_statements(depth: int = 0) -> Gen:
    """A random handler-body statement (bounded nesting)."""

    # outputs are over-weighted: they are what the extracted models must
    # admit, and multi-output paths are where arbitration bugs hide
    shallow = (
        "output", "output", "output", "assign", "noop", "if", "ifelse", "for"
    )
    deep = ("output", "output", "output", "assign", "noop")

    def draw(rng: random.Random, level: int) -> tuple:
        options = deep if level >= 2 else shallow
        kind = options[rng.randrange(len(options))]
        if kind == "output":
            return ("output", CAPL_RESPONSES[rng.randrange(len(CAPL_RESPONSES))])
        if kind == "assign":
            return ("assign", rng.randint(0, 3))
        if kind == "noop":
            return ("noop",)
        if kind == "if":
            return ("if", rng.randint(0, 2), (draw(rng, level + 1),))
        if kind == "ifelse":
            return ("ifelse", (draw(rng, level + 1),), (draw(rng, level + 1),))
        return ("for", rng.randint(0, 2), (draw(rng, level + 1),))

    return Gen(lambda rng: draw(rng, depth))


def capl_programs(
    requests: Sequence[str] = CAPL_REQUESTS, max_statements: int = 4
) -> Gen:
    """A random reactive CAPL program handling a non-empty subset of *requests*."""

    def draw(rng: random.Random) -> CaplProgram:
        pool = list(requests)
        count = rng.randint(1, len(pool))
        handled = rng.sample(pool, count)
        handled.sort(key=pool.index)  # declaration order independent of sample order
        handlers = []
        for selector in handled:
            statements = tuple(
                capl_statements()(rng)
                # skew toward longer bodies: single-statement handlers
                # exercise almost none of the translation rules
                for _ in range(max(rng.randint(0, max_statements),
                                   rng.randint(0, max_statements)))
            )
            handlers.append((selector, statements))
        return CaplProgram(handlers)

    return Gen(draw)


def capl_precise_statements() -> Gen:
    """A statement from the extraction-*precise* CAPL fragment.

    The extractor translates conditionals to choices over both branches
    and loops to zero-or-more iterations -- sound over-approximations.
    Bidirectional learned-vs-extracted equivalence therefore only holds
    on the fragment the translation is *exact* for: straight-line
    outputs/assigns/no-ops, plus control flow whose bodies transmit
    nothing (silent branches and loops render away).  This generator
    stays inside that fragment; its values shrink within it too (splicing
    a silent body hoists assigns/no-ops only).
    """
    silent = ("assign", "noop")

    def draw_silent(rng: random.Random) -> tuple:
        kind = silent[rng.randrange(len(silent))]
        if kind == "assign":
            return ("assign", rng.randint(0, 3))
        return ("noop",)

    def draw(rng: random.Random) -> tuple:
        # outputs over-weighted, as in capl_statements: multi-output
        # activations are where the permutation widening must be exact
        options = (
            "output", "output", "output", "assign", "noop",
            "if", "ifelse", "for",
        )
        kind = options[rng.randrange(len(options))]
        if kind == "output":
            return ("output", CAPL_RESPONSES[rng.randrange(len(CAPL_RESPONSES))])
        if kind == "assign":
            return ("assign", rng.randint(0, 3))
        if kind == "noop":
            return ("noop",)
        if kind == "if":
            return ("if", rng.randint(0, 2), (draw_silent(rng),))
        if kind == "ifelse":
            return ("ifelse", (draw_silent(rng),), (draw_silent(rng),))
        return ("for", rng.randint(0, 2), (draw_silent(rng),))

    return Gen(draw)


def capl_precise_programs(
    requests: Sequence[str] = CAPL_REQUESTS, max_statements: int = 4
) -> Gen:
    """A random CAPL program inside the extraction-precise fragment."""

    def draw(rng: random.Random) -> CaplProgram:
        pool = list(requests)
        count = rng.randint(1, len(pool))
        handled = rng.sample(pool, count)
        handled.sort(key=pool.index)
        statements = capl_precise_statements()
        handlers = []
        for selector in handled:
            body = tuple(
                statements(rng)
                for _ in range(max(rng.randint(0, max_statements),
                                   rng.randint(0, max_statements)))
            )
            handlers.append((selector, body))
        return CaplProgram(handlers)

    return Gen(draw)


def stimuli_for(program: CaplProgram, min_size: int = 1, max_size: int = 4) -> Gen:
    """A random request sequence drawn from the program's own handlers."""
    return lists(sampled_from(program.handled()), min_size, max_size)


def capl_cases(requests: Sequence[str] = CAPL_REQUESTS) -> Gen:
    """A (program, stimuli) pair -- the extractor oracle's input."""
    return capl_programs(requests).bind(
        lambda program: stimuli_for(program).map(
            lambda stimuli: (program, stimuli)
        )
    )
