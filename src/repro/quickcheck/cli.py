"""``cspfuzz`` -- the differential fuzzing campaign CLI.

    cspfuzz --oracle all --seed 42 --budget 500 [--corpus DIR]
    cspfuzz --list
    cspfuzz --replay tests/corpus            # or a single .json file

Runs a budgeted campaign over the oracle registry, shrinks every violation
to a locally minimal repro, optionally persists the shrunk failures as
corpus files, and exits nonzero on any violation -- so it slots straight
into CI as a smoke job.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..cli_common import (
    EXIT_OK,
    EXIT_USAGE,
    EXIT_VIOLATION,
    add_observability_args,
    add_result_cache_args,
    add_seed_arg,
    finish_observability,
    result_cache_dir_from_args,
    tracer_from_args,
)
from .oracles import ORACLES, get_oracles
from .runner import run_campaign
from .shrink import DEFAULT_SHRINK_BUDGET


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cspfuzz",
        description="differential fuzzing of the CSP verification toolchain",
    )
    parser.add_argument(
        "--oracle",
        default="all",
        help="'all' or a comma-separated oracle list (default: all)",
    )
    add_seed_arg(parser)
    parser.add_argument(
        "--budget",
        type=int,
        default=500,
        help="total number of test cases across all oracles (default: 500)",
    )
    parser.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="write shrunk failures into this directory as replayable JSON",
    )
    parser.add_argument(
        "--max-shrink",
        type=int,
        default=DEFAULT_SHRINK_BUDGET,
        help="cap on shrink attempts per failure (default: {})".format(
            DEFAULT_SHRINK_BUDGET
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list the registered oracles and exit"
    )
    parser.add_argument(
        "--replay",
        metavar="PATH",
        default=None,
        help="replay a corpus file or directory instead of fuzzing",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print the final summary"
    )
    add_result_cache_args(parser, "verdicts for the result_cache oracle")
    add_observability_args(parser)
    return parser


def _list_oracles() -> int:
    width = max(len(name) for name in ORACLES)
    for name in sorted(ORACLES):
        oracle = ORACLES[name]
        print("{:<{}}  {}".format(name, width, oracle.description))
        print("{:<{}}  guards: {}".format("", width, oracle.guards))
    return 0


def _replay(path: str) -> int:
    from .corpus import replay_directory, replay_file

    if os.path.isdir(path):
        rows = replay_directory(path)
        if not rows:
            print("no corpus files under {}".format(path))
            return 0
    else:
        rows = [(path,) + replay_file(path)]
    failures = 0
    for file_path, green, message in rows:
        verdict = "ok" if green else "FAIL"
        print("{:<4} {}".format(verdict, file_path))
        if not green:
            failures += 1
            print("     {}".format(message))
    print(
        "{} corpus file(s), {} failing".format(len(rows), failures)
    )
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        return _list_oracles()
    if args.replay is not None:
        return _replay(args.replay)
    try:
        oracles = get_oracles(args.oracle)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    if getattr(args, "no_result_cache", False):
        # cold-run escape hatch: drop the memoisation oracle entirely
        oracles = [o for o in oracles if o.name != "result_cache"]
        if not oracles:
            print(
                "cspfuzz: --no-result-cache left no oracles to run",
                file=sys.stderr,
            )
            return EXIT_USAGE
    else:
        from . import oracles as oracle_registry

        oracle_registry.RESULT_CACHE_DIR = result_cache_dir_from_args(args)
    progress = None if args.quiet else lambda line: print(line, flush=True)
    tracer = tracer_from_args(args)
    with tracer.span("run", tool="cspfuzz", seed=args.seed):
        report = run_campaign(
            oracles,
            seed=args.seed,
            budget=args.budget,
            corpus_dir=args.corpus,
            shrink_budget=args.max_shrink,
            progress=progress,
            obs=tracer,
        )
    print(report.summary())
    finish_observability(args, tracer)
    return EXIT_OK if report.ok else EXIT_VIOLATION


if __name__ == "__main__":
    sys.exit(main())
