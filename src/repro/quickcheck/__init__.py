"""Property-based differential testing of the verification toolchain.

The extractor+checker pipeline is only trustworthy if its redundant
computations of the same semantic facts agree everywhere -- the algebraic
laws against the trace semantics, the denotational against the operational
model, the on-the-fly against the eager refinement search, the interpreter
against the extracted model.  This package fuzzes exactly those seams:

* :mod:`~repro.quickcheck.gen` -- seeded composable generators for process
  terms, CSPm sources and CAPL handler programs;
* :mod:`~repro.quickcheck.shrink` -- a deterministic greedy shrinker that
  reduces any failing input to a locally minimal repro;
* :mod:`~repro.quickcheck.oracles` -- the registry of differential checks;
* :mod:`~repro.quickcheck.runner` / :mod:`~repro.quickcheck.cli` -- the
  budgeted ``cspfuzz`` campaign with corpus persistence;
* :mod:`~repro.quickcheck.corpus` -- replayable JSON failure files;
* :mod:`~repro.quickcheck.testing` -- the ``for_all`` property runner the
  randomized pytest files are built on (``REPRO_SEED`` replays a run).
"""

from .gen import (
    CAPL_REQUESTS,
    CAPL_RESPONSES,
    CaplProgram,
    DEFAULT_EVENTS,
    Gen,
    booleans,
    capl_cases,
    capl_precise_programs,
    capl_precise_statements,
    capl_programs,
    capl_statements,
    frequency,
    integers,
    lists,
    one_of,
    process_pairs,
    process_terms,
    sampled_from,
    stimuli_for,
    sub_alphabets,
    subsets,
    tuples,
)
from .oracles import Discard, ORACLES, Oracle, OracleViolation, get_oracles
from .runner import CampaignReport, FuzzFailure, derive_seed, run_campaign
from .shrink import is_locally_minimal, shrink, shrink_candidates
from .serialise import decode_value, encode_value
from .corpus import (
    CorpusCase,
    load_case,
    replay_directory,
    replay_file,
    write_case,
    write_failure,
)
from .testing import PropertyFailure, for_all

__all__ = [
    "CAPL_REQUESTS",
    "CAPL_RESPONSES",
    "CampaignReport",
    "CaplProgram",
    "CorpusCase",
    "DEFAULT_EVENTS",
    "Discard",
    "FuzzFailure",
    "Gen",
    "ORACLES",
    "Oracle",
    "OracleViolation",
    "PropertyFailure",
    "booleans",
    "capl_cases",
    "capl_precise_programs",
    "capl_precise_statements",
    "capl_programs",
    "capl_statements",
    "decode_value",
    "derive_seed",
    "encode_value",
    "for_all",
    "frequency",
    "get_oracles",
    "integers",
    "is_locally_minimal",
    "lists",
    "load_case",
    "one_of",
    "process_pairs",
    "process_terms",
    "replay_directory",
    "replay_file",
    "run_campaign",
    "sampled_from",
    "shrink",
    "shrink_candidates",
    "stimuli_for",
    "sub_alphabets",
    "subsets",
    "tuples",
    "write_case",
    "write_failure",
]
