"""JSON encoding of fuzz inputs, so shrunk failures replay across runs.

A corpus file must outlive the Python process that found it: the CI smoke
job uploads shrunk failures as artifacts, and ``tests/corpus/`` pins past
failures as regression inputs.  This module gives every value an oracle
input can contain -- process terms, events, alphabets, CAPL programs,
stimulus lists, tuples, atoms -- a tagged JSON form with an exact inverse.

The encoding is structural, not pickled: corpus files stay readable in a
diff, stable across interpreter versions, and safe to load (no arbitrary
code execution on replay).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..csp.events import Alphabet, Event
from ..csp.process import (
    ExternalChoice,
    GenParallel,
    Hiding,
    Interleave,
    Interrupt,
    InternalChoice,
    Omega,
    Prefix,
    Process,
    ProcessRef,
    Renaming,
    SKIP,
    STOP,
    SeqComp,
    Skip,
    Stop,
)
from .gen import CaplProgram


class CorpusEncodingError(ValueError):
    """Raised when a value (or JSON document) is outside the corpus schema."""


# -- events and alphabets -----------------------------------------------------------


def encode_event(event: Event) -> Dict[str, Any]:
    return {"channel": event.channel, "fields": list(event.fields)}


def decode_event(doc: Dict[str, Any]) -> Event:
    return Event(doc["channel"], tuple(doc["fields"]))


def encode_alphabet(alphabet: Alphabet) -> List[Dict[str, Any]]:
    return [encode_event(e) for e in alphabet]  # sorted by Alphabet.__iter__


def decode_alphabet(doc: List[Dict[str, Any]]) -> Alphabet:
    return Alphabet(decode_event(entry) for entry in doc)


# -- process terms ------------------------------------------------------------------


def encode_process(term: Process) -> Dict[str, Any]:
    if isinstance(term, Stop):
        return {"op": "stop"}
    if isinstance(term, (Skip, Omega)):
        return {"op": "skip"}
    if isinstance(term, Prefix):
        return {
            "op": "prefix",
            "event": encode_event(term.event),
            "next": encode_process(term.continuation),
        }
    if isinstance(term, ExternalChoice):
        return {
            "op": "extchoice",
            "left": encode_process(term.left),
            "right": encode_process(term.right),
        }
    if isinstance(term, InternalChoice):
        return {
            "op": "intchoice",
            "left": encode_process(term.left),
            "right": encode_process(term.right),
        }
    if isinstance(term, SeqComp):
        return {
            "op": "seq",
            "left": encode_process(term.first),
            "right": encode_process(term.second),
        }
    if isinstance(term, Interleave):
        return {
            "op": "interleave",
            "left": encode_process(term.left),
            "right": encode_process(term.right),
        }
    if isinstance(term, Interrupt):
        return {
            "op": "interrupt",
            "left": encode_process(term.primary),
            "right": encode_process(term.handler),
        }
    if isinstance(term, GenParallel):
        return {
            "op": "parallel",
            "left": encode_process(term.left),
            "right": encode_process(term.right),
            "sync": encode_alphabet(term.sync),
        }
    if isinstance(term, Hiding):
        return {
            "op": "hide",
            "process": encode_process(term.process),
            "hidden": encode_alphabet(term.hidden),
        }
    if isinstance(term, Renaming):
        return {
            "op": "rename",
            "process": encode_process(term.process),
            "mapping": [
                [encode_event(source), encode_event(target)]
                for source, target in term.mapping
            ],
        }
    if isinstance(term, ProcessRef):
        return {"op": "ref", "name": term.name}
    raise CorpusEncodingError(
        "cannot encode process term of type {}".format(type(term).__name__)
    )


def decode_process(doc: Dict[str, Any]) -> Process:
    op = doc["op"]
    if op == "stop":
        return STOP
    if op == "skip":
        return SKIP
    if op == "prefix":
        return Prefix(decode_event(doc["event"]), decode_process(doc["next"]))
    if op == "extchoice":
        return ExternalChoice(
            decode_process(doc["left"]), decode_process(doc["right"])
        )
    if op == "intchoice":
        return InternalChoice(
            decode_process(doc["left"]), decode_process(doc["right"])
        )
    if op == "seq":
        return SeqComp(decode_process(doc["left"]), decode_process(doc["right"]))
    if op == "interleave":
        return Interleave(
            decode_process(doc["left"]), decode_process(doc["right"])
        )
    if op == "interrupt":
        return Interrupt(
            decode_process(doc["left"]), decode_process(doc["right"])
        )
    if op == "parallel":
        return GenParallel(
            decode_process(doc["left"]),
            decode_process(doc["right"]),
            decode_alphabet(doc["sync"]),
        )
    if op == "hide":
        return Hiding(decode_process(doc["process"]), decode_alphabet(doc["hidden"]))
    if op == "rename":
        return Renaming(
            decode_process(doc["process"]),
            {
                decode_event(source): decode_event(target)
                for source, target in doc["mapping"]
            },
        )
    if op == "ref":
        return ProcessRef(doc["name"])
    raise CorpusEncodingError("unknown process op {!r}".format(op))


# -- CAPL statement trees -----------------------------------------------------------


def _encode_statement(statement: tuple) -> list:
    tag = statement[0]
    if tag in ("output", "assign"):
        return [tag, statement[1]]
    if tag == "noop":
        return [tag]
    if tag == "if":
        return [tag, statement[1], [_encode_statement(s) for s in statement[2]]]
    if tag == "ifelse":
        return [
            tag,
            [_encode_statement(s) for s in statement[1]],
            [_encode_statement(s) for s in statement[2]],
        ]
    if tag == "for":
        return [tag, statement[1], [_encode_statement(s) for s in statement[2]]]
    raise CorpusEncodingError("unknown CAPL statement tag {!r}".format(tag))


def _decode_statement(doc: list) -> tuple:
    tag = doc[0]
    if tag in ("output", "assign"):
        return (tag, doc[1])
    if tag == "noop":
        return (tag,)
    if tag == "if":
        return (tag, doc[1], tuple(_decode_statement(s) for s in doc[2]))
    if tag == "ifelse":
        return (
            tag,
            tuple(_decode_statement(s) for s in doc[1]),
            tuple(_decode_statement(s) for s in doc[2]),
        )
    if tag == "for":
        return (tag, doc[1], tuple(_decode_statement(s) for s in doc[2]))
    raise CorpusEncodingError("unknown CAPL statement tag {!r}".format(tag))


def encode_capl(program: CaplProgram) -> Dict[str, Any]:
    return {
        "handlers": [
            [selector, [_encode_statement(s) for s in statements]]
            for selector, statements in program.handlers
        ]
    }


def decode_capl(doc: Dict[str, Any]) -> CaplProgram:
    return CaplProgram(
        [
            (selector, tuple(_decode_statement(s) for s in statements))
            for selector, statements in doc["handlers"]
        ]
    )


# -- generic tagged values ----------------------------------------------------------


def encode_value(value: Any) -> Dict[str, Any]:
    """Encode any oracle-input value as a tagged JSON document."""
    if isinstance(value, Process):
        return {"kind": "process", "value": encode_process(value)}
    if isinstance(value, Event):
        return {"kind": "event", "value": encode_event(value)}
    if isinstance(value, Alphabet):
        return {"kind": "alphabet", "value": encode_alphabet(value)}
    if isinstance(value, CaplProgram):
        return {"kind": "capl", "value": encode_capl(value)}
    if isinstance(value, tuple):
        return {"kind": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"kind": "list", "items": [encode_value(v) for v in value]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"kind": "atom", "value": value}
    raise CorpusEncodingError(
        "cannot encode value of type {}".format(type(value).__name__)
    )


def decode_value(doc: Dict[str, Any]) -> Any:
    kind = doc.get("kind")
    if kind == "process":
        return decode_process(doc["value"])
    if kind == "event":
        return decode_event(doc["value"])
    if kind == "alphabet":
        return decode_alphabet(doc["value"])
    if kind == "capl":
        return decode_capl(doc["value"])
    if kind == "tuple":
        return tuple(decode_value(item) for item in doc["items"])
    if kind == "list":
        return [decode_value(item) for item in doc["items"]]
    if kind == "atom":
        return doc["value"]
    raise CorpusEncodingError("unknown value kind {!r}".format(kind))
