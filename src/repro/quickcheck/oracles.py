"""The differential-oracle registry.

Each oracle pairs a seeded input generator with a *differential check*: two
independent computations of the same semantic fact that must agree.  A bug
in either side -- the engine, the normaliser, the emitter, the extractor --
shows up as a disagreement on some generated input, without anyone having
to predict the bug in advance.  This is the quickcheck analogue of the
conformance step in "Learn, Check, Test" (PAPERS.md): the code paths most
likely to hide soundness bugs are checked against redundant definitions.

The matrix (see ``docs/testing.md``):

========== ==============================================================
oracle      disagreement it detects
========== ==============================================================
laws        an algebraic law of CSP fails on the trace semantics
semantics   operational (LTS) and denotational trace sets diverge
normalise   normalisation loses traces, nondeterminism, or determinism
refinement  engine ``[T=`` verdict differs from the subset definition
lazy-eager  on-the-fly and eager refinement disagree (verdict or cex)
kernel      the flat-array kernel diverges from the pre-refactor semantics
cache       a compilation-cache hit changes a verdict or counterexample
compression a semantic pass changes a verdict, counterexample or deadlock
batch       the batch wire format or executor changes a verdict or trace
result_cache a memoised verdict differs from a fresh execution's bytes
roundtrip   emitting CSPm and re-parsing changes the trace semantics
extractor   the CAPL interpreter exhibits a trace the extracted model lacks
learned_vs_extracted a black-box learned model and the extracted model disagree
========== ==============================================================

Every check raises :class:`OracleViolation` on disagreement and
:class:`Discard` on inputs outside its precondition (treated as a pass, the
``assume`` of classic QuickCheck).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..csp.events import Alphabet, Channel, Event
from ..csp.laws import LAW_OPERANDS, LAWS, check_law
from ..csp.lts import compile_lts, reachable_visible_traces
from ..csp.process import Process
from ..csp.traces import denotational_traces
from ..engine import VerificationPipeline
from ..fdr.counterexample import FailureCounterexample, TraceCounterexample
from ..fdr.normalise import NormalisedSpec, normalise
from . import gen as g
from .gen import CaplProgram, Gen

#: Trace bound for the process-term oracles: long enough to distinguish the
#: operators at the generated depths, small enough to enumerate.
BOUND = 4


class Discard(Exception):
    """The generated (or shrunk) input falls outside the oracle's precondition."""


class OracleViolation(AssertionError):
    """A differential check disagreed -- the fuzzer found a real divergence."""


class Oracle:
    """A named differential check with its input generator."""

    def __init__(
        self,
        name: str,
        description: str,
        guards: str,
        generator: Gen,
        check: Callable[[object], None],
    ) -> None:
        self.name = name
        self.description = description
        #: the module(s) whose correctness this oracle cross-checks
        self.guards = guards
        self.generator = generator
        self.check = check

    def generate(self, rng: random.Random):
        return self.generator(rng)

    def run_one(self, rng: random.Random) -> Optional[str]:
        """Generate one input and check it; the violation message, or None."""
        value = self.generate(rng)
        return self.violation(value)

    def violation(self, value) -> Optional[str]:
        """Run the check on an explicit input; the violation message, or None."""
        try:
            self.check(value)
        except Discard:
            return None
        except OracleViolation as failure:
            return str(failure)
        return None

    def fails_on(self, value) -> bool:
        """Shrinking predicate: does the oracle reject this input?"""
        try:
            return self.violation(value) is not None
        except Exception:
            # a candidate that crashes the toolchain outright is a different
            # defect; the shrinker must not wander onto it
            return False

    def __repr__(self) -> str:
        return "Oracle({!r})".format(self.name)


# -- shared generator pieces --------------------------------------------------------

_EVENTS = g.DEFAULT_EVENTS
_SIGMA = Alphabet(_EVENTS)
_PROCESSES = g.process_terms(_EVENTS)


def _traces(term: Process, bound: int = BOUND):
    return denotational_traces(term, None, bound)


# -- oracle: algebraic laws ---------------------------------------------------------


def _law_input() -> Gen:
    """A (law-name, operands) pair; operands follow LAW_OPERANDS signatures."""

    def draw(rng: random.Random):
        name = sorted(LAWS)[rng.randrange(len(LAWS))]
        operands = tuple(
            _PROCESSES(rng) if kind == "p" else g.sub_alphabets(_EVENTS)(rng)
            for kind in LAW_OPERANDS[name]
        )
        return (name, operands)

    return Gen(draw)


def check_laws(value) -> None:
    name, operands = value
    if name not in LAWS or len(operands) != len(LAW_OPERANDS[name]):
        raise Discard
    for kind, operand in zip(LAW_OPERANDS[name], operands):
        if kind == "p" and not isinstance(operand, Process):
            raise Discard
        if kind == "A" and not isinstance(operand, Alphabet):
            raise Discard
    if not check_law(name, *operands, max_length=BOUND):
        raise OracleViolation(
            "law {!r} fails on operands {!r}".format(name, operands)
        )


# -- oracle: operational vs denotational traces -------------------------------------


def check_semantics(term: Process) -> None:
    operational = reachable_visible_traces(compile_lts(term), BOUND)
    denotational = _traces(term)
    if operational != denotational:
        raise OracleViolation(
            "trace models disagree on {!r}: operational-only {}, "
            "denotational-only {}".format(
                term,
                sorted(operational - denotational),
                sorted(denotational - operational),
            )
        )


# -- oracle: normalisation ----------------------------------------------------------


def _normalised_traces(spec: NormalisedSpec, max_length: int):
    results = {()}
    frontier = [((), spec.initial)]
    for _ in range(max_length):
        next_frontier = []
        for trace, node in frontier:
            for evt, target in spec.afters[node].items():
                extended = trace + (evt,)
                if extended not in results:
                    results.add(extended)
                    if not evt.is_tick():
                        next_frontier.append((extended, target))
        frontier = next_frontier
    return results


def check_normalise(term: Process) -> None:
    lts = compile_lts(term)
    spec = normalise(lts)
    # tau-free and (by the dict type) deterministic
    for node in range(spec.node_count):
        if any(evt.is_tau() for evt in spec.afters[node]):
            raise OracleViolation(
                "normalised automaton of {!r} has a tau transition".format(term)
            )
    # the construction is deterministic: same input, same automaton
    again = normalise(lts)
    if (
        spec.afters_ids != again.afters_ids
        or spec.acceptance_bits != again.acceptance_bits
        or spec.members != again.members
    ):
        raise OracleViolation(
            "normalising {!r} twice produced different automata".format(term)
        )
    # trace-equivalent to the source term
    normalised = _normalised_traces(spec, BOUND)
    denotational = _traces(term)
    if normalised != denotational:
        raise OracleViolation(
            "normalisation changed the traces of {!r}: normalised-only {}, "
            "denotational-only {}".format(
                term,
                sorted(normalised - denotational),
                sorted(denotational - normalised),
            )
        )
    # idempotent at the trace level: re-normalising the determinised
    # automaton neither grows the node count nor changes the traces
    renormalised = normalise(spec.as_lts())
    if renormalised.node_count > spec.node_count:
        raise OracleViolation(
            "re-normalising the automaton of {!r} grew it from {} to {} "
            "nodes".format(term, spec.node_count, renormalised.node_count)
        )
    if _normalised_traces(renormalised, BOUND) != normalised:
        raise OracleViolation(
            "normalisation is not idempotent on {!r}".format(term)
        )


# -- oracle: engine verdict vs refinement definition --------------------------------


def check_refinement(value) -> None:
    spec, impl = value
    pipeline = VerificationPipeline()
    verdict = pipeline.refinement(spec, impl, "T")
    spec_traces = _traces(spec, BOUND + 1)
    impl_traces = _traces(impl, BOUND + 1)
    definition = impl_traces <= spec_traces
    if verdict.passed != definition:
        raise OracleViolation(
            "engine says {!r} [T= {!r} is {}, the subset definition says "
            "{}".format(spec, impl, verdict.passed, definition)
        )
    if not verdict.passed:
        violating = verdict.counterexample.full_trace
        bound = len(violating)
        if violating not in denotational_traces(impl, None, bound):
            raise OracleViolation(
                "counterexample {} is not a trace of the implementation "
                "{!r}".format(violating, impl)
            )
        if violating in denotational_traces(spec, None, bound):
            raise OracleViolation(
                "counterexample {} is permitted by the specification "
                "{!r}".format(violating, spec)
            )


# -- oracle: lazy vs eager refinement -----------------------------------------------


def _lazy_eager_input() -> Gen:
    return g.tuples(_PROCESSES, _PROCESSES, g.sampled_from(["T", "F"]))


def _genuine_counterexample(spec: Process, impl: Process, result, label: str) -> None:
    cex = result.counterexample
    if isinstance(cex, TraceCounterexample):
        violating = cex.full_trace
        bound = len(violating)
        if violating not in denotational_traces(impl, None, bound):
            raise OracleViolation(
                "{} counterexample {} is not an implementation trace of "
                "{!r}".format(label, violating, impl)
            )
        if violating in denotational_traces(spec, None, bound):
            raise OracleViolation(
                "{} counterexample {} is permitted by the specification "
                "{!r}".format(label, violating, spec)
            )
    elif isinstance(cex, FailureCounterexample):
        bound = len(cex.trace)
        if cex.trace not in denotational_traces(impl, None, bound):
            raise OracleViolation(
                "{} failure counterexample after {} is not an implementation "
                "trace of {!r}".format(label, cex.trace, impl)
            )


def check_lazy_eager(value) -> None:
    spec, impl, model = value
    if model not in ("T", "F"):
        raise Discard
    lazy = VerificationPipeline(on_the_fly=True).refinement(spec, impl, model)
    eager = VerificationPipeline(on_the_fly=False).refinement(spec, impl, model)
    if lazy.passed != eager.passed:
        raise OracleViolation(
            "{!r} [{}= {!r}: on-the-fly says {}, eager says {}".format(
                spec, model, impl, lazy.passed, eager.passed
            )
        )
    if not lazy.passed:
        _genuine_counterexample(spec, impl, lazy, "on-the-fly")
        _genuine_counterexample(spec, impl, eager, "eager")


# -- oracle: compilation cache ------------------------------------------------------


def check_cache(value) -> None:
    p, q, r = value
    # overlapping pairs force cache hits on the shared sides
    pairs = [(p, q), (p, r), (q, r), (p, q)]
    shared = VerificationPipeline()
    for model in ("T", "F"):
        for spec, impl in pairs:
            cached = shared.refinement(spec, impl, model)
            cold = VerificationPipeline().refinement(spec, impl, model)
            if cached.passed != cold.passed:
                raise OracleViolation(
                    "cache changed the {!r} [{}= {!r} verdict: shared-cache "
                    "run says {}, cold run says {}".format(
                        spec, model, impl, cached.passed, cold.passed
                    )
                )
            if not cached.passed:
                _genuine_counterexample(spec, impl, cached, "shared-cache")
                _genuine_counterexample(spec, impl, cold, "cold")


# -- oracle: compression passes -----------------------------------------------------

#: the pass configurations cross-checked against the uncompressed baseline:
#: every pass alone, the default pipeline, and the trace-only normalisation
#: combination (silently skipped by the plan for failures-model checks).
_PASS_COMBOS: Tuple[str, ...] = (
    "dead",
    "tau_loop",
    "diamond",
    "sbisim",
    "default",
    "normal,sbisim",
)


def _compression_input() -> Gen:
    return g.tuples(_PROCESSES, _PROCESSES, g.sampled_from(["T", "F"]))


def check_compression(value) -> None:
    spec, impl, model = value
    if model not in ("T", "F"):
        raise Discard
    baseline = VerificationPipeline(passes="none").refinement(spec, impl, model)
    if not baseline.passed:
        _genuine_counterexample(spec, impl, baseline, "uncompressed")
    baseline_deadlock = VerificationPipeline(passes="none").property_check(
        impl, "deadlock free"
    )
    for combo in _PASS_COMBOS:
        compressed = VerificationPipeline(passes=combo).refinement(spec, impl, model)
        if compressed.passed != baseline.passed:
            raise OracleViolation(
                "{!r} [{}= {!r}: passes={!r} says {}, uncompressed says "
                "{}".format(spec, model, impl, combo, compressed.passed, baseline.passed)
            )
        if not compressed.passed:
            _genuine_counterexample(
                spec, impl, compressed, "passes={}".format(combo)
            )
        deadlock = VerificationPipeline(passes=combo).property_check(
            impl, "deadlock free"
        )
        if deadlock.passed != baseline_deadlock.passed:
            raise OracleViolation(
                "deadlock-freedom of {!r}: passes={!r} says {}, uncompressed "
                "says {}".format(
                    impl, combo, deadlock.passed, baseline_deadlock.passed
                )
            )


# -- oracle: batch executor vs direct pipeline --------------------------------------


def _batch_input() -> Gen:
    return g.tuples(_PROCESSES, _PROCESSES, g.sampled_from(["T", "F"]))


def check_batch(value) -> None:
    """The batch executor's wire format and dispatch change nothing.

    Runs the same checks twice: directly through a pipeline, and as
    :class:`~repro.batch.spec.CheckSpec` documents round-tripped through
    the manifest encoding and discharged by
    :func:`~repro.batch.executor.execute_spec` (the sequential reference
    the pooled executor is itself held to).  Verdicts and counterexample
    traces must agree.
    """
    from ..batch.spec import CheckSpec, FAIL, PASS

    spec, impl, model = value
    if model not in ("T", "F"):
        raise Discard
    direct_refine = VerificationPipeline().refinement(spec, impl, model)
    direct_deadlock = VerificationPipeline().property_check(impl, "deadlock free")
    for check_spec, direct in (
        (CheckSpec.refinement(spec, impl, model), direct_refine),
        (CheckSpec.property_check(impl, "deadlock free"), direct_deadlock),
    ):
        batched = _execute_roundtripped(check_spec)
        expected = PASS if direct.passed else FAIL
        if batched.verdict != expected:
            raise OracleViolation(
                "batch executor disagrees on {!r}: direct says {}, batch says "
                "{}".format(check_spec, expected, batched.verdict)
            )
        if batched.verdict == FAIL:
            direct_trace = [str(event) for event in direct.counterexample.trace]
            if batched.counterexample["trace"] != direct_trace:
                raise OracleViolation(
                    "batch counterexample trace {} differs from the direct "
                    "pipeline's {} on {!r}".format(
                        batched.counterexample["trace"], direct_trace, check_spec
                    )
                )


def _execute_roundtripped(check_spec):
    from ..batch.executor import execute_spec
    from ..batch.spec import CheckSpec

    return execute_spec(CheckSpec.from_doc(check_spec.to_doc()))


# -- oracle: result cache vs fresh execution ----------------------------------------

#: directory the result_cache oracle persists verdicts in (None = a fresh
#: temporary directory per generated input); ``cspfuzz --result-cache DIR``
#: points it at a long-lived store so the oracle also cross-checks entries
#: written by earlier campaigns and other tools
RESULT_CACHE_DIR: Optional[str] = None


def check_result_cache(value) -> None:
    """Verdict memoisation never changes the canonical result bytes.

    Runs the same check three ways -- fresh (no cache), cold through the
    memoised path (miss + write-through), and warm (served from the store)
    -- and requires byte-identical canonical documents from all three,
    with the warm pass being a genuine cache hit.
    """
    import tempfile

    from ..batch.spec import CheckSpec
    from ..exec.resultcache import ResultCache
    from ..exec.runtime import execute_cached, execute_spec

    spec, impl, model = value
    if model not in ("T", "F"):
        raise Discard

    def run(directory: str) -> None:
        check_spec = CheckSpec.refinement(spec, impl, model)
        fresh = execute_spec(check_spec)
        cache = ResultCache(directory)
        cold = execute_cached(check_spec, result_cache=cache)
        hits_after_cold = cache.hits
        warm = execute_cached(check_spec, result_cache=cache)
        if cache.hits == hits_after_cold:
            raise OracleViolation(
                "memoised re-execution of {!r} did not hit the result "
                "cache (stats: {})".format(check_spec, cache.stats())
            )
        lines = {
            "fresh": fresh.canonical_line(),
            "cold": cold.canonical_line(),
            "warm": warm.canonical_line(),
        }
        if len(set(lines.values())) != 1:
            raise OracleViolation(
                "result cache changed the canonical bytes of {!r}: "
                "{}".format(check_spec, lines)
            )

    if RESULT_CACHE_DIR is not None:
        run(RESULT_CACHE_DIR)
    else:
        with tempfile.TemporaryDirectory(prefix="qc-resultcache-") as tmp:
            run(tmp)


# -- oracle: CSPm emit/parse round-trip ---------------------------------------------

_SEND = Channel("send", ["reqSw", "rptSw"])
_REC = Channel("rec", ["reqSw", "rptSw"])
_CHANNEL_EVENTS = tuple(_SEND.events()) + tuple(_REC.events())
_ROUNDTRIP_HEADER = "datatype msgs = reqSw | rptSw\nchannel send, rec : msgs\n"


def check_roundtrip(term: Process) -> None:
    from ..cspm import emit_process, load

    text = _ROUNDTRIP_HEADER + "P = " + emit_process(
        term, {"send": _SEND, "rec": _REC}
    )
    model = load(text)
    reloaded = model.env.resolve("P")
    original = _traces(term)
    reparsed = denotational_traces(reloaded, model.env, BOUND)
    if original != reparsed:
        raise OracleViolation(
            "emit/parse round-trip changed the traces of {!r}; emitted text: "
            "{}".format(term, text.splitlines()[-1])
        )


# -- oracle: CAPL interpreter replay vs extracted model -----------------------------

from ..capl.interpreter import MessageSpec  # noqa: E402  (placed with its oracle)

_CAPL_SPECS: Dict[str, MessageSpec] = {
    "reqA": MessageSpec(0x201, 1),
    "reqB": MessageSpec(0x202, 1),
    "rspX": MessageSpec(0x301, 1),
    "rspY": MessageSpec(0x302, 1),
}


def simulate_capl(source: str, stimuli: Sequence[str]) -> List[Event]:
    """Run the program on the simulated bus; the observed CSP-style trace."""
    from ..canbus import CanBus, CanFrame, Scheduler
    from ..capl import CaplNode

    scheduler = Scheduler()
    bus = CanBus(scheduler)
    node = CaplNode("ECU", bus, source, _CAPL_SPECS)
    trace: List[Event] = []
    for request in stimuli:
        spec = _CAPL_SPECS[request]
        before = len(bus.log)
        node.deliver(CanFrame(spec.can_id, [0] * spec.dlc, name=request))
        scheduler.run()  # flush this handler's transmissions
        trace.append(Event("send", (request,)))
        for entry in bus.log.entries[before:]:
            trace.append(Event("rec", (entry.frame.name,)))
    return trace


def check_extractor(value) -> None:
    from ..translator import ModelExtractor

    program, stimuli = value
    if not isinstance(program, CaplProgram) or not program.handlers:
        raise Discard
    handled = set(program.handled())
    if any(request not in handled for request in stimuli):
        # shrinking may drop the handler a stimulus targets; such inputs are
        # outside the oracle's precondition, not failures
        raise Discard
    source = program.render()
    result = ModelExtractor().extract(source, "ECU")
    model = result.load()
    lts = compile_lts(model.process("ECU"), model.env, max_states=100_000)
    trace = simulate_capl(source, stimuli)
    if lts.walk(trace) is None:
        raise OracleViolation(
            "extracted model rejects a real behaviour of the program: trace "
            "{} of\n{}".format([str(e) for e in trace], source)
        )


# -- oracle: black-box learned model vs extracted model -----------------------------


def check_learned_vs_extracted(program) -> None:
    """Learning the black box reproduces the white-box extraction exactly.

    Two fully independent routes to a model of the same CAPL program: the
    syntax-directed extractor reads the source, while L* learning
    (:mod:`repro.learn`) only ever *runs* it on the simulated bus.  On the
    extraction-precise fragment (:func:`~repro.quickcheck.gen.capl_precise_programs`)
    the two must be bidirectionally trace-equivalent; the reference
    teacher detects any disagreement during learning as a
    :class:`~repro.learn.DivergenceError` carrying a concrete witness
    trace, pinning the bug to whichever side mispredicts the simulator.
    """
    from ..fdr.refine import check_trace_refinement
    from ..learn import CaplSimulatorSUL, LearnError, ReferenceTeacher, learn
    from ..translator import ModelExtractor

    if not isinstance(program, CaplProgram) or not program.handlers:
        raise Discard
    source = program.render()
    result = ModelExtractor().extract(source, "ECU")
    model = result.load()
    reference = compile_lts(model.process("ECU"), model.env, max_states=100_000)
    sul = CaplSimulatorSUL(source, _CAPL_SPECS)
    try:
        learned = learn(
            sul, teacher=ReferenceTeacher(reference), max_rounds=64
        )
    except LearnError as failure:
        # DivergenceError (the differential signal) and non-convergence both
        # mean the two model-building routes disagree about this program
        raise OracleViolation(
            "learned and extracted models disagree on\n{}\n{}".format(
                source, failure
            )
        ) from failure
    # belt and braces: re-check both [T= directions on the frozen result
    sound = check_trace_refinement(reference, learned.lts)
    complete = check_trace_refinement(learned.lts, reference)
    if not sound.passed:
        raise OracleViolation(
            "converged learned model exhibits {} which the extracted model "
            "forbids, on\n{}".format(
                [str(e) for e in sound.counterexample.full_trace], source
            )
        )
    if not complete.passed:
        raise OracleViolation(
            "extracted model admits {} which the learned model lacks, "
            "on\n{}".format(
                [str(e) for e in complete.counterexample.full_trace], source
            )
        )


# -- oracle: flat-array kernel vs pre-refactor reference ----------------------------


def _kernel_input() -> Gen:
    return g.tuples(_PROCESSES, _PROCESSES, g.sampled_from(["T", "F"]))


def check_kernel(value) -> None:
    """The CSR kernel path agrees with the frozen tuple-list semantics.

    Structure, bounded trace sets, refinement verdict, counterexample and
    explored-pair count must all coincide -- the kernel refactor promised
    byte-identical behaviour, and this is where the fuzzer holds it to that.
    """
    from ..csp.events import AlphabetTable
    from ..fdr.refine import check_failures_refinement, check_trace_refinement
    from .reference import (
        reference_compile,
        reference_refinement,
        reference_visible_traces,
    )

    spec, impl, model = value
    ktable, rtable = AlphabetTable(), AlphabetTable()
    kernel_spec = compile_lts(spec, table=ktable)
    kernel_impl = compile_lts(impl, table=ktable)
    ref_spec = reference_compile(spec, table=rtable)
    ref_impl = reference_compile(impl, table=rtable)

    for label, kernel_lts, ref_lts in (
        ("spec", kernel_spec, ref_spec),
        ("impl", kernel_impl, ref_impl),
    ):
        if (
            kernel_lts.state_count != ref_lts.state_count
            or kernel_lts.initial != ref_lts.initial
        ):
            raise OracleViolation(
                "kernel and reference compile of the {} {!r} disagree on "
                "shape: {} vs {} states".format(
                    label,
                    spec if label == "spec" else impl,
                    kernel_lts.state_count,
                    ref_lts.state_count,
                )
            )
        for state in range(ref_lts.state_count):
            kernel_edges = [
                (str(ktable.event_of(eid)), target)
                for eid, target in kernel_lts.successors_ids(state)
            ]
            ref_edges = [
                (str(rtable.event_of(eid)), target)
                for eid, target in ref_lts.successors_ids(state)
            ]
            if kernel_edges != ref_edges:
                raise OracleViolation(
                    "kernel and reference compile of the {} {!r} disagree at "
                    "state {}: {} vs {}".format(
                        label,
                        spec if label == "spec" else impl,
                        state,
                        kernel_edges,
                        ref_edges,
                    )
                )
        if reachable_visible_traces(kernel_lts, BOUND) != reference_visible_traces(
            ref_lts, BOUND
        ):
            raise OracleViolation(
                "kernel and reference trace sets diverge on the {} "
                "{!r}".format(label, spec if label == "spec" else impl)
            )

    checker = check_trace_refinement if model == "T" else check_failures_refinement
    engine = checker(kernel_spec, kernel_impl)
    reference = reference_refinement(ref_spec, ref_impl, model)
    if engine.passed != reference.passed:
        raise OracleViolation(
            "{!r} [{}= {!r}: kernel engine says {}, reference semantics say "
            "{}".format(spec, model, impl, engine.passed, reference.passed)
        )
    if engine.passed:
        return
    cex = engine.counterexample
    if tuple(cex.trace) != reference.trace:
        raise OracleViolation(
            "{!r} [{}= {!r}: kernel counterexample trace {} differs from the "
            "reference trace {}".format(
                spec, model, impl, tuple(cex.trace), reference.trace
            )
        )
    if engine.states_explored != reference.states_explored:
        raise OracleViolation(
            "{!r} [{}= {!r}: kernel explored {} pairs, the reference "
            "explored {}".format(
                spec,
                model,
                impl,
                engine.states_explored,
                reference.states_explored,
            )
        )
    if isinstance(cex, TraceCounterexample) and reference.event is not None:
        if str(cex.forbidden) != str(reference.event):
            raise OracleViolation(
                "{!r} [{}= {!r}: kernel violating event {} differs from the "
                "reference event {}".format(
                    spec, model, impl, cex.forbidden, reference.event
                )
            )
    if isinstance(cex, FailureCounterexample):
        if {str(e) for e in cex.offered} != {str(e) for e in reference.offered}:
            raise OracleViolation(
                "{!r} [F= {!r}: kernel failure offers {} but the reference "
                "offers {}".format(spec, impl, cex.offered, reference.offered)
            )


# -- the registry -------------------------------------------------------------------

ORACLES: Dict[str, Oracle] = {}


def _register(oracle: Oracle) -> Oracle:
    ORACLES[oracle.name] = oracle
    return oracle


_register(
    Oracle(
        "laws",
        "every registered algebraic law holds as bounded trace equivalence",
        "repro.csp.laws, repro.csp.traces",
        _law_input(),
        check_laws,
    )
)
_register(
    Oracle(
        "semantics",
        "operational (LTS) and denotational trace sets agree",
        "repro.csp.semantics, repro.csp.lts, repro.csp.traces",
        _PROCESSES,
        check_semantics,
    )
)
_register(
    Oracle(
        "normalise",
        "normalisation is deterministic, tau-free, trace-preserving and idempotent",
        "repro.fdr.normalise",
        _PROCESSES,
        check_normalise,
    )
)
_register(
    Oracle(
        "refinement",
        "engine [T= verdict and counterexample match the subset definition",
        "repro.fdr.refine, repro.engine.pipeline",
        g.process_pairs(_EVENTS),
        check_refinement,
    )
)
_register(
    Oracle(
        "lazy-eager",
        "on-the-fly and eager refinement agree on verdicts and counterexamples",
        "repro.fdr.refine (LazyImplementation), repro.engine.pipeline",
        _lazy_eager_input(),
        check_lazy_eager,
    )
)
_register(
    Oracle(
        "kernel",
        "flat-array kernel and pre-refactor reference semantics agree",
        "repro.csp.kernel, repro.csp.lts, repro.fdr.refine",
        _kernel_input(),
        check_kernel,
    )
)
_register(
    Oracle(
        "cache",
        "compilation-cache hits never change a verdict or counterexample",
        "repro.engine.cache",
        g.tuples(_PROCESSES, _PROCESSES, _PROCESSES),
        check_cache,
    )
)
_register(
    Oracle(
        "compression",
        "semantic passes never change a verdict, counterexample or deadlock",
        "repro.passes, repro.engine.plan",
        _compression_input(),
        check_compression,
    )
)
_register(
    Oracle(
        "batch",
        "batch wire format and executor agree with the direct pipeline",
        "repro.batch.spec, repro.batch.executor",
        _batch_input(),
        check_batch,
    )
)
_register(
    Oracle(
        "result_cache",
        "memoised verdicts are byte-identical to fresh executions",
        "repro.exec.resultcache, repro.exec.runtime",
        _batch_input(),
        check_result_cache,
    )
)
_register(
    Oracle(
        "roundtrip",
        "CSPm emit -> parse -> evaluate preserves the trace semantics",
        "repro.cspm.emitter, repro.cspm.parser, repro.cspm.evaluator",
        g.process_terms(_CHANNEL_EVENTS),
        check_roundtrip,
    )
)
_register(
    Oracle(
        "extractor",
        "every simulated CAPL behaviour is admitted by the extracted model",
        "repro.translator.extractor, repro.capl.interpreter",
        g.capl_cases(),
        check_extractor,
    )
)
_register(
    Oracle(
        "learned_vs_extracted",
        "black-box learned and extracted models are trace-equivalent",
        "repro.learn, repro.translator.extractor",
        g.capl_precise_programs(),
        check_learned_vs_extracted,
    )
)


def get_oracles(spec: str = "all") -> List[Oracle]:
    """Resolve ``--oracle`` syntax: ``all`` or a comma-separated name list."""
    if spec == "all":
        return [ORACLES[name] for name in sorted(ORACLES)]
    oracles = []
    for name in spec.split(","):
        name = name.strip()
        if name not in ORACLES:
            raise KeyError(
                "unknown oracle {!r}; known: {}".format(name, ", ".join(sorted(ORACLES)))
            )
        oracles.append(ORACLES[name])
    return oracles
