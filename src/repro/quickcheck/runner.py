"""The budgeted fuzzing campaign behind ``cspfuzz``.

A campaign spreads a case budget round-robin across the selected oracles.
Every case derives its own ``random.Random`` from the campaign seed, the
oracle name and the case index, so a single ``--seed`` reproduces the whole
campaign and any individual failure replays from the numbers printed in its
report.  Failures are shrunk to local minima before being reported (and,
with a corpus directory, persisted as replayable JSON files).
"""

from __future__ import annotations

import hashlib
import random
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..obs.trace import NULL_TRACER, Tracer
from .oracles import Oracle
from .shrink import DEFAULT_SHRINK_BUDGET, shrink


def derive_seed(campaign_seed: int, oracle_name: str, case_index: int) -> int:
    """A stable per-case seed: independent of Python hash randomisation."""
    material = "{}:{}:{}".format(campaign_seed, oracle_name, case_index)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class FuzzFailure:
    """One shrunk oracle violation, with everything needed to replay it."""

    def __init__(
        self,
        oracle: str,
        campaign_seed: int,
        case_index: int,
        case_seed: int,
        original,
        shrunk,
        message: str,
    ) -> None:
        self.oracle = oracle
        self.campaign_seed = campaign_seed
        self.case_index = case_index
        self.case_seed = case_seed
        self.original = original
        self.shrunk = shrunk
        self.message = message

    def describe(self) -> str:
        return (
            "oracle {!r} violated (campaign seed {}, case {}, case seed {})\n"
            "  shrunk input: {!r}\n"
            "  {}".format(
                self.oracle,
                self.campaign_seed,
                self.case_index,
                self.case_seed,
                self.shrunk,
                self.message,
            )
        )

    def __repr__(self) -> str:
        return "FuzzFailure(oracle={!r}, case_seed={})".format(
            self.oracle, self.case_seed
        )


class CampaignReport:
    """Outcome of one campaign: case counts and shrunk failures per oracle."""

    def __init__(self, seed: int, budget: int) -> None:
        self.seed = seed
        self.budget = budget
        self.cases_run: Dict[str, int] = {}
        self.failures: List[FuzzFailure] = []
        self.elapsed = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            "cspfuzz campaign: seed {}, {} cases in {:.2f}s".format(
                self.seed, sum(self.cases_run.values()), self.elapsed
            )
        ]
        for name in sorted(self.cases_run):
            count = sum(1 for f in self.failures if f.oracle == name)
            verdict = "ok" if count == 0 else "{} FAILURE(S)".format(count)
            lines.append(
                "  {:<12} {:>5} cases  {}".format(name, self.cases_run[name], verdict)
            )
        for failure in self.failures:
            lines.append(failure.describe())
        return "\n".join(lines)


def run_campaign(
    oracles: Sequence[Oracle],
    seed: int,
    budget: int,
    corpus_dir: Optional[str] = None,
    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
    max_failures_per_oracle: int = 3,
    progress: Optional[Callable[[str], None]] = None,
    obs: Tracer = NULL_TRACER,
) -> CampaignReport:
    """Run *budget* cases round-robin over *oracles*.

    Shrinks every violation to a local minimum; with *corpus_dir*, each
    shrunk failure is also written as a replayable corpus file.  An oracle
    that has already produced *max_failures_per_oracle* failures stops
    consuming budget (one bug tends to fail many random cases; the spare
    budget goes to the other oracles).

    With an enabled tracer as *obs*, every case runs inside a ``case`` span
    (tagged with its oracle and index) containing ``generate`` / ``oracle``
    / ``shrink`` child spans, and ``fuzz.*`` counters track case and
    failure totals.
    """
    if not oracles:
        raise ValueError("a campaign needs at least one oracle")
    report = CampaignReport(seed, budget)
    started = time.perf_counter()
    failed_counts: Dict[str, int] = {o.name: 0 for o in oracles}
    active = list(oracles)
    tracing = obs.enabled
    case_index = 0
    while case_index < budget and active:
        oracle = active[case_index % len(active)]
        case_seed = derive_seed(seed, oracle.name, case_index)
        rng = random.Random(case_seed)
        with obs.span("case", oracle=oracle.name, index=case_index):
            with obs.span("generate"):
                value = oracle.generate(rng)
            # named "oracle", not "check": "check" is a structural span name
            # (see repro.obs.profile.STRUCTURAL_SPANS) and would fold the
            # oracle's verdict time into the "other" bucket
            with obs.span("oracle"):
                message = oracle.violation(value)
            if message is not None:
                with obs.span("shrink"):
                    shrunk = shrink(value, oracle.fails_on, shrink_budget)
        report.cases_run[oracle.name] = report.cases_run.get(oracle.name, 0) + 1
        if tracing:
            obs.metrics.counter("fuzz.cases").inc()
        if message is not None:
            if tracing:
                obs.metrics.counter("fuzz.failures").inc()
            failure = FuzzFailure(
                oracle.name,
                seed,
                case_index,
                case_seed,
                value,
                shrunk,
                oracle.violation(shrunk) or message,
            )
            report.failures.append(failure)
            if corpus_dir is not None:
                from .corpus import write_failure

                path = write_failure(corpus_dir, failure)
                if progress is not None:
                    progress("wrote corpus file {}".format(path))
            if progress is not None:
                progress(failure.describe())
            failed_counts[oracle.name] += 1
            if failed_counts[oracle.name] >= max_failures_per_oracle:
                active = [o for o in active if o.name != oracle.name]
        case_index += 1
    report.elapsed = time.perf_counter() - started
    return report
