"""Pytest-facing property runner: seeded, shrinking, replayable.

The randomized test files call :func:`for_all` with a generator and a
checking function.  Each case draws its input from a ``random.Random``
derived from the session seed (the ``repro_seed`` fixture in
``tests/conftest.py``), the property name and the case index; on failure
the input is shrunk to a local minimum and the raised ``AssertionError``
carries everything needed to reproduce:

    property 'choice-commutative' failed (case 17)
      shrunk input: (SKIP, a -> STOP)
      ...
      replay this exact run with: REPRO_SEED=123456789 python -m pytest ...

Unlike Hypothesis, there is no hidden database and no global state: the
session seed alone determines every generated input.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .gen import Gen
from .oracles import Discard
from .runner import derive_seed
from .shrink import DEFAULT_SHRINK_BUDGET, shrink


class PropertyFailure(AssertionError):
    """A property failed; the message embeds the shrunk repro and the seed."""

    def __init__(
        self, name: str, seed: int, case_index: int, shrunk, cause: BaseException
    ) -> None:
        self.shrunk = shrunk
        self.seed = seed
        self.case_index = case_index
        message = (
            "property {!r} failed (session seed {}, case {})\n"
            "  shrunk input: {!r}\n"
            "  failure: {}: {}\n"
            "  replay this exact run with: REPRO_SEED={} python -m pytest".format(
                name,
                seed,
                case_index,
                shrunk,
                type(cause).__name__,
                cause,
                seed,
            )
        )
        super().__init__(message)


def for_all(
    generator: Gen,
    check: Callable[[object], None],
    *,
    seed: int,
    name: str,
    cases: int = 60,
    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
) -> None:
    """Run *check* on *cases* generated inputs; shrink and raise on failure.

    *check* signals failure by raising (``assert`` inside it is the normal
    style) and may raise :class:`~repro.quickcheck.oracles.Discard` to skip
    inputs outside its precondition.  The per-case RNG is derived from
    ``(seed, name, case_index)``, so a test's inputs are independent of every
    other test and of execution order.
    """

    def failure_of(value) -> Optional[BaseException]:
        try:
            check(value)
        except Discard:
            return None
        except Exception as error:  # noqa: BLE001 -- any failure counts
            return error
        return None

    for case_index in range(cases):
        rng = random.Random(derive_seed(seed, name, case_index))
        value = generator(rng)
        error = failure_of(value)
        if error is None:
            continue
        shrunk = shrink(
            value, lambda candidate: failure_of(candidate) is not None, shrink_budget
        )
        final_error = failure_of(shrunk) or error
        raise PropertyFailure(name, seed, case_index, shrunk, final_error) from error
