"""Greedy structural shrinking of failing fuzz inputs.

When an oracle reports a violation, the raw random input is usually noisy:
a six-operator process term where a two-event prefix would do, or a CAPL
program with three handlers when one statement triggers the bug.  The
shrinker walks a deterministic candidate order -- smaller terms first --
and greedily commits to any candidate that still fails, repeating until no
candidate fails.  The result is *locally minimal*: every one-step
simplification of the reported input makes the failure disappear, which is
exactly the property that makes a counterexample readable.

Determinism matters as much as minimality: the candidate order depends only
on the input's structure, so shrinking the same failure twice yields the
same repro (the pinned regression tests rely on this).

Values shrink by type:

* objects exposing a ``shrink_candidates()`` method (e.g.
  :class:`~repro.quickcheck.gen.CaplProgram`) delegate to it;
* :class:`~repro.csp.process.Process` terms shrink to ``STOP`` / ``SKIP``,
  to any subterm (hoisting), by simplifying one child in place, or by
  thinning a synchronisation / hiding set;
* tuples shrink elementwise (fixed arity -- oracle inputs are tuples);
* lists shrink by dropping an element, then elementwise;
* ints shrink toward zero;
* everything else (strings, events, ...) is atomic.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from ..csp.events import Alphabet
from ..csp.process import (
    ExternalChoice,
    GenParallel,
    Hiding,
    Interleave,
    Interrupt,
    InternalChoice,
    Omega,
    Prefix,
    Process,
    Renaming,
    SKIP,
    STOP,
    SeqComp,
    Skip,
    Stop,
)

#: Default cap on predicate evaluations per shrink run.  Greedy descent on
#: the small inputs the generators produce converges far below this; the cap
#: only guards against pathological predicates.
DEFAULT_SHRINK_BUDGET = 2000


def process_children(term: Process) -> Tuple[Process, ...]:
    """The direct ``Process`` subterms of *term*, in construction order."""
    if isinstance(term, Prefix):
        return (term.continuation,)
    if isinstance(term, (ExternalChoice, InternalChoice, Interleave)):
        return (term.left, term.right)
    if isinstance(term, GenParallel):
        return (term.left, term.right)
    if isinstance(term, SeqComp):
        return (term.first, term.second)
    if isinstance(term, Interrupt):
        return (term.primary, term.handler)
    if isinstance(term, (Hiding, Renaming)):
        return (term.process,)
    return ()


def rebuild_process(term: Process, children: Tuple[Process, ...]) -> Process:
    """Rebuild *term* with its ``Process`` children replaced."""
    if isinstance(term, Prefix):
        return Prefix(term.event, children[0])
    if isinstance(term, ExternalChoice):
        return ExternalChoice(children[0], children[1])
    if isinstance(term, InternalChoice):
        return InternalChoice(children[0], children[1])
    if isinstance(term, Interleave):
        return Interleave(children[0], children[1])
    if isinstance(term, GenParallel):
        return GenParallel(children[0], children[1], term.sync)
    if isinstance(term, SeqComp):
        return SeqComp(children[0], children[1])
    if isinstance(term, Interrupt):
        return Interrupt(children[0], children[1])
    if isinstance(term, Hiding):
        return Hiding(children[0], term.hidden)
    if isinstance(term, Renaming):
        return Renaming(children[0], dict(term.mapping))
    return term


def _alphabet_candidates(alphabet: Alphabet) -> Iterator[Alphabet]:
    """Thinner alphabets: drop one event at a time, in deterministic order."""
    events = list(alphabet)  # Alphabet iterates in sorted order
    for index in range(len(events)):
        yield Alphabet(events[:index] + events[index + 1 :])


def _process_candidates(term: Process) -> Iterator[Process]:
    if isinstance(term, (Stop, Skip, Omega)):
        return
    # the two smallest terms first: most failures bottom out on one of them
    yield STOP
    yield SKIP
    children = process_children(term)
    # hoist any subterm over the whole term
    for child in children:
        yield child
    # thin the synchronisation / hiding set
    if isinstance(term, GenParallel):
        for smaller in _alphabet_candidates(term.sync):
            yield GenParallel(term.left, term.right, smaller)
    if isinstance(term, Hiding):
        for smaller in _alphabet_candidates(term.hidden):
            yield Hiding(term.process, smaller)
    # simplify one child in place
    for index, child in enumerate(children):
        for smaller in _process_candidates(child):
            replaced = children[:index] + (smaller,) + children[index + 1 :]
            yield rebuild_process(term, replaced)


def shrink_candidates(value) -> Iterator:
    """One-step simplifications of *value*, in deterministic order."""
    method = getattr(value, "shrink_candidates", None)
    if method is not None and not isinstance(value, type):
        yield from method()
        return
    if isinstance(value, Process):
        yield from _process_candidates(value)
        return
    if isinstance(value, Alphabet):
        yield from _alphabet_candidates(value)
        return
    if isinstance(value, tuple):
        items = list(value)
        for index, item in enumerate(items):
            for smaller in shrink_candidates(item):
                yield tuple(items[:index] + [smaller] + items[index + 1 :])
        return
    if isinstance(value, list):
        for index in range(len(value)):
            yield value[:index] + value[index + 1 :]
        for index, item in enumerate(value):
            for smaller in shrink_candidates(item):
                yield value[:index] + [smaller] + value[index + 1 :]
        return
    if isinstance(value, bool):
        return  # bool is an int; don't "shrink" flags
    if isinstance(value, int):
        if value != 0:
            yield 0
        if abs(value) > 1:
            yield value // 2
            yield value - 1 if value > 0 else value + 1
        return
    # strings, events, floats, None ... are atomic


def shrink(
    value,
    is_failing: Callable[[object], bool],
    budget: int = DEFAULT_SHRINK_BUDGET,
):
    """Greedily minimise *value* while ``is_failing`` stays true.

    *is_failing* must already be true of *value* (the caller observed the
    failure); it is expected to swallow its own exceptions -- any candidate
    that raises is simply not a failure of the same kind.  Returns the
    locally minimal failing value.
    """
    current = value
    remaining = budget
    improved = True
    while improved and remaining > 0:
        improved = False
        for candidate in shrink_candidates(current):
            if remaining <= 0:
                break
            remaining -= 1
            if is_failing(candidate):
                current = candidate
                improved = True
                break
    return current


def is_locally_minimal(
    value, is_failing: Callable[[object], bool], budget: int = DEFAULT_SHRINK_BUDGET
) -> bool:
    """True if no one-step simplification of *value* still fails."""
    remaining = budget
    for candidate in shrink_candidates(value):
        if remaining <= 0:
            break
        remaining -= 1
        if is_failing(candidate):
            return False
    return True
