"""Frozen pre-kernel reference semantics for the ``kernel`` oracle.

When the flat-array kernel replaced the per-state tuple-list LTS, the old
representation -- and the old per-edge loops over it -- moved here, frozen,
as the reference side of a differential check.  :class:`ReferenceLTS`
stores successors exactly the way ``repro.csp.lts.LTS`` did before the
refactor (one Python list of ``(event_id, target)`` tuples per state), and
the compile / trace-enumeration / normalise / product-search functions
below are the straightforward loops the engine used to run over it.

None of this code is reachable from the verification stack; it exists so
the fuzzer can demand that the kernel path and the pre-refactor semantics
agree on *everything* observable -- automaton structure, bounded trace
sets, refinement verdicts, counterexample traces and failures, and even
the explored-state counts that the conformance corpus pins.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..csp.events import AlphabetTable, Event, TAU_ID, TICK_ID
from ..csp.process import Environment, Process
from ..csp.semantics import transitions as sos_transitions

StateId = int
NodeId = int


class ReferenceLTS:
    """The pre-refactor LTS layout: a tuple list per state."""

    def __init__(self, table: Optional[AlphabetTable] = None) -> None:
        self.initial: StateId = 0
        self.table = table if table is not None else AlphabetTable()
        self.terms: List[Optional[Process]] = []
        self._succ: List[List[Tuple[int, StateId]]] = []

    @property
    def state_count(self) -> int:
        return len(self._succ)

    @property
    def transition_count(self) -> int:
        return sum(len(edges) for edges in self._succ)

    def add_state(self, term: Optional[Process] = None) -> StateId:
        self._succ.append([])
        self.terms.append(term)
        return len(self._succ) - 1

    def add_transition_id(self, source: StateId, eid: int, target: StateId) -> None:
        self._succ[source].append((eid, target))

    def successors_ids(self, state: StateId) -> List[Tuple[int, StateId]]:
        return self._succ[state]

    def is_stable(self, state: StateId) -> bool:
        return all(eid != TAU_ID for eid, _ in self._succ[state])

    def tau_closure(self, states: FrozenSet[StateId]) -> FrozenSet[StateId]:
        seen: Set[StateId] = set(states)
        work = deque(states)
        while work:
            state = work.popleft()
            for eid, target in self._succ[state]:
                if eid == TAU_ID and target not in seen:
                    seen.add(target)
                    work.append(target)
        return frozenset(seen)


def reference_compile(
    process: Process,
    env: Optional[Environment] = None,
    max_states: int = 200_000,
    table: Optional[AlphabetTable] = None,
) -> ReferenceLTS:
    """The pre-refactor eager compiler: BFS in discovery order."""
    environment = env if env is not None else Environment()
    lts = ReferenceLTS(table)
    intern = lts.table.intern
    index: Dict[Process, StateId] = {}

    def state_of(term: Process) -> StateId:
        existing = index.get(term)
        if existing is not None:
            return existing
        if len(index) >= max_states:
            from ..csp.lts import StateSpaceLimitExceeded

            raise StateSpaceLimitExceeded(max_states)
        state = lts.add_state(term)
        index[term] = state
        return state

    state_of(process)
    work: deque = deque([process])
    while work:
        term = work.popleft()
        source = index[term]
        for event, successor in sos_transitions(term, environment):
            known = successor in index
            target = state_of(successor)
            lts.add_transition_id(source, intern(event), target)
            if not known:
                work.append(successor)
    return lts


def reference_visible_traces(
    lts: ReferenceLTS, max_length: int
) -> Set[Tuple[Event, ...]]:
    """Bounded visible traces, the pre-refactor enumeration loop."""
    results: Set[Tuple[Event, ...]] = {()}
    start = lts.tau_closure(frozenset([lts.initial]))
    frontier: List[Tuple[Tuple[Event, ...], frozenset]] = [((), start)]
    event_of = lts.table.event_of
    for _ in range(max_length):
        next_frontier: List[Tuple[Tuple[Event, ...], frozenset]] = []
        for trace, states in frontier:
            by_event: Dict[int, Set[StateId]] = {}
            for state in states:
                for eid, target in lts.successors_ids(state):
                    if eid == TAU_ID:
                        continue
                    by_event.setdefault(eid, set()).add(target)
            for eid, targets in by_event.items():
                extended = trace + (event_of(eid),)
                if extended not in results:
                    results.add(extended)
                    if eid != TICK_ID:
                        closure = lts.tau_closure(frozenset(targets))
                        next_frontier.append((extended, closure))
        frontier = next_frontier
        if not frontier:
            break
    return results


class ReferenceSpec:
    """A normalised (deterministic, tau-free) reference automaton."""

    def __init__(self) -> None:
        self.initial: NodeId = 0
        self.afters: List[Dict[int, NodeId]] = []
        #: per-node subset-minimal stable acceptance sets (event-id frozensets)
        self.acceptances: List[Tuple[FrozenSet[int], ...]] = []


def _minimal_id_sets(
    sets: Set[FrozenSet[int]], table: AlphabetTable
) -> Tuple[FrozenSet[int], ...]:
    kept: List[FrozenSet[int]] = []
    for candidate in sorted(
        sets, key=lambda s: (len(s), sorted(table.sort_key(e) for e in s))
    ):
        if not any(existing <= candidate for existing in kept):
            kept.append(candidate)
    return tuple(kept)


def reference_normalise(lts: ReferenceLTS) -> ReferenceSpec:
    """Subset construction with acceptance sets, the pre-refactor loops."""
    table = lts.table
    spec = ReferenceSpec()
    node_index: Dict[FrozenSet[StateId], NodeId] = {}

    def node_of(members: FrozenSet[StateId]) -> NodeId:
        existing = node_index.get(members)
        if existing is not None:
            return existing
        node = len(spec.afters)
        node_index[members] = node
        spec.afters.append({})
        acceptance_sets: Set[FrozenSet[int]] = set()
        for state in members:
            if lts.is_stable(state):
                acceptance_sets.add(
                    frozenset(eid for eid, _ in lts.successors_ids(state))
                )
        spec.acceptances.append(_minimal_id_sets(acceptance_sets, table))
        return node

    start = lts.tau_closure(frozenset([lts.initial]))
    spec.initial = node_of(start)
    work: deque = deque([start])
    expanded: Set[NodeId] = set()
    while work:
        members = work.popleft()
        node = node_index[members]
        if node in expanded:
            continue
        expanded.add(node)
        by_event: Dict[int, Set[StateId]] = {}
        for state in members:
            for eid, target in lts.successors_ids(state):
                if eid != TAU_ID:
                    by_event.setdefault(eid, set()).add(target)
        for eid, targets in sorted(
            by_event.items(), key=lambda kv: table.sort_key(kv[0])
        ):
            closure = lts.tau_closure(frozenset(targets))
            known = closure in node_index
            spec.afters[node][eid] = node_of(closure)
            if not known:
                work.append(closure)
    return spec


class ReferenceVerdict:
    """One reference check outcome, in directly comparable pieces."""

    def __init__(
        self,
        passed: bool,
        trace: Tuple[Event, ...] = (),
        event: Optional[Event] = None,
        offered: FrozenSet[Event] = frozenset(),
        refused: FrozenSet[Event] = frozenset(),
        states_explored: int = 0,
    ) -> None:
        self.passed = passed
        self.trace = trace
        self.event = event
        self.offered = offered
        self.refused = refused
        self.states_explored = states_explored


def reference_refinement(
    spec_lts: ReferenceLTS, impl_lts: ReferenceLTS, model: str
) -> ReferenceVerdict:
    """``spec [model= impl`` over the reference layout, ``model`` T or F.

    The same BFS the engine runs, written against the tuple-list storage:
    identical tie-breaking, so the verdict, the violating trace *and* the
    explored-pair count must match the kernel path exactly.
    """
    assert model in ("T", "F")
    table = impl_lts.table
    spec = reference_normalise(spec_lts)
    event_of = table.event_of
    parents: Dict[Tuple[StateId, NodeId], Tuple[Optional[Tuple], Optional[int]]] = {}
    start = (impl_lts.initial, spec.initial)
    parents[start] = (None, None)
    work: deque = deque([start])

    def trace_to(pair) -> Tuple[Event, ...]:
        events: List[Event] = []
        cursor = pair
        while cursor is not None:
            parent, eid = parents[cursor]
            if eid is not None and eid != TAU_ID:
                events.append(event_of(eid))
            cursor = parent
        events.reverse()
        return tuple(events)

    while work:
        pair = work.popleft()
        impl_state, node = pair
        if model == "F" and impl_lts.is_stable(impl_state):
            offered_ids = frozenset(
                eid for eid, _ in impl_lts.successors_ids(impl_state)
            )
            acceptances = spec.acceptances[node]
            if not any(accept <= offered_ids for accept in acceptances):
                required = (
                    frozenset().union(*acceptances) if acceptances else frozenset()
                )
                offered = frozenset(event_of(eid) for eid in offered_ids)
                refused = frozenset(
                    event_of(eid) for eid in required - offered_ids
                )
                return ReferenceVerdict(
                    False,
                    trace_to(pair),
                    offered=offered,
                    refused=refused,
                    states_explored=len(parents),
                )
        for eid, target in impl_lts.successors_ids(impl_state):
            if eid == TAU_ID:
                next_pair = (target, node)
            else:
                next_node = spec.afters[node].get(eid)
                if next_node is None:
                    return ReferenceVerdict(
                        False,
                        trace_to(pair),
                        event=event_of(eid),
                        states_explored=len(parents),
                    )
                next_pair = (target, next_node)
            if next_pair not in parents:
                parents[next_pair] = (pair, eid)
                work.append(next_pair)
    return ReferenceVerdict(True, states_explored=len(parents))
