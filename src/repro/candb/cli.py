"""``dbc2cspm`` -- command-line CAN-database-to-CSPm extraction.

Usage::

    dbc2cspm network.dbc [-o declarations.csp] [--inventory]

Part of the second model generator the paper's future-work section calls
for: it turns a CANdb file into CSPm datatype/nametype/channel declarations.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..cli_common import (
    EXIT_OK,
    add_observability_args,
    finish_observability,
    tracer_from_args,
)
from .cspm_export import export_database, message_inventory
from .parser import parse_dbc_file


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dbc2cspm",
        description="Extract CSPm type and channel declarations from a CAN database",
    )
    parser.add_argument("dbc", help="path to the .dbc file")
    parser.add_argument(
        "-o", "--output", help="output .csp file (default: stdout)", default=None
    )
    parser.add_argument(
        "--inventory",
        action="store_true",
        help="print the message inventory table instead of CSPm",
    )
    parser.add_argument(
        "--max-range-bits",
        type=int,
        default=8,
        help="widest signal (in bits) to expand into a nametype range",
    )
    add_observability_args(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    tracer = tracer_from_args(args)
    with tracer.span("run", tool="dbc2cspm", dbc=args.dbc):
        with tracer.span("parse", dbc=args.dbc):
            database = parse_dbc_file(args.dbc)
        with tracer.span("export"):
            if args.inventory:
                text = message_inventory(database) + "\n"
            else:
                text = export_database(
                    database, max_range_bits=args.max_range_bits
                )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    finish_observability(args, tracer)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
