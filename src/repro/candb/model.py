"""Object model for CAN databases (CANdb / .dbc files).

The paper (Sec. IV-B2) describes CAN databases as "textual files (*.dbc
extension) holding all necessary information about message formats, data
payloads and relationships of data packets to network components".  This
module models exactly that: nodes (``BU_``), messages (``BO_``), signals
(``SG_``) with scaling and value tables (``VAL_``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class Signal:
    """One signal inside a message: a bit-field with scaling and semantics."""

    def __init__(
        self,
        name: str,
        start_bit: int,
        length: int,
        byte_order: str = "little",
        signed: bool = False,
        factor: float = 1.0,
        offset: float = 0.0,
        minimum: float = 0.0,
        maximum: float = 0.0,
        unit: str = "",
        receivers: Sequence[str] = (),
    ) -> None:
        if length <= 0 or length > 64:
            raise ValueError("signal length must be in 1..64")
        if byte_order not in ("little", "big"):
            raise ValueError("byte_order must be 'little' or 'big'")
        self.name = name
        self.start_bit = start_bit
        self.length = length
        self.byte_order = byte_order
        self.signed = signed
        self.factor = factor
        self.offset = offset
        self.minimum = minimum
        self.maximum = maximum
        self.unit = unit
        self.receivers = tuple(receivers)
        #: raw value -> symbolic label (from VAL_ declarations)
        self.value_table: Dict[int, str] = {}
        self.comment: Optional[str] = None

    def raw_range(self) -> Tuple[int, int]:
        """The representable raw integer range of the bit-field."""
        if self.signed:
            return (-(1 << (self.length - 1)), (1 << (self.length - 1)) - 1)
        return (0, (1 << self.length) - 1)

    def physical_to_raw(self, physical: float) -> int:
        raw = round((physical - self.offset) / self.factor)
        low, high = self.raw_range()
        if not low <= raw <= high:
            raise ValueError(
                "physical value {} maps to raw {} outside {}..{} for signal {!r}".format(
                    physical, raw, low, high, self.name
                )
            )
        return int(raw)

    def raw_to_physical(self, raw: int) -> float:
        return raw * self.factor + self.offset

    def label_for(self, raw: int) -> Optional[str]:
        return self.value_table.get(raw)

    def __repr__(self) -> str:
        return "Signal({!r}, {}|{}@{}{})".format(
            self.name,
            self.start_bit,
            self.length,
            1 if self.byte_order == "little" else 0,
            "-" if self.signed else "+",
        )


class Message:
    """A CAN message definition: identifier, length and its signals."""

    def __init__(
        self,
        can_id: int,
        name: str,
        dlc: int,
        sender: Optional[str] = None,
    ) -> None:
        self.can_id = can_id
        self.name = name
        self.dlc = dlc
        self.sender = sender
        self.signals: List[Signal] = []
        self.comment: Optional[str] = None

    def add_signal(self, signal: Signal) -> None:
        if any(existing.name == signal.name for existing in self.signals):
            raise ValueError(
                "duplicate signal {!r} in message {!r}".format(signal.name, self.name)
            )
        self.signals.append(signal)

    def signal(self, name: str) -> Signal:
        for signal in self.signals:
            if signal.name == name:
                return signal
        raise KeyError("no signal {!r} in message {!r}".format(name, self.name))

    def receivers(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for signal in self.signals:
            for receiver in signal.receivers:
                if receiver not in seen and receiver != "Vector__XXX":
                    seen.append(receiver)
        return tuple(seen)

    def __repr__(self) -> str:
        return "Message(0x{:X}, {!r}, dlc={})".format(self.can_id, self.name, self.dlc)


class Database:
    """A parsed CAN database: nodes plus message definitions."""

    def __init__(self, version: str = "") -> None:
        self.version = version
        self.nodes: List[str] = []
        self._by_id: Dict[int, Message] = {}
        self._by_name: Dict[str, Message] = {}

    # -- construction --------------------------------------------------------------

    def add_node(self, name: str) -> None:
        if name not in self.nodes:
            self.nodes.append(name)

    def add_message(self, message: Message) -> None:
        if message.can_id in self._by_id:
            raise ValueError("duplicate message id 0x{:X}".format(message.can_id))
        if message.name in self._by_name:
            raise ValueError("duplicate message name {!r}".format(message.name))
        self._by_id[message.can_id] = message
        self._by_name[message.name] = message

    # -- queries ---------------------------------------------------------------------

    @property
    def messages(self) -> List[Message]:
        return sorted(self._by_id.values(), key=lambda m: m.can_id)

    def message_by_id(self, can_id: int) -> Message:
        try:
            return self._by_id[can_id]
        except KeyError:
            raise KeyError("no message with id 0x{:X}".format(can_id)) from None

    def message_by_name(self, name: str) -> Message:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError("no message named {!r}".format(name)) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def messages_sent_by(self, node: str) -> List[Message]:
        return [m for m in self.messages if m.sender == node]

    def messages_received_by(self, node: str) -> List[Message]:
        return [m for m in self.messages if node in m.receivers()]

    def message_specs(self):
        """name -> MessageSpec mapping for the CAPL interpreter."""
        from ..capl.interpreter import MessageSpec

        return {
            message.name: MessageSpec(message.can_id, message.dlc)
            for message in self.messages
        }

    def __repr__(self) -> str:
        return "Database({} nodes, {} messages)".format(
            len(self.nodes), len(self._by_id)
        )
