"""CANdb -> CSPm declaration extraction.

The paper's future-work list (Sec. VIII-A) calls for "a second parser and
model generator ... to handle CAN database files, extracting message formats
as CSPm declarations for data types, name types, and data ranges".  This
module implements that generator:

* all message names become one ``datatype`` (the message universe),
* every signal with a value table becomes a ``datatype`` of its labels,
* every small integer signal becomes a ``nametype`` range ``{lo..hi}``,
* per-node transmit channels are declared over the message datatype.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..cspm.emitter import ScriptBuilder
from .model import Database, Message, Signal

#: signals wider than this many bits are not given a nametype range --
#: enumerating 2^32 values would make models unusable, exactly the state
#: explosion the paper warns about (Sec. II-C2)
DEFAULT_MAX_RANGE_BITS = 8


def sanitize(name: str) -> str:
    """Make an arbitrary DBC label usable as a CSPm identifier."""
    cleaned = re.sub(r"\W", "_", name.strip())
    if not cleaned or cleaned[0].isdigit():
        cleaned = "v_" + cleaned
    return cleaned


def export_database(
    database: Database,
    header: Optional[str] = None,
    max_range_bits: int = DEFAULT_MAX_RANGE_BITS,
    message_channel: str = "can",
    per_node_channels: bool = True,
) -> str:
    """Render a CSPm declaration script for a CAN database."""
    builder = ScriptBuilder(
        header
        or "CSPm declarations extracted from CAN database (version {!r})".format(
            database.version
        )
    )
    message_names = [sanitize(m.name) for m in database.messages]
    if message_names:
        builder.datatype("MsgId", message_names)

    declared_types: List[str] = []
    for message in database.messages:
        for signal in message.signals:
            _export_signal_types(builder, message, signal, max_range_bits, declared_types)

    if message_names:
        builder.channel([message_channel], ["MsgId"])
        if per_node_channels:
            for node in database.nodes:
                sent = database.messages_sent_by(node)
                if sent:
                    builder.channel(["tx_{}".format(sanitize(node))], ["MsgId"])
    return builder.render()


def _export_signal_types(
    builder: ScriptBuilder,
    message: Message,
    signal: Signal,
    max_range_bits: int,
    declared_types: List[str],
) -> None:
    type_name = sanitize("{}_{}".format(message.name, signal.name))
    if type_name in declared_types:
        return
    if signal.value_table:
        labels = [
            sanitize(signal.value_table[raw]) for raw in sorted(signal.value_table)
        ]
        # constructors must be unique across the script; qualify with the type
        unique_labels = []
        for label in labels:
            qualified = label
            suffix = 2
            while qualified in _all_constructors(builder):
                qualified = "{}_{}".format(label, suffix)
                suffix += 1
            unique_labels.append(qualified)
        builder.datatype(type_name, unique_labels)
        declared_types.append(type_name)
        return
    if signal.length <= max_range_bits:
        low, high = signal.raw_range()
        builder.nametype(type_name, "{{{}..{}}}".format(low, high))
        declared_types.append(type_name)


def _all_constructors(builder: ScriptBuilder) -> List[str]:
    constructors: List[str] = []
    for _, names in builder._datatypes:
        constructors.extend(names)
    return constructors


def message_inventory(database: Database) -> str:
    """A human-readable inventory table (mirrors the paper's Table II shape)."""
    lines = ["{:<6} {:<20} {:<8} {:<10} {}".format("id", "name", "dlc", "from", "to")]
    for message in database.messages:
        lines.append(
            "0x{:<4X} {:<20} {:<8} {:<10} {}".format(
                message.can_id,
                message.name,
                message.dlc,
                message.sender or "-",
                ",".join(message.receivers()) or "-",
            )
        )
    return "\n".join(lines)
