"""Parser for the de-facto-standard .dbc file format.

Handles the declarations the paper's toolchain relies on: ``VERSION``,
``BU_`` (nodes), ``BO_`` (messages), ``SG_`` (signals), ``VAL_`` (value
tables) and ``CM_`` (comments).  Other sections (``BA_``, ``NS_`` ...) are
skipped, as most open-source DBC tooling does.
"""

from __future__ import annotations

import re
from typing import Optional

from .model import Database, Message, Signal


class DbcParseError(ValueError):
    """A malformed .dbc construct, with the offending line number."""

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__("{} (line {})".format(message, line_number))
        self.line_number = line_number


_VERSION_RE = re.compile(r'^VERSION\s+"(?P<version>[^"]*)"')
_NODES_RE = re.compile(r"^BU_\s*:\s*(?P<nodes>.*)$")
_MESSAGE_RE = re.compile(
    r"^BO_\s+(?P<id>\d+)\s+(?P<name>\w+)\s*:\s*(?P<dlc>\d+)\s+(?P<sender>\w+)"
)
_SIGNAL_RE = re.compile(
    r"^SG_\s+(?P<name>\w+)\s*:\s*"
    r"(?P<start>\d+)\|(?P<length>\d+)@(?P<order>[01])(?P<sign>[+-])\s*"
    r"\(\s*(?P<factor>[-+0-9.eE]+)\s*,\s*(?P<offset>[-+0-9.eE]+)\s*\)\s*"
    r"\[\s*(?P<min>[-+0-9.eE]+)\s*\|\s*(?P<max>[-+0-9.eE]+)\s*\]\s*"
    r'"(?P<unit>[^"]*)"\s*'
    r"(?P<receivers>.*)$"
)
_VALUE_RE = re.compile(r"^VAL_\s+(?P<id>\d+)\s+(?P<signal>\w+)\s+(?P<pairs>.*);")
_VALUE_PAIR_RE = re.compile(r'(?P<raw>-?\d+)\s+"(?P<label>[^"]*)"')
_COMMENT_MSG_RE = re.compile(r'^CM_\s+BO_\s+(?P<id>\d+)\s+"(?P<text>[^"]*)"\s*;')
_COMMENT_SIG_RE = re.compile(
    r'^CM_\s+SG_\s+(?P<id>\d+)\s+(?P<signal>\w+)\s+"(?P<text>[^"]*)"\s*;'
)


def _number(text: str) -> float:
    return float(text)


def parse_dbc(source: str) -> Database:
    """Parse .dbc text into a :class:`Database`."""
    database = Database()
    current_message: Optional[Message] = None
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            current_message = None
            continue

        version = _VERSION_RE.match(line)
        if version:
            database.version = version.group("version")
            continue

        nodes = _NODES_RE.match(line)
        if nodes:
            for node in nodes.group("nodes").split():
                database.add_node(node)
            continue

        message = _MESSAGE_RE.match(line)
        if message:
            current_message = Message(
                can_id=int(message.group("id")),
                name=message.group("name"),
                dlc=int(message.group("dlc")),
                sender=message.group("sender"),
            )
            try:
                database.add_message(current_message)
            except ValueError as error:
                raise DbcParseError(str(error), line_number) from None
            continue

        signal = _SIGNAL_RE.match(line)
        if signal:
            if current_message is None:
                raise DbcParseError("SG_ outside a BO_ block", line_number)
            receivers = [
                receiver.strip()
                for receiver in signal.group("receivers").replace(",", " ").split()
                if receiver.strip()
            ]
            try:
                current_message.add_signal(
                    Signal(
                        name=signal.group("name"),
                        start_bit=int(signal.group("start")),
                        length=int(signal.group("length")),
                        byte_order="little" if signal.group("order") == "1" else "big",
                        signed=signal.group("sign") == "-",
                        factor=_number(signal.group("factor")),
                        offset=_number(signal.group("offset")),
                        minimum=_number(signal.group("min")),
                        maximum=_number(signal.group("max")),
                        unit=signal.group("unit"),
                        receivers=receivers,
                    )
                )
            except ValueError as error:
                raise DbcParseError(str(error), line_number) from None
            continue

        value_table = _VALUE_RE.match(line)
        if value_table:
            can_id = int(value_table.group("id"))
            try:
                message_def = database.message_by_id(can_id)
                signal_def = message_def.signal(value_table.group("signal"))
            except KeyError as error:
                raise DbcParseError(str(error), line_number) from None
            for pair in _VALUE_PAIR_RE.finditer(value_table.group("pairs")):
                signal_def.value_table[int(pair.group("raw"))] = pair.group("label")
            continue

        message_comment = _COMMENT_MSG_RE.match(line)
        if message_comment:
            can_id = int(message_comment.group("id"))
            try:
                database.message_by_id(can_id).comment = message_comment.group("text")
            except KeyError:
                pass
            continue

        signal_comment = _COMMENT_SIG_RE.match(line)
        if signal_comment:
            can_id = int(signal_comment.group("id"))
            try:
                message_def = database.message_by_id(can_id)
                message_def.signal(signal_comment.group("signal")).comment = (
                    signal_comment.group("text")
                )
            except KeyError:
                pass
            continue

        # every other section (NS_, BS_, BA_DEF_, ...) is ignored
    return database


def parse_dbc_file(path: str) -> Database:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_dbc(handle.read())
