"""CAN databases (CANdb / .dbc) -- parsing, signal codec, CSPm export.

Paper Sec. IV-B2 (the database format) and Sec. VIII-A (the DBC-to-CSPm
model generator, implemented here as :func:`export_database`).
"""

from .model import Database, Message, Signal
from .parser import DbcParseError, parse_dbc, parse_dbc_file
from .codec import decode_message, decode_raw, encode_message, encode_raw
from .cspm_export import (
    DEFAULT_MAX_RANGE_BITS,
    export_database,
    message_inventory,
    sanitize,
)

__all__ = [
    "Database",
    "DbcParseError",
    "DEFAULT_MAX_RANGE_BITS",
    "Message",
    "Signal",
    "decode_message",
    "decode_raw",
    "encode_message",
    "encode_raw",
    "export_database",
    "message_inventory",
    "parse_dbc",
    "parse_dbc_file",
    "sanitize",
]
