"""Signal packing and unpacking (the CANdb codec).

Implements the two DBC bit layouts: Intel/little-endian (``@1``), where the
start bit is the least-significant bit of the signal, and Motorola/big-endian
(``@0``), where the start bit is the most-significant and bit positions walk
the Motorola sawtooth.  Physical values go through each signal's
factor/offset scaling; symbolic labels resolve through the value table.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from .model import Message, Signal

SignalValue = Union[int, float, str]


def _little_endian_positions(signal: Signal):
    """Absolute bit positions, LSB of the signal first."""
    return [signal.start_bit + i for i in range(signal.length)]


def _big_endian_positions(signal: Signal):
    """Absolute bit positions, MSB of the signal first (Motorola order)."""
    positions = []
    position = signal.start_bit
    for _ in range(signal.length):
        positions.append(position)
        if position % 8 == 0:
            position += 15
        else:
            position -= 1
    return positions


def _signal_positions(signal: Signal):
    if signal.byte_order == "little":
        # little-endian lists LSB first; we want MSB first for uniformity
        return list(reversed(_little_endian_positions(signal)))
    return _big_endian_positions(signal)


def encode_raw(signal: Signal, raw: int, data: bytearray) -> None:
    """Pack a raw integer into *data* (modified in place)."""
    low, high = signal.raw_range()
    if not low <= raw <= high:
        raise ValueError(
            "raw value {} out of range {}..{} for signal {!r}".format(
                raw, low, high, signal.name
            )
        )
    if raw < 0:
        raw += 1 << signal.length
    positions = _signal_positions(signal)
    for index, position in enumerate(positions):
        bit = (raw >> (signal.length - 1 - index)) & 1
        byte_index, bit_index = divmod(position, 8)
        if byte_index >= len(data):
            raise ValueError(
                "signal {!r} does not fit in a {}-byte payload".format(
                    signal.name, len(data)
                )
            )
        if bit:
            data[byte_index] |= 1 << bit_index
        else:
            data[byte_index] &= ~(1 << bit_index)


def decode_raw(signal: Signal, data: bytes) -> int:
    """Extract the raw integer of *signal* from a payload."""
    raw = 0
    for position in _signal_positions(signal):
        byte_index, bit_index = divmod(position, 8)
        bit = (data[byte_index] >> bit_index) & 1 if byte_index < len(data) else 0
        raw = (raw << 1) | bit
    if signal.signed and raw >= 1 << (signal.length - 1):
        raw -= 1 << signal.length
    return raw


def _resolve_value(signal: Signal, value: SignalValue) -> int:
    if isinstance(value, str):
        for raw, label in signal.value_table.items():
            if label == value:
                return raw
        raise ValueError(
            "label {!r} not in value table of signal {!r}".format(value, signal.name)
        )
    return signal.physical_to_raw(float(value))


def encode_message(message: Message, values: Mapping[str, SignalValue]) -> bytes:
    """Build the payload of *message* from signal values.

    Values may be physical numbers or value-table labels.  Unmentioned
    signals encode as raw zero.
    """
    data = bytearray(message.dlc)
    for name in values:
        message.signal(name)  # raises KeyError for unknown signals
    for signal in message.signals:
        if signal.name in values:
            encode_raw(signal, _resolve_value(signal, values[signal.name]), data)
    return bytes(data)


def decode_message(message: Message, data: bytes) -> Dict[str, SignalValue]:
    """Decode a payload into physical values (labels when a table matches)."""
    decoded: Dict[str, SignalValue] = {}
    for signal in message.signals:
        raw = decode_raw(signal, data)
        label = signal.label_for(raw)
        if label is not None:
            decoded[signal.name] = label
        else:
            physical = signal.raw_to_physical(raw)
            if float(physical).is_integer():
                decoded[signal.name] = int(physical)
            else:
                decoded[signal.name] = physical
    return decoded
