"""``cspbatch`` -- batch-verify a manifest of checks over worker processes.

Usage::

    cspbatch MANIFEST.json [--jobs N] [--timeout S] [--batch-timeout S]
             [--cache-dir DIR] [--result-cache DIR | --no-result-cache]
             [--server URL] [--tenant NAME]
             [--quiet] [--profile] [--trace-out FILE]

The manifest is a JSON document (``{"format": 1, "checks": [...]}``, schema
in :mod:`repro.batch.spec` and ``docs/batch.md``); ``-`` reads it from
stdin.  Results stream to stdout as JSON Lines, one canonical result per
check **in manifest order** -- the same bytes regardless of ``--jobs``,
scheduling, or cache temperature.  Diagnostics (the batch summary, per-job
failure lines, profiles) go to stderr.

``--server URL`` points the same manifest at a running ``cspserve`` daemon
instead of a local worker pool: one ``POST /batch`` round trip, canonical
JSONL out, byte-identical to the local modes.  Concurrency, caching and
per-job deadlines are then the daemon's configuration, so ``--jobs``,
``--cache-dir`` and ``--batch-timeout`` are ignored (``--timeout`` still
travels with each check).  A daemon that cannot be reached exits 2; a
rejected submission (queue full, quota) exits 1 -- the fail-closed gate
shape: no verdict means no pass.

Exit status: 0 when every job passed, 1 when any job's verdict was not
``PASS``, 2 for an unusable invocation or manifest.  ``SIGINT`` aborts
cleanly: running workers are terminated before the process exits with
status 1.  ``--batch-timeout`` is the graceful flavour -- jobs cut off by
the deadline still get a ``CANCELLED`` result line each.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import List, Optional

from ..cli_common import (
    EXIT_OK,
    EXIT_USAGE,
    EXIT_VIOLATION,
    add_observability_args,
    add_result_cache_args,
    add_stats_arg,
    emit_stats,
    finish_observability,
    result_cache_dir_from_args,
    tracer_from_args,
)
from .executor import run_batch
from .spec import CheckSpec, ManifestError, PASS, load_manifest


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cspbatch",
        description="Batch-verify a manifest of CSP checks over worker "
        "processes, with per-job crash isolation and timeouts.",
    )
    parser.add_argument(
        "manifest",
        help="path of the batch manifest (JSON), or '-' for stdin",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="max concurrent worker processes (default: 1); "
        "0 runs the batch inline in this process",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout (default: none)",
    )
    parser.add_argument(
        "--batch-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="whole-batch deadline; jobs not finished by then are cancelled",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk compilation cache shared by workers",
    )
    parser.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="submit the manifest to a running cspserve daemon instead of "
        "local workers (--jobs/--cache-dir/--batch-timeout then do nothing)",
    )
    parser.add_argument(
        "--tenant",
        default=None,
        metavar="NAME",
        help="tenant to submit as in --server mode (quota accounting)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-job and summary diagnostics on stderr",
    )
    add_result_cache_args(parser, "batch verdicts")
    add_stats_arg(parser, "print executor statistics to stderr")
    add_observability_args(parser)
    return parser


def _load_specs(path: str, parser: argparse.ArgumentParser) -> List[CheckSpec]:
    try:
        if path == "-":
            return load_manifest(sys.stdin)
        return load_manifest(path)
    except OSError as error:
        parser.exit(
            EXIT_USAGE, "cspbatch: cannot read manifest: {}\n".format(error)
        )
    except ManifestError as error:
        parser.exit(EXIT_USAGE, "cspbatch: bad manifest: {}\n".format(error))


def _run_against_server(args, specs: List[CheckSpec]) -> int:
    """The ``--server`` client mode: one POST /batch, canonical JSONL out."""
    from ..server.client import ServerClient, ServerError
    from ..server.protocol import Rejection

    try:
        client = ServerClient(args.server)
    except ValueError as error:
        sys.stderr.write("cspbatch: {}\n".format(error))
        return EXIT_USAGE
    try:
        results = client.run_manifest(
            specs, tenant=args.tenant, timeout=args.timeout
        )
    except ServerError as error:
        sys.stderr.write("cspbatch: {}\n".format(error))
        return EXIT_USAGE
    except Rejection as rejection:
        # fail closed: an unserved manifest is a failing gate, not a pass
        sys.stderr.write(
            "cspbatch: server rejected the manifest ({}): {}\n".format(
                rejection.code, rejection.message
            )
        )
        return EXIT_VIOLATION
    counts = {}
    for result in results:
        counts[result.verdict] = counts.get(result.verdict, 0) + 1
        sys.stdout.write(result.canonical_line() + "\n")
        if not args.quiet and result.verdict != PASS:
            sys.stderr.write(result.summary() + "\n")
    if not args.quiet:
        parts = ", ".join(
            "{} {}".format(count, verdict)
            for verdict, count in sorted(counts.items())
        )
        sys.stderr.write(
            "{} jobs ({}) via {}\n".format(
                len(results), parts if parts else "empty", args.server
            )
        )
    if args.stats:
        emit_stats(sorted(counts.items()))
    ok = all(result.verdict == PASS for result in results)
    return EXIT_OK if ok else EXIT_VIOLATION


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.exit(EXIT_USAGE, "cspbatch: --jobs must be >= 0\n")
    specs = _load_specs(args.manifest, parser)
    if args.server is not None:
        return _run_against_server(args, specs)
    tracer = tracer_from_args(args)

    cancel = threading.Event()
    try:
        report = run_batch(
            specs,
            jobs=args.jobs,
            timeout=args.timeout,
            batch_timeout=args.batch_timeout,
            cache_dir=args.cache_dir,
            result_cache_dir=result_cache_dir_from_args(args),
            obs=tracer if tracer.enabled else None,
            cancel=cancel,
            inline=args.jobs == 0,
        )
    except KeyboardInterrupt:
        sys.stderr.write("cspbatch: interrupted\n")
        return EXIT_VIOLATION

    for result in report.results:
        sys.stdout.write(result.canonical_line() + "\n")
        if not args.quiet and result.verdict != PASS:
            sys.stderr.write(result.summary() + "\n")
    if not args.quiet:
        sys.stderr.write(report.summary() + "\n")
    if args.stats:
        emit_stats(sorted(report.counts().items()))
        if report.result_cache_stats is not None:
            emit_stats(sorted(report.result_cache_stats.items()))
    finish_observability(args, tracer, report.profile)
    return EXIT_OK if report.ok else EXIT_VIOLATION


if __name__ == "__main__":
    sys.exit(main())
