"""The batch executor: fan a spec list over worker processes.

Each job runs in its **own** :mod:`multiprocessing` worker process with a
dedicated pipe -- not in a shared pool -- because the failure modes the
batch must survive are exactly the ones that kill pools: a worker that
segfaults (or ``os._exit``\\ s) takes down only its own job, and a job past
its deadline is terminated without poisoning the processes running its
siblings.  At most *jobs* workers run concurrently; the scheduler launches
from a pending queue as slots free up, multiplexing completions with
:func:`multiprocessing.connection.wait`.

Determinism: results are keyed by the spec's position in the input list and
reported in that order regardless of completion order, and each worker
verifies its spec in a fresh pipeline (own environment, alphabet table,
in-memory cache), so nothing about scheduling can leak into a verdict.
The optional disk cache (shared, content-addressed, validated on read --
see :mod:`repro.engine.diskcache`) accelerates workers without coupling
them: a warm entry reproduces the cold compile's automaton exactly.

Verdict taxonomy per job:

========== ==============================================================
``PASS``   the check ran and held
``FAIL``   the check ran and produced a counterexample
``ERROR``  the check raised, or its worker died (crash, nonzero exit)
``TIMEOUT`` the job exceeded its deadline and was terminated
``CANCELLED`` the batch was cancelled (or hit its batch deadline) first
========== ==============================================================
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Sequence

from ..obs.profile import Profile, merge_profiles, profile_of
from ..obs.trace import Tracer, ensure_tracer
from .spec import (
    CANCELLED,
    CheckSpec,
    ERROR,
    FAIL,
    JobResult,
    PASS,
    TIMEOUT,
)


class BatchReport:
    """All job results of one batch, in input order, plus batch totals."""

    def __init__(
        self,
        results: List[JobResult],
        *,
        wall_ms: float,
        jobs: int,
        profile: Optional[Profile] = None,
    ) -> None:
        self.results = results
        self.wall_ms = wall_ms
        self.jobs = jobs
        #: per-job profiles merged by summation (aggregate compute; may
        #: exceed wall_ms under parallelism -- the gap is the speedup)
        self.profile = profile

    @property
    def ok(self) -> bool:
        return all(result.verdict == PASS for result in self.results)

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for result in self.results:
            tally[result.verdict] = tally.get(result.verdict, 0) + 1
        return tally

    def summary(self) -> str:
        parts = [
            "{} {}".format(count, verdict)
            for verdict, count in sorted(self.counts().items())
        ]
        return "{} jobs ({}) in {:.1f} ms on {} worker{}".format(
            len(self.results),
            ", ".join(parts) if parts else "empty",
            self.wall_ms,
            self.jobs,
            "" if self.jobs == 1 else "s",
        )

    def __repr__(self) -> str:
        return "BatchReport({})".format(self.summary())


# -- in-process execution ----------------------------------------------------


def execute_spec(
    spec: CheckSpec,
    index: int = 0,
    *,
    cache_dir: Optional[str] = None,
    profile: bool = False,
) -> JobResult:
    """Run one spec to completion in this process.

    The sequential reference semantics: the pooled executor must produce
    byte-identical :meth:`~repro.batch.spec.JobResult.canonical` documents
    to this function for every spec.  Each call builds a fresh pipeline --
    fresh environment, alphabet table, and in-memory cache (optionally
    layered over the shared disk store) -- so specs cannot interfere.
    """
    from .. import api
    from ..engine.cache import CompilationCache
    from ..engine.diskcache import DiskCache

    started = time.perf_counter()
    obs = Tracer() if profile else None
    cache = None
    if cache_dir is not None:
        cache = CompilationCache(disk=DiskCache(cache_dir))
    check = None
    try:
        if spec.kind == "selftest":
            result = _run_selftest(spec, index, started)
        elif spec.kind == "requirement":
            from ..ota.requirements import check_requirement

            check = check_requirement(
                spec.req_id, passes=spec.passes, obs=obs, cache=cache
            )
            result = JobResult.of_check_result(index, spec.check_id, check)
        elif spec.kind == "refinement":
            check = api.check_refinement(
                spec.spec,
                spec.impl,
                spec.model,
                env=spec.environment(),
                name=spec.name,
                passes=spec.passes,
                cache=cache,
                obs=obs,
                **_budget(spec),
            )
            result = JobResult.of_check_result(index, spec.check_id, check)
        else:
            check = api.check_property(
                spec.term,
                spec.property_name,
                env=spec.environment(),
                name=spec.name,
                passes=spec.passes,
                cache=cache,
                obs=obs,
                **_budget(spec),
            )
            result = JobResult.of_check_result(index, spec.check_id, check)
    except Exception as error:
        result = JobResult(
            index,
            spec.check_id,
            ERROR,
            name=spec.name,
            error="{}: {}".format(type(error).__name__, error),
        )
    result.duration_ms = (time.perf_counter() - started) * 1000.0
    result.worker_pid = os.getpid()
    if profile and check is not None and check.profile is not None:
        result.profile = check.profile.as_dict()
    return result


def _budget(spec: CheckSpec) -> Dict[str, Any]:
    return {} if spec.max_states is None else {"max_states": spec.max_states}


def _run_selftest(spec: CheckSpec, index: int, started: float) -> JobResult:
    """Fault-injection ops: exercise the executor's failure handling."""
    op = spec.op or ""
    if op == "pass":
        return JobResult(index, spec.check_id, PASS, name=spec.name)
    if op == "fail":
        return JobResult(
            index,
            spec.check_id,
            FAIL,
            name=spec.name,
            counterexample={
                "kind": "trace",
                "trace": ["selftest"],
                "description": "injected failure",
            },
        )
    if op == "raise":
        raise RuntimeError("injected worker exception")
    if op.startswith("sleep:"):
        time.sleep(float(op.split(":", 1)[1]))
        return JobResult(index, spec.check_id, PASS, name=spec.name)
    if op.startswith("exit:"):
        # simulate a hard crash (segfault-alike): no teardown, no result
        os._exit(int(op.split(":", 1)[1]))
    raise ValueError("unknown selftest op {!r}".format(op))


# -- worker process ----------------------------------------------------------


def _worker_main(
    conn,
    spec_doc: Dict[str, Any],
    index: int,
    cache_dir: Optional[str],
    want_profile: bool,
) -> None:
    """Entry point of one worker process: run one spec, send one document.

    Top-level (not a closure) so it works under the ``spawn`` start method
    as well as ``fork``.  The spec crosses the boundary as its JSON document
    -- the same schema as the manifest -- so workers never unpickle code.
    """
    try:
        spec = CheckSpec.from_doc(spec_doc)
        result = execute_spec(
            spec, index, cache_dir=cache_dir, profile=want_profile
        )
        conn.send(result.to_doc())
    except BaseException:
        # last-resort: report rather than die silently (a swallowed worker
        # death would surface as a generic exit-code ERROR upstream)
        try:
            conn.send(
                JobResult(
                    index,
                    spec_doc.get("id"),
                    ERROR,
                    error=traceback.format_exc(limit=3),
                ).to_doc()
            )
        except OSError:
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _Running:
    """One in-flight worker: its process, pipe end, and deadline."""

    __slots__ = ("index", "spec", "process", "conn", "deadline")

    def __init__(self, index, spec, process, conn, deadline):
        self.index = index
        self.spec = spec
        self.process = process
        self.conn = conn
        self.deadline = deadline


def run_batch(
    specs: Sequence[CheckSpec],
    *,
    jobs: int = 1,
    timeout: Optional[float] = None,
    batch_timeout: Optional[float] = None,
    cache_dir: Optional[str] = None,
    obs: Optional[Tracer] = None,
    cancel: Optional[threading.Event] = None,
    inline: bool = False,
    profile: bool = False,
) -> BatchReport:
    """Verify every spec; return results in input order.

    *jobs* bounds concurrent worker processes.  *timeout* is per job (wall
    seconds); *batch_timeout* bounds the whole run -- jobs still pending
    when it expires come back ``CANCELLED``, jobs already running are
    terminated to ``CANCELLED`` too.  *cancel* is an external kill switch
    checked between scheduler steps.  ``inline=True`` (or ``jobs <= 0``)
    runs everything sequentially in this process -- no forks, same results.
    """
    tracer = ensure_tracer(obs)
    want_profile = profile or tracer.enabled
    started = time.perf_counter()
    batch_deadline = (
        None if batch_timeout is None else started + batch_timeout
    )
    with tracer.span("batch", jobs=jobs, specs=len(specs)) as root:
        if inline or jobs <= 0:
            results = _run_inline(
                specs, cache_dir, want_profile, cancel, batch_deadline
            )
        else:
            results = _run_pooled(
                specs,
                jobs,
                timeout,
                batch_deadline,
                cache_dir,
                want_profile,
                cancel,
            )
        metrics = tracer.metrics
        if tracer.enabled:
            metrics.counter("batch.jobs").inc(len(results))
            for result in results:
                metrics.counter(
                    "batch.{}".format(result.verdict.lower())
                ).inc()
    wall_ms = (time.perf_counter() - started) * 1000.0
    merged = None
    if want_profile:
        member_profiles = [
            Profile.from_dict(result.profile)
            for result in results
            if result.profile is not None
        ]
        merged = merge_profiles(member_profiles)
    return BatchReport(
        results, wall_ms=wall_ms, jobs=max(jobs, 1), profile=merged
    )


def _cancelled_result(index: int, spec: CheckSpec) -> JobResult:
    return JobResult(
        index, spec.check_id, CANCELLED, name=spec.name, error="batch cancelled"
    )


def _run_inline(
    specs: Sequence[CheckSpec],
    cache_dir: Optional[str],
    want_profile: bool,
    cancel: Optional[threading.Event],
    batch_deadline: Optional[float],
) -> List[JobResult]:
    results: List[JobResult] = []
    for index, spec in enumerate(specs):
        expired = (
            batch_deadline is not None and time.perf_counter() >= batch_deadline
        )
        if (cancel is not None and cancel.is_set()) or expired:
            results.append(_cancelled_result(index, spec))
            continue
        results.append(
            execute_spec(spec, index, cache_dir=cache_dir, profile=want_profile)
        )
    return results


def _run_pooled(
    specs: Sequence[CheckSpec],
    jobs: int,
    timeout: Optional[float],
    batch_deadline: Optional[float],
    cache_dir: Optional[str],
    want_profile: bool,
    cancel: Optional[threading.Event],
) -> List[JobResult]:
    context = multiprocessing.get_context()
    results: Dict[int, JobResult] = {}
    pending = list(enumerate(specs))
    pending.reverse()  # pop() from the tail = input order
    running: List[_Running] = []

    def launch(index: int, spec: CheckSpec) -> None:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(child_conn, spec.to_doc(), index, cache_dir, want_profile),
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only the read end
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        running.append(_Running(index, spec, process, parent_conn, deadline))

    def reap(slot: _Running, verdict: str, error: str) -> None:
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join()
        try:
            slot.conn.close()
        except OSError:
            pass
        running.remove(slot)
        results[slot.index] = JobResult(
            slot.index,
            slot.spec.check_id,
            verdict,
            name=slot.spec.name,
            error=error,
        )

    try:
        while pending or running:
            now = time.perf_counter()
            batch_expired = batch_deadline is not None and now >= batch_deadline
            cancelled = (cancel is not None and cancel.is_set()) or batch_expired
            if cancelled:
                for slot in list(running):
                    reap(slot, CANCELLED, "batch cancelled")
                while pending:
                    index, spec = pending.pop()
                    results[index] = _cancelled_result(index, spec)
                break

            while pending and len(running) < jobs:
                index, spec = pending.pop()
                launch(index, spec)

            # wake on the earliest event: a completion, a per-job deadline,
            # the batch deadline, or a periodic cancellation poll
            wait_until = now + 0.1
            for slot in running:
                if slot.deadline is not None:
                    wait_until = min(wait_until, slot.deadline)
            if batch_deadline is not None:
                wait_until = min(wait_until, batch_deadline)
            ready = multiprocessing.connection.wait(
                [slot.conn for slot in running],
                timeout=max(0.0, wait_until - time.perf_counter()),
            )

            for slot in list(running):
                if slot.conn in ready:
                    try:
                        doc = slot.conn.recv()
                    except (EOFError, OSError):
                        # pipe closed with no payload: the worker died
                        # before reporting (crash, os._exit, signal)
                        slot.process.join()
                        reap(
                            slot,
                            ERROR,
                            "worker exited with code {}".format(
                                slot.process.exitcode
                            ),
                        )
                        continue
                    slot.process.join()
                    try:
                        slot.conn.close()
                    except OSError:
                        pass
                    running.remove(slot)
                    results[slot.index] = JobResult.from_doc(doc)
                elif (
                    slot.deadline is not None
                    and time.perf_counter() >= slot.deadline
                ):
                    reap(
                        slot,
                        TIMEOUT,
                        "job exceeded {:.1f}s timeout".format(timeout),
                    )
    except BaseException:
        # interrupted (e.g. KeyboardInterrupt): never strand workers
        for slot in running:
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join()
        raise
    return [results[index] for index in range(len(specs))]
