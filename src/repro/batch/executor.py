"""The batch executor: fan a spec list over worker processes.

Each job runs in its **own** :mod:`multiprocessing` worker process with a
dedicated pipe -- not in a shared pool -- because the failure modes the
batch must survive are exactly the ones that kill pools: a worker that
segfaults (or ``os._exit``\\ s) takes down only its own job, and a job past
its deadline is terminated without poisoning the processes running its
siblings.  At most *jobs* workers run concurrently; the scheduler launches
from a pending queue as slots free up, multiplexing completions with
:func:`multiprocessing.connection.wait`.

Determinism: results are keyed by the spec's position in the input list and
reported in that order regardless of completion order, and each worker
verifies its spec in a fresh pipeline (own environment, alphabet table,
in-memory cache), so nothing about scheduling can leak into a verdict.
Execution itself lives in :mod:`repro.exec` -- this module only schedules:
:func:`~repro.exec.runtime.execute_spec` is the sequential reference the
pool is held to, and two caches accelerate workers without coupling them.
The LTS disk cache (:mod:`repro.engine.diskcache`) makes a warm compile
reproduce the cold compile's automaton exactly; the result cache
(:mod:`repro.exec.resultcache`) memoises whole verdicts -- the parent
probes it before forking (a hit never costs a process) and workers
promote fresh outcomes write-through.

Verdict taxonomy per job:

========== ==============================================================
``PASS``   the check ran and held
``FAIL``   the check ran and produced a counterexample
``ERROR``  the check raised, or its worker died (crash, nonzero exit)
``TIMEOUT`` the job exceeded its deadline and was terminated
``CANCELLED`` the batch was cancelled (or hit its batch deadline) first
========== ==============================================================
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import threading
import time
from typing import Dict, List, Optional, Sequence

# the execution core moved to repro.exec; re-exported because this module
# defined it first and every mode's callers import it from here
from ..exec.runtime import execute_cached, execute_spec, open_result_cache
from ..exec.workers import failure_result, oneshot_worker_main
from ..obs.profile import Profile, merge_profiles, profile_of
from ..obs.trace import Tracer, ensure_tracer
from .spec import (
    CANCELLED,
    CheckSpec,
    ERROR,
    JobResult,
    PASS,
    TIMEOUT,
)


class BatchReport:
    """All job results of one batch, in input order, plus batch totals."""

    def __init__(
        self,
        results: List[JobResult],
        *,
        wall_ms: float,
        jobs: int,
        profile: Optional[Profile] = None,
        result_cache_stats: Optional[Dict[str, int]] = None,
    ) -> None:
        self.results = results
        self.wall_ms = wall_ms
        self.jobs = jobs
        #: per-job profiles merged by summation (aggregate compute; may
        #: exceed wall_ms under parallelism -- the gap is the speedup)
        self.profile = profile
        #: the parent-side :meth:`~repro.exec.resultcache.ResultCache.stats`
        #: snapshot (None when memoisation was off); pooled workers keep
        #: their own write-through counters, so parent numbers cover probes
        self.result_cache_stats = result_cache_stats

    @property
    def ok(self) -> bool:
        return all(result.verdict == PASS for result in self.results)

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for result in self.results:
            tally[result.verdict] = tally.get(result.verdict, 0) + 1
        return tally

    def summary(self) -> str:
        parts = [
            "{} {}".format(count, verdict)
            for verdict, count in sorted(self.counts().items())
        ]
        return "{} jobs ({}) in {:.1f} ms on {} worker{}".format(
            len(self.results),
            ", ".join(parts) if parts else "empty",
            self.wall_ms,
            self.jobs,
            "" if self.jobs == 1 else "s",
        )

    def __repr__(self) -> str:
        return "BatchReport({})".format(self.summary())


class _Running:
    """One in-flight worker: its process, pipe end, and deadline."""

    __slots__ = ("index", "spec", "process", "conn", "deadline")

    def __init__(self, index, spec, process, conn, deadline):
        self.index = index
        self.spec = spec
        self.process = process
        self.conn = conn
        self.deadline = deadline


def run_batch(
    specs: Sequence[CheckSpec],
    *,
    jobs: int = 1,
    timeout: Optional[float] = None,
    batch_timeout: Optional[float] = None,
    cache_dir: Optional[str] = None,
    result_cache_dir: Optional[str] = None,
    obs: Optional[Tracer] = None,
    cancel: Optional[threading.Event] = None,
    inline: bool = False,
    profile: bool = False,
) -> BatchReport:
    """Verify every spec; return results in input order.

    *jobs* bounds concurrent worker processes.  *timeout* is per job (wall
    seconds); *batch_timeout* bounds the whole run -- jobs still pending
    when it expires come back ``CANCELLED``, jobs already running are
    terminated to ``CANCELLED`` too.  *cancel* is an external kill switch
    checked between scheduler steps.  ``inline=True`` (or ``jobs <= 0``)
    runs everything sequentially in this process -- no forks, same results.
    *result_cache_dir* enables verdict memoisation: the parent answers
    memoised specs without forking and workers promote fresh ``PASS`` /
    ``FAIL`` outcomes write-through; canonical result bytes are identical
    either way.
    """
    tracer = ensure_tracer(obs)
    want_profile = profile or tracer.enabled
    started = time.perf_counter()
    batch_deadline = (
        None if batch_timeout is None else started + batch_timeout
    )
    result_cache = open_result_cache(result_cache_dir)
    with tracer.span("batch", jobs=jobs, specs=len(specs)) as root:
        if inline or jobs <= 0:
            results = _run_inline(
                specs,
                cache_dir,
                want_profile,
                cancel,
                batch_deadline,
                result_cache,
                tracer,
            )
        else:
            results = _run_pooled(
                specs,
                jobs,
                timeout,
                batch_deadline,
                cache_dir,
                want_profile,
                cancel,
                result_cache,
                result_cache_dir,
                tracer,
            )
        metrics = tracer.metrics
        if tracer.enabled:
            metrics.counter("batch.jobs").inc(len(results))
            for result in results:
                metrics.counter(
                    "batch.{}".format(result.verdict.lower())
                ).inc()
    wall_ms = (time.perf_counter() - started) * 1000.0
    merged = None
    if want_profile:
        member_profiles = [
            Profile.from_dict(result.profile)
            for result in results
            if result.profile is not None
        ]
        merged = merge_profiles(member_profiles)
    return BatchReport(
        results,
        wall_ms=wall_ms,
        jobs=max(jobs, 1),
        profile=merged,
        result_cache_stats=None if result_cache is None else result_cache.stats(),
    )


def _cancelled_result(index: int, spec: CheckSpec) -> JobResult:
    return failure_result(
        CANCELLED,
        "batch cancelled",
        index=index,
        check_id=spec.check_id,
        name=spec.name,
    )


def _run_inline(
    specs: Sequence[CheckSpec],
    cache_dir: Optional[str],
    want_profile: bool,
    cancel: Optional[threading.Event],
    batch_deadline: Optional[float],
    result_cache,
    tracer: Tracer,
) -> List[JobResult]:
    metrics = tracer.metrics if tracer.enabled else None
    results: List[JobResult] = []
    for index, spec in enumerate(specs):
        expired = (
            batch_deadline is not None and time.perf_counter() >= batch_deadline
        )
        if (cancel is not None and cancel.is_set()) or expired:
            results.append(_cancelled_result(index, spec))
            continue
        results.append(
            execute_cached(
                spec,
                index,
                cache_dir=cache_dir,
                profile=want_profile,
                result_cache=result_cache,
                metrics=metrics,
            )
        )
    return results


def _run_pooled(
    specs: Sequence[CheckSpec],
    jobs: int,
    timeout: Optional[float],
    batch_deadline: Optional[float],
    cache_dir: Optional[str],
    want_profile: bool,
    cancel: Optional[threading.Event],
    result_cache,
    result_cache_dir: Optional[str],
    tracer: Tracer,
) -> List[JobResult]:
    context = multiprocessing.get_context()
    metrics = tracer.metrics if tracer.enabled else None
    results: Dict[int, JobResult] = {}
    pending = list(enumerate(specs))
    pending.reverse()  # pop() from the tail = input order
    running: List[_Running] = []

    def launch(index: int, spec: CheckSpec) -> bool:
        """Start a worker for this spec; False when a cache hit answered it."""
        if result_cache is not None:
            hit = result_cache.get(spec.to_doc(), index)
            if hit is not None:
                if metrics is not None:
                    metrics.counter("result_cache.hits").inc()
                results[index] = hit
                return False
            if metrics is not None:
                metrics.counter("result_cache.misses").inc()
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=oneshot_worker_main,
            args=(
                child_conn,
                spec.to_doc(),
                index,
                cache_dir,
                want_profile,
                result_cache_dir,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only the read end
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        running.append(_Running(index, spec, process, parent_conn, deadline))
        return True

    def reap(slot: _Running, verdict: str, error: str) -> None:
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join()
        try:
            slot.conn.close()
        except OSError:
            pass
        running.remove(slot)
        results[slot.index] = JobResult(
            slot.index,
            slot.spec.check_id,
            verdict,
            name=slot.spec.name,
            error=error,
        )

    try:
        while pending or running:
            now = time.perf_counter()
            batch_expired = batch_deadline is not None and now >= batch_deadline
            cancelled = (cancel is not None and cancel.is_set()) or batch_expired
            if cancelled:
                for slot in list(running):
                    reap(slot, CANCELLED, "batch cancelled")
                while pending:
                    index, spec = pending.pop()
                    results[index] = _cancelled_result(index, spec)
                break

            while pending and len(running) < jobs:
                index, spec = pending.pop()
                launch(index, spec)

            # wake on the earliest event: a completion, a per-job deadline,
            # the batch deadline, or a periodic cancellation poll
            wait_until = now + 0.1
            for slot in running:
                if slot.deadline is not None:
                    wait_until = min(wait_until, slot.deadline)
            if batch_deadline is not None:
                wait_until = min(wait_until, batch_deadline)
            ready = multiprocessing.connection.wait(
                [slot.conn for slot in running],
                timeout=max(0.0, wait_until - time.perf_counter()),
            )

            for slot in list(running):
                if slot.conn in ready:
                    try:
                        doc = slot.conn.recv()
                    except (EOFError, OSError):
                        # pipe closed with no payload: the worker died
                        # before reporting (crash, os._exit, signal)
                        slot.process.join()
                        reap(
                            slot,
                            ERROR,
                            "worker exited with code {}".format(
                                slot.process.exitcode
                            ),
                        )
                        continue
                    slot.process.join()
                    try:
                        slot.conn.close()
                    except OSError:
                        pass
                    running.remove(slot)
                    results[slot.index] = JobResult.from_doc(doc)
                elif (
                    slot.deadline is not None
                    and time.perf_counter() >= slot.deadline
                ):
                    reap(
                        slot,
                        TIMEOUT,
                        "job exceeded {:.1f}s timeout".format(timeout),
                    )
    except BaseException:
        # interrupted (e.g. KeyboardInterrupt): never strand workers
        for slot in running:
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join()
        raise
    return [results[index] for index in range(len(specs))]
