"""repro.batch -- process-pool batch verification.

The paper's workflow checks one assertion at a time in FDR; real audits
discharge dozens (every Table III requirement, every extracted ECU model
against every specification).  This package fans a list of
:class:`CheckSpec` values over isolated worker processes:

* **Crash isolation** -- each job gets its own worker, so a crashing,
  looping, or exiting check fails *its* job (``ERROR``/``TIMEOUT``) while
  the rest of the batch completes.
* **Determinism** -- results come back in input order and each job runs in
  a fresh pipeline; a parallel run's canonical results are byte-identical
  to the sequential reference (:func:`execute_spec`), which the
  conformance corpus under ``tests/conformance`` enforces.
* **Shared compilation** -- workers layer the in-memory cache over a
  content-addressed on-disk store (:mod:`repro.engine.diskcache`), so one
  worker's compiled automaton warms every sibling and every later session.

Surfaced on the command line as ``cspbatch`` (manifest in, JSONL out) and
programmatically as :func:`repro.api.verify_requirements`.
"""

from .executor import BatchReport, execute_spec, run_batch
from .spec import (
    BATCH_FORMAT_VERSION,
    CANCELLED,
    CheckSpec,
    ERROR,
    FAIL,
    JobResult,
    ManifestError,
    PASS,
    TIMEOUT,
    VERDICTS,
    dump_manifest,
    load_manifest,
    manifest_document,
    parse_manifest,
    requirement_specs,
)

__all__ = [
    "BATCH_FORMAT_VERSION",
    "BatchReport",
    "CANCELLED",
    "CheckSpec",
    "ERROR",
    "FAIL",
    "JobResult",
    "ManifestError",
    "PASS",
    "TIMEOUT",
    "VERDICTS",
    "dump_manifest",
    "execute_spec",
    "load_manifest",
    "manifest_document",
    "parse_manifest",
    "requirement_specs",
    "run_batch",
]
