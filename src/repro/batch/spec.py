"""Check specifications, job results and manifests for batch verification.

A batch is a list of :class:`CheckSpec` values -- each one a self-contained
description of a single check (what to verify, in which semantic model,
under which pass configuration and state budget).  Specs serialise to plain
JSON documents: that is both the ``cspbatch`` manifest format and the wire
format the process-pool executor ships to its workers, so everything a
worker can be asked to do is expressible as data, replayable from a file,
and safe to load (no pickled code).

Five spec kinds:

``refinement``
    ``spec [model= impl`` with inline process terms (encoded with the
    :mod:`repro.quickcheck.serialise` corpus codec) plus the named
    equations both sides reference.
``property``
    ``term :[deadlock free]`` / ``divergence free`` / ``deterministic``,
    same term encoding.
``trace``
    Offline runtime verification (:mod:`repro.rv`): is this logged event
    sequence a trace of the specification process?  The document carries
    the spec term, its reachable bindings, and the trace itself as encoded
    events (optionally annotated with source-log line numbers for
    counterexample provenance) -- fully self-contained, so the structural
    key covers everything that decides the verdict and rv jobs memoise
    and dedup exactly like refinements.
``requirement``
    One row of the paper's Table III (``"R01"``..``"R05"``); the worker
    rebuilds the session system itself, so the manifest entry is one line.
``selftest``
    Executor fault-injection hooks (``pass`` / ``fail`` / ``raise`` /
    ``sleep:SECONDS`` / ``exit:CODE``) used by the executor's own tests and
    CI to prove crash isolation without a hand-built broken model.

A :class:`JobResult` is the JSON-shaped outcome of one spec: a verdict
(:data:`PASS` ... :data:`CANCELLED`), the counterexample (kind, event
trace, FDR-style description), search statistics, and per-job timing and
profile data.  :meth:`JobResult.canonical` strips the fields that
legitimately vary between runs (wall time, worker pid, profile), leaving
exactly the bytes that must be identical between sequential and parallel
execution -- the conformance corpus and the batch oracle compare those.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple, Union

from ..csp.events import Event
from ..csp.process import Environment, Process
from ..fdr.refine import CheckResult

#: manifest / wire format version
BATCH_FORMAT_VERSION = 1

#: job verdicts
PASS = "PASS"
FAIL = "FAIL"
ERROR = "ERROR"
TIMEOUT = "TIMEOUT"
CANCELLED = "CANCELLED"

VERDICTS = (PASS, FAIL, ERROR, TIMEOUT, CANCELLED)

_KINDS = ("refinement", "property", "trace", "requirement", "selftest")


class ManifestError(ValueError):
    """The manifest (or one spec document) is outside the batch schema."""


def reachable_bindings(env, *terms, bindings=None):
    """The named equations reachable from *terms*, bodies included.

    Walks each term (and every body it pulls in) for
    :class:`~repro.csp.process.ProcessRef` nodes and resolves them against
    *env*, so the returned ``{name: body}`` mapping makes a spec document
    self-contained -- the precondition for it to be a sound structural key.
    This is the one implementation behind every spec-construction path:
    ``cspcheck``'s memoisation documents, batch manifests written from
    evaluated models, and rv trace specs.

    Names already present in *bindings* (or unbound in *env*) are left
    alone; the caller decides whether an unresolved reference is an error.
    """
    from ..csp.process import ProcessRef

    collected: Dict[str, Process] = dict(bindings or {})
    stack = list(terms)
    while stack:
        node = stack.pop()
        if isinstance(node, ProcessRef) and node.name not in collected:
            if node.name in env:
                body = env.resolve(node.name)
                collected[node.name] = body
                stack.append(body)
        stack.extend(item for item in node._key() if isinstance(item, Process))
    return collected


class CheckSpec:
    """One self-contained check: the unit the batch executor schedules."""

    def __init__(
        self,
        kind: str,
        *,
        check_id: Optional[str] = None,
        spec: Optional[Process] = None,
        impl: Optional[Process] = None,
        term: Optional[Process] = None,
        model: str = "T",
        property_name: Optional[str] = None,
        req_id: Optional[str] = None,
        op: Optional[str] = None,
        trace: Optional[Sequence[Event]] = None,
        trace_lines: Optional[Sequence[Optional[int]]] = None,
        bindings: Optional[Dict[str, Process]] = None,
        passes: str = "default",
        max_states: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ManifestError(
                "unknown check kind {!r}; known: {}".format(kind, ", ".join(_KINDS))
            )
        self.kind = kind
        self.check_id = check_id
        self.spec = spec
        self.impl = impl
        self.term = term
        self.model = model
        self.property_name = property_name
        self.req_id = req_id
        self.op = op
        #: for ``kind == "trace"``: the logged event sequence to check, plus
        #: optional per-event source-log line numbers (same length) carried
        #: into the counterexample's frame provenance
        self.trace: Optional[Tuple[Event, ...]] = (
            None if trace is None else tuple(trace)
        )
        self.trace_lines: Optional[Tuple[Optional[int], ...]] = (
            None if trace_lines is None else tuple(trace_lines)
        )
        if (
            self.trace is not None
            and self.trace_lines is not None
            and len(self.trace) != len(self.trace_lines)
        ):
            raise ManifestError("trace_lines must align with the trace")
        self.bindings: Dict[str, Process] = dict(bindings or {})
        self.passes = passes
        self.max_states = max_states
        self.name = name

    # -- constructors --------------------------------------------------------

    @classmethod
    def refinement(
        cls,
        spec: Process,
        impl: Process,
        model: str = "T",
        *,
        check_id: Optional[str] = None,
        bindings: Optional[Dict[str, Process]] = None,
        **options,
    ) -> "CheckSpec":
        return cls(
            "refinement",
            check_id=check_id,
            spec=spec,
            impl=impl,
            model=model,
            bindings=bindings,
            **options,
        )

    @classmethod
    def property_check(
        cls,
        term: Process,
        property_name: str,
        *,
        check_id: Optional[str] = None,
        bindings: Optional[Dict[str, Process]] = None,
        **options,
    ) -> "CheckSpec":
        return cls(
            "property",
            check_id=check_id,
            term=term,
            property_name=property_name,
            bindings=bindings,
            **options,
        )

    @classmethod
    def trace_check(
        cls,
        spec: Process,
        trace: Sequence[Event],
        *,
        check_id: Optional[str] = None,
        trace_lines: Optional[Sequence[Optional[int]]] = None,
        bindings: Optional[Dict[str, Process]] = None,
        **options,
    ) -> "CheckSpec":
        """An rv membership check: is *trace* a trace of *spec*?"""
        return cls(
            "trace",
            check_id=check_id,
            spec=spec,
            trace=trace,
            trace_lines=trace_lines,
            bindings=bindings,
            **options,
        )

    @classmethod
    def requirement(cls, req_id: str, **options) -> "CheckSpec":
        return cls("requirement", check_id=options.pop("check_id", req_id), req_id=req_id, **options)

    @classmethod
    def selftest(cls, op: str, *, check_id: Optional[str] = None, **options) -> "CheckSpec":
        return cls("selftest", check_id=check_id, op=op, **options)

    # -- environment ---------------------------------------------------------

    def environment(self) -> Environment:
        env = Environment()
        for bound_name in sorted(self.bindings):
            env.bind(bound_name, self.bindings[bound_name])
        return env

    # -- JSON ----------------------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        from ..quickcheck.serialise import encode_event, encode_process

        doc: Dict[str, Any] = {"kind": self.kind}
        if self.check_id is not None:
            doc["id"] = self.check_id
        if self.kind == "refinement":
            doc["model"] = self.model
            doc["spec"] = encode_process(self.spec)
            doc["impl"] = encode_process(self.impl)
        elif self.kind == "property":
            doc["property"] = self.property_name
            doc["term"] = encode_process(self.term)
        elif self.kind == "trace":
            doc["spec"] = encode_process(self.spec)
            entries = []
            for position, event in enumerate(self.trace or ()):
                entry = encode_event(event)
                if self.trace_lines is not None:
                    line = self.trace_lines[position]
                    if line is not None:
                        entry["line"] = line
                entries.append(entry)
            doc["trace"] = entries
        elif self.kind == "requirement":
            doc["req"] = self.req_id
        else:
            doc["op"] = self.op
        if self.bindings:
            doc["env"] = {
                bound_name: encode_process(body)
                for bound_name, body in sorted(self.bindings.items())
            }
        if self.passes != "default":
            doc["passes"] = self.passes
        if self.max_states is not None:
            doc["max_states"] = self.max_states
        if self.name is not None:
            doc["name"] = self.name
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "CheckSpec":
        from ..quickcheck.serialise import (
            CorpusEncodingError,
            decode_event,
            decode_process,
        )

        if not isinstance(doc, dict):
            raise ManifestError("a check entry must be a JSON object")
        kind = doc.get("kind")
        if kind not in _KINDS:
            raise ManifestError(
                "unknown check kind {!r}; known: {}".format(kind, ", ".join(_KINDS))
            )
        try:
            bindings = {
                bound_name: decode_process(body)
                for bound_name, body in (doc.get("env") or {}).items()
            }
            spec = impl = term = trace = trace_lines = None
            if kind == "refinement":
                spec = decode_process(doc["spec"])
                impl = decode_process(doc["impl"])
            elif kind == "property":
                term = decode_process(doc["term"])
            elif kind == "trace":
                spec = decode_process(doc["spec"])
                entries = doc["trace"]
                if not isinstance(entries, list):
                    raise ManifestError("trace check entry 'trace' must be a list")
                trace = [decode_event(entry) for entry in entries]
                trace_lines = [entry.get("line") for entry in entries]
                if all(line is None for line in trace_lines):
                    trace_lines = None
        except (CorpusEncodingError, KeyError, TypeError) as error:
            raise ManifestError(
                "undecodable check entry {!r}: {}".format(doc.get("id"), error)
            ) from None
        if kind == "property" and not doc.get("property"):
            raise ManifestError("property check entry is missing 'property'")
        if kind == "requirement" and not doc.get("req"):
            raise ManifestError("requirement check entry is missing 'req'")
        if kind == "selftest" and not doc.get("op"):
            raise ManifestError("selftest check entry is missing 'op'")
        return cls(
            kind,
            check_id=doc.get("id"),
            spec=spec,
            impl=impl,
            term=term,
            model=doc.get("model", "T"),
            property_name=doc.get("property"),
            req_id=doc.get("req"),
            op=doc.get("op"),
            trace=trace,
            trace_lines=trace_lines,
            bindings=bindings,
            passes=doc.get("passes", "default"),
            max_states=doc.get("max_states"),
            name=doc.get("name"),
        )

    def __repr__(self) -> str:
        return "CheckSpec({!r}, id={!r})".format(self.kind, self.check_id)


class JobResult:
    """Outcome of one spec, in wire/JSONL shape."""

    def __init__(
        self,
        index: int,
        check_id: Optional[str],
        verdict: str,
        *,
        name: Optional[str] = None,
        counterexample: Optional[Dict[str, Any]] = None,
        states_explored: int = 0,
        transitions_explored: int = 0,
        error: Optional[str] = None,
        duration_ms: float = 0.0,
        worker_pid: Optional[int] = None,
        profile: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.index = index
        self.check_id = check_id
        self.verdict = verdict
        self.name = name
        self.counterexample = counterexample
        self.states_explored = states_explored
        self.transitions_explored = transitions_explored
        self.error = error
        self.duration_ms = duration_ms
        self.worker_pid = worker_pid
        self.profile = profile

    @property
    def passed(self) -> bool:
        return self.verdict == PASS

    @classmethod
    def of_check_result(
        cls,
        index: int,
        check_id: Optional[str],
        result: CheckResult,
        *,
        duration_ms: float = 0.0,
        worker_pid: Optional[int] = None,
        profile: Optional[Dict[str, Any]] = None,
    ) -> "JobResult":
        counterexample = None
        violation = result.counterexample
        if violation is not None:
            counterexample = {
                "kind": violation.kind,
                "trace": [str(event) for event in violation.trace],
                "description": violation.describe(),
            }
            # counterexample classes may carry extra run-invariant fields
            # (the rv checker adds violation position and frame provenance)
            doc_fields = getattr(violation, "doc_fields", None)
            if doc_fields is not None:
                counterexample.update(doc_fields())
        return cls(
            index,
            check_id,
            PASS if result.passed else FAIL,
            name=result.name,
            counterexample=counterexample,
            states_explored=result.states_explored,
            transitions_explored=result.transitions_explored,
            duration_ms=duration_ms,
            worker_pid=worker_pid,
            profile=profile,
        )

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "index": self.index,
            "id": self.check_id,
            "verdict": self.verdict,
            "name": self.name,
            "counterexample": self.counterexample,
            "states_explored": self.states_explored,
            "transitions_explored": self.transitions_explored,
            "error": self.error,
            "duration_ms": round(self.duration_ms, 3),
            "worker_pid": self.worker_pid,
        }
        if self.profile is not None:
            doc["profile"] = self.profile
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "JobResult":
        return cls(
            doc["index"],
            doc.get("id"),
            doc["verdict"],
            name=doc.get("name"),
            counterexample=doc.get("counterexample"),
            states_explored=doc.get("states_explored", 0),
            transitions_explored=doc.get("transitions_explored", 0),
            error=doc.get("error"),
            duration_ms=doc.get("duration_ms", 0.0),
            worker_pid=doc.get("worker_pid"),
            profile=doc.get("profile"),
        )

    def canonical(self) -> Dict[str, Any]:
        """The run-invariant view: what parallel runs must reproduce exactly.

        Excludes wall time, worker pid and the profile -- everything else
        (verdict, label, counterexample kind/trace/description, search
        statistics, error text) must be byte-identical between a sequential
        run and any parallel or cache-warm run of the same batch.
        """
        return {
            "id": self.check_id,
            "verdict": self.verdict,
            "name": self.name,
            "counterexample": self.counterexample,
            "states_explored": self.states_explored,
            "transitions_explored": self.transitions_explored,
            "error": self.error,
        }

    def canonical_line(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True)

    def summary(self) -> str:
        label = self.check_id or self.name or "job {}".format(self.index)
        line = "{}: {}".format(label, self.verdict)
        if self.counterexample is not None:
            line += " -- " + self.counterexample["description"]
        if self.error:
            line += " -- " + self.error.splitlines()[0]
        return line

    def __repr__(self) -> str:
        return "JobResult({!r}, {!r})".format(self.check_id, self.verdict)


# -- manifests ---------------------------------------------------------------


def manifest_document(specs: Sequence[CheckSpec]) -> Dict[str, Any]:
    return {
        "format": BATCH_FORMAT_VERSION,
        "checks": [spec.to_doc() for spec in specs],
    }


def dump_manifest(specs: Sequence[CheckSpec], target: Union[str, IO[str]]) -> None:
    doc = manifest_document(specs)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    else:
        json.dump(doc, target, indent=2, sort_keys=True)
        target.write("\n")


def parse_manifest(doc: Any) -> List[CheckSpec]:
    if not isinstance(doc, dict):
        raise ManifestError("a manifest must be a JSON object")
    if doc.get("format") != BATCH_FORMAT_VERSION:
        raise ManifestError(
            "unsupported manifest format {!r} (expected {})".format(
                doc.get("format"), BATCH_FORMAT_VERSION
            )
        )
    checks = doc.get("checks")
    if not isinstance(checks, list):
        raise ManifestError("manifest 'checks' must be a list")
    return [CheckSpec.from_doc(entry) for entry in checks]


def load_manifest(source: Union[str, IO[str]]) -> List[CheckSpec]:
    """Parse a manifest file (or handle) into its spec list."""
    try:
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        else:
            doc = json.load(source)
    except ValueError as error:
        raise ManifestError("manifest is not valid JSON: {}".format(error)) from None
    return parse_manifest(doc)


def requirement_specs(req_ids: Optional[Sequence[str]] = None) -> List[CheckSpec]:
    """One requirement spec per Table III row (or per requested id)."""
    if req_ids is None:
        from ..ota.requirements import TABLE_III

        req_ids = [row.req_id for row in TABLE_III]
    return [CheckSpec.requirement(req_id) for req_id in req_ids]
